"""Fig. 11 reproduction — average step time under exponential stragglers.

Regenerates both panels (E[delay] = 1.5 s and 3.0 s, stragglers on 12
and on all 24 of 24 workers) and times one simulation condition.

Expected shape vs the paper (Sec. VIII-B):
* sync-SGD and GC suffer heavily; GC lands above sync-SGD at 1.5 s
  because of its doubled per-worker compute (c = 2);
* IS-GC cuts step time dramatically (up to ~70 % vs sync-SGD here,
  74.9 % in the paper);
* IS-GC sits above IS-SGD by a constant compute gap whose *relative*
  size shrinks as delays grow (the paper reports <10 % at 3.0 s).
"""

import pytest

from repro.experiments import Fig11Config, fig11_tables, run_condition

from conftest import register_report


@pytest.fixture(scope="module")
def fig11_report():
    cfg = Fig11Config()
    tables = fig11_tables(cfg)
    text = "\n\n".join(t.render() for t in tables)
    register_report("fig11_step_time", text)
    return tables


BENCH_CFG = Fig11Config(num_steps=60)


def test_fig11_condition_delay_1_5(benchmark, fig11_report):
    """Time one full Fig. 11 condition (60 simulated steps/scheme)."""
    points = benchmark(run_condition, BENCH_CFG, 1.5, 12)
    sync = next(p for p in points if p.scheme == "sync-sgd")
    gc = next(p for p in points if p.scheme == "gc")
    isgc = next(p for p in points if p.scheme == "is-gc(w=6)")
    # Paper shape assertions.
    assert gc.avg_step_time > sync.avg_step_time
    assert isgc.avg_step_time < 0.6 * sync.avg_step_time


def test_fig11_condition_delay_3_0(benchmark, fig11_report):
    points = benchmark(run_condition, BENCH_CFG, 3.0, 24)
    sync = next(p for p in points if p.scheme == "sync-sgd")
    isgc = next(p for p in points if p.scheme == "is-gc(w=6)")
    issgd = next(p for p in points if p.scheme == "is-sgd(w=6)")
    assert isgc.avg_step_time < 0.5 * sync.avg_step_time
    # IS-GC above IS-SGD by the constant c-overhead.
    assert isgc.avg_step_time > issgd.avg_step_time


def test_fig11_relative_overhead_shrinks_with_delay(benchmark, fig11_report):
    """The paper's 'difference reduced' claim, as a measured ratio."""

    def measure():
        low = run_condition(BENCH_CFG, 1.5, 24)
        high = run_condition(BENCH_CFG, 3.0, 24)

        def gap(points, w):
            isgc = next(p for p in points if p.scheme == f"is-gc(w={w})")
            issgd = next(p for p in points if p.scheme == f"is-sgd(w={w})")
            return (isgc.avg_step_time - issgd.avg_step_time) / issgd.avg_step_time

        return gap(low, 18), gap(high, 18)

    gap_low, gap_high = benchmark(measure)
    assert gap_high < gap_low
