"""Theory bench — estimator variance vs recovery (the convergence lever).

The mechanism behind Fig. 12(b)/13(b): more recovered partitions →
lower variance of the unbiased gradient estimate → faster convergence.
This bench tabulates exact tr Cov(ĝ) per (scheme, w) and the variance
reduction IS-GC buys over IS-SGD.
"""

import numpy as np
import pytest

from repro.analysis import estimator_moments, variance_reduction_vs_issgd
from repro.analysis.reporting import Table
from repro.core import CyclicRepetition, FractionalRepetition

from conftest import register_report

N, C = 8, 2
DIM = 16


def _grads():
    rng = np.random.default_rng(0)
    return {p: rng.normal(size=DIM) for p in range(N)}


@pytest.fixture(scope="module")
def variance_report():
    grads = _grads()
    fr = FractionalRepetition(N, C)
    cr = CyclicRepetition(N, C)
    issgd = CyclicRepetition(N, 1)
    table = Table(
        title=(
            "Theory — exact estimator variance tr Cov(ĝ) vs w "
            f"(n={N}, c={C}; lower is better)"
        ),
        columns=[
            "w", "is-sgd", "is-gc-cr", "is-gc-fr", "fr reduction vs is-sgd",
        ],
    )
    for w in (1, 2, 4, 6, 8):
        v_sgd = estimator_moments(issgd, w, grads, seed=1).total_variance
        v_cr = estimator_moments(cr, w, grads, seed=1).total_variance
        v_fr = estimator_moments(fr, w, grads, seed=1).total_variance
        if v_fr > 0:
            reduction = f"{v_sgd / v_fr:.2f}x"
        else:
            reduction = "exact (0/0)" if v_sgd == 0 else "∞"
        table.add_row(
            w, round(v_sgd, 2), round(v_cr, 2), round(v_fr, 2), reduction,
        )
    register_report("theory_estimator_variance", table.render())
    return table


def test_moments_bench(benchmark, variance_report):
    grads = _grads()
    placement = CyclicRepetition(N, C)
    benchmark(estimator_moments, placement, 4, grads)


def test_variance_ordering(variance_report):
    """Var(is-gc) ≤ Var(is-sgd) at every w, and FR ≤ CR once w ≥ 2.

    At w = 1 FR and CR recover the same *count* (exactly c partitions),
    so their variances differ only through which sums are drawn — no
    ordering is guaranteed there and none is asserted.
    """
    for row in variance_report.rows:
        w, v_sgd, v_cr, v_fr, _ = row
        assert v_cr <= v_sgd + 1e-9
        assert v_fr <= v_sgd + 1e-9
        if w >= 2:
            assert v_fr <= v_cr + 1e-9


def test_reduction_bench(benchmark, variance_report):
    grads = _grads()
    result = benchmark(
        variance_reduction_vs_issgd, FractionalRepetition(N, C), 4, grads
    )
    assert result >= 1.0
