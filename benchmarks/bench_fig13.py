"""Fig. 13 reproduction — the HR trade-off between FR and CR.

Regenerates both panels for HR(8, c1, 4-c1) with g = 2 at w = 2 and
times the sweep.

Expected shape vs the paper (Sec. VIII-C):
* (a) recovered gradients increase monotonically with c1 (CR end → FR
  end);
* (b) at any fixed step, training loss decreases with c1 — more
  recovered gradients per step buys faster descent.
"""

import pytest

from repro.experiments import Fig13Config, fig13_tables, run_fig13

from conftest import register_report


@pytest.fixture(scope="module")
def fig13_report():
    cfg = Fig13Config()
    tables = fig13_tables(cfg)
    text = "\n\n".join(t.render() for t in tables)
    register_report("fig13_hr_tradeoff", text)
    return cfg


SMALL = Fig13Config(num_steps=60, recovery_trials=500, dataset_samples=512)


def test_fig13_sweep(benchmark, fig13_report):
    points = benchmark(run_fig13, SMALL)
    recoveries = [p.mean_recovered for p in points]
    assert recoveries == sorted(recoveries)


def test_fig13_full_shape(fig13_report):
    cfg = fig13_report
    points = run_fig13(cfg)
    # (a): recovery strictly improves from the CR end to the FR end.
    assert points[-1].mean_recovered > points[0].mean_recovered
    # (b): final loss ordered by c1 (FR-most trains fastest).
    finals = [p.loss_curve[-1] for p in points]
    assert finals[-1] < finals[0]
