"""Decoder ablation — cost and quality of the decoding algorithms.

The paper claims the scheme decoders run in O(|W'|) time while matching
the (NP-hard in general) exact maximum independent set.  This bench
times each decoder across cluster sizes, compares against the exact
branch-and-bound reference, and reports how much recovery a *naive*
arrival-order greedy (Fig. 3's strawman) loses.
"""

import numpy as np
import pytest

from repro.analysis.reporting import Table
from repro.core import (
    CRDecoder,
    CyclicRepetition,
    ExactDecoder,
    FRDecoder,
    FractionalRepetition,
    HRDecoder,
    HybridRepetition,
)

from conftest import register_report


def _random_avail(n, w, rng):
    return rng.choice(n, size=w, replace=False).tolist()


def _naive_arrival_greedy(placement, arrivals):
    """Fig. 3's strawman: accept workers in arrival order when they
    don't conflict with anything accepted so far."""
    chosen = []
    for worker in arrivals:
        if all(not placement.conflicts(worker, kept) for kept in chosen):
            chosen.append(worker)
    return chosen


@pytest.fixture(scope="module")
def decoder_quality_report():
    """Naive-greedy vs conflict-graph decoding recovery (2000 rounds)."""
    rng = np.random.default_rng(0)
    table = Table(
        title="Ablation — decoded partitions: naive arrival-order greedy "
        "vs IS-GC conflict-graph decoder (2000 random rounds each)",
        columns=["placement", "w", "naive mean", "is-gc mean", "is-gc gain"],
    )
    cases = [
        (CyclicRepetition(8, 2), 4),
        (CyclicRepetition(12, 3), 6),
        (CyclicRepetition(24, 2), 12),
        (HybridRepetition(8, 2, 2, 2), 4),
    ]
    for placement, w in cases:
        n = placement.num_workers
        decoder = CRDecoder(placement, rng=np.random.default_rng(1)) \
            if isinstance(placement, CyclicRepetition) \
            else HRDecoder(placement, rng=np.random.default_rng(1))
        naive_sum = coded_sum = 0
        for _ in range(2000):
            arrivals = rng.permutation(n)[:w].tolist()
            naive = _naive_arrival_greedy(placement, arrivals)
            naive_sum += sum(
                len(placement.partitions_of(v)) for v in naive
            )
            coded_sum += decoder.decode(arrivals).num_recovered
        gain = 100.0 * (coded_sum - naive_sum) / naive_sum
        table.add_row(
            f"{type(placement).__name__}(n={n}, "
            f"c={placement.partitions_per_worker})",
            w, naive_sum / 2000, coded_sum / 2000, f"+{gain:.1f}%",
        )
    register_report("ablation_decoder_quality", table.render())
    return table


@pytest.mark.parametrize("n", [24, 48, 96])
def test_cr_decoder_scaling(benchmark, n, decoder_quality_report):
    """CR decode cost across cluster sizes (linear-time claim)."""
    placement = CyclicRepetition(n, 2)
    decoder = CRDecoder(placement, rng=np.random.default_rng(0))
    rng = np.random.default_rng(1)
    avail = _random_avail(n, n // 2, rng)
    benchmark(decoder.decode, avail)


def test_fr_decoder(benchmark):
    placement = FractionalRepetition(48, 4)
    decoder = FRDecoder(placement, rng=np.random.default_rng(0))
    avail = _random_avail(48, 24, np.random.default_rng(1))
    benchmark(decoder.decode, avail)


def test_hr_decoder(benchmark):
    placement = HybridRepetition(48, 3, 1, 12)
    decoder = HRDecoder(placement, rng=np.random.default_rng(0))
    avail = _random_avail(48, 24, np.random.default_rng(1))
    benchmark(decoder.decode, avail)


def test_exact_decoder_reference(benchmark):
    """The branch-and-bound reference the fast decoders are checked
    against — markedly slower, which is why Algs. 1-3 matter."""
    placement = CyclicRepetition(24, 2)
    decoder = ExactDecoder(placement, rng=np.random.default_rng(0), fair=False)
    avail = _random_avail(24, 12, np.random.default_rng(1))
    benchmark(decoder.decode, avail)


def test_cr_window_starts_vs_all_starts(benchmark):
    """Alg. 2's c-start window vs exhaustive starts: same optimum,
    fewer searches."""
    placement = CyclicRepetition(48, 4)
    window = CRDecoder(placement, rng=np.random.default_rng(0))
    exhaustive = CRDecoder(placement, rng=np.random.default_rng(0), starts="all")
    rng = np.random.default_rng(2)

    def run_both():
        avail = _random_avail(48, 24, rng)
        a = window.decode(avail)
        b = exhaustive.decode(avail)
        assert len(a.selected_workers) == len(b.selected_workers)
        return a.num_searches, b.num_searches

    searches_window, searches_all = benchmark(run_both)
    assert searches_window <= placement.partitions_per_worker
    assert searches_all >= searches_window
