#!/usr/bin/env python3
"""Serve benchmark: shared worker pool vs per-job engines, plus the
full mailbox smoke gates.

A self-contained script — ``make bench-serve`` and the CI step run it
directly and archive its JSON report.  Five gates, all asserted (the
script exits non-zero on any violation):

* **determinism** — 8 jobs submitted through a file mailbox and run by
  one deterministic coordinator produce reports *and* streamed JSONL
  round traces bit-for-bit identical to 8 sequential single-job runs;
* **lossless traces** — each job's streamed trace re-reads and
  re-aggregates to exactly the loss trajectory its report carries;
* **pool throughput** — the same 8-job grid drained by a shared
  :class:`~repro.serve.WorkerPool` (engines stay resident between
  quanta) must be at least ``MIN_SPEEDUP`` times faster than the
  per-job-engine baseline (``pool_capacity=0``, which snapshots and
  rebuilds every engine on every quantum) — with bit-identical
  reports from both runs;
* **kill/resume** — a coordinator subprocess is SIGKILLed mid-grid; a
  successor takes over the mailbox from the stale marker, re-admits
  the survivors from their checkpoints and finishes them with reports
  and traces bit-for-bit identical to the never-interrupted run;
* **failure isolation (live mode)** — rerunning the same 8 jobs in
  live (thread-pool) mode with one deliberately broken ninth job: the
  bad job FAILs, every peer still matches the deterministic reports.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py
"""

from __future__ import annotations

import asyncio
import json
import os
import pathlib
import platform
import signal
import subprocess
import sys
import tempfile
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro import (  # noqa: E402
    Coordinator,
    CoordinatorClient,
    ExperimentSpec,
    JobState,
    ServeMailbox,
    aggregate_traces,
    read_traces,
    run_jobs,
)

NUM_JOBS = 8
SCHEMES = ("is-gc-cr", "is-gc-fr", "is-gc-hr", "gc")
#: Shared pool must beat the rebuild-every-quantum baseline by this
#: factor on the 8-job grid (in practice it wins by far more; 1.5 is
#: the regression floor CI enforces).
MIN_SPEEDUP = 1.5


def make_specs():
    """Eight small jobs spanning four placement schemes."""
    specs = []
    for i in range(NUM_JOBS):
        scheme = SCHEMES[i % len(SCHEMES)]
        num_workers, params = 4, {}
        if scheme == "is-gc-hr":
            num_workers = 6
            params = {"c1": 1, "c2": 2, "num_groups": 2}
        specs.append(ExperimentSpec(
            name=f"smoke-{i}",
            scheme=scheme,
            num_workers=num_workers,
            partitions_per_worker=2,
            wait_for=3,
            max_steps=12,
            seed=40 + i,
            scheme_params=params,
        ))
    return specs


def bad_spec():
    """A job that fails at engine build (unknown scheme)."""
    return ExperimentSpec(
        name="smoke-injected-failure",
        scheme="does-not-exist",
        num_workers=4,
        partitions_per_worker=2,
        wait_for=3,
        max_steps=12,
    )


def mailbox_smoke(specs, workdir):
    """Run the 8 jobs via mailbox submissions + a serving coordinator."""
    root = workdir / "mbox"
    trace_dir = workdir / "traces"
    client = CoordinatorClient(root)
    job_ids = [
        client.submit(spec, job_id=f"smoke-{i:02d}")
        for i, spec in enumerate(specs)
    ]
    coordinator = Coordinator(
        mode="deterministic", max_running=4, trace_dir=trace_dir
    )
    with coordinator:
        asyncio.run(coordinator.serve(ServeMailbox(root), once=True))
    snapshots = [client.state(job_id) for job_id in job_ids]
    assert all(s["state"] == "done" for s in snapshots), (
        f"not all jobs finished: {[s['state'] for s in snapshots]}"
    )
    return snapshots


def check_determinism(specs, snapshots, workdir):
    """Mailbox-run reports + traces == sequential single-job runs."""
    for i, (spec, snapshot) in enumerate(zip(specs, snapshots)):
        solo_dir = workdir / f"solo-{i:02d}"
        (solo,) = run_jobs([spec], trace_dir=solo_dir)
        report = dict(snapshot["report"])
        solo_report = solo.to_dict()
        served_trace = pathlib.Path(report.pop("trace_path"))
        solo_trace = pathlib.Path(solo_report.pop("trace_path"))
        assert report == solo_report, (
            f"job {i} diverged from its sequential run:\n"
            f"  served: {report}\n  solo  : {solo_report}"
        )
        assert served_trace.read_bytes() == solo_trace.read_bytes(), (
            f"job {i} trace diverged from its sequential run"
        )


def check_trace_reaggregation(snapshots):
    """Streamed traces re-read + re-aggregate to the reported curves."""
    for snapshot in snapshots:
        report = snapshot["report"]
        traces = read_traces(report["trace_path"])
        assert len(traces) == report["num_steps"], (
            f"{snapshot['id']}: {len(traces)} trace rounds != "
            f"{report['num_steps']} reported steps"
        )
        assert [trace.step for trace in traces] == list(
            range(report["num_steps"])
        ), f"{snapshot['id']}: trace steps are not contiguous"
        # each round's simulated end time is the report's time curve —
        # bit-for-bit, proving the stream lost nothing.
        clocks = [trace.step_end for trace in traces]
        assert clocks == list(report["time_curve"]), (
            f"{snapshot['id']}: trace clocks diverge from the report"
        )
        aggregates = aggregate_traces(traces)
        (label,) = aggregates
        assert aggregates[label].rounds == report["num_steps"]


def _drain_grid(specs, pool_capacity):
    """Drain the grid through one deterministic coordinator; return
    (reports, pool stats)."""

    async def scenario():
        coordinator = Coordinator(
            mode="deterministic",
            max_running=4,
            pool_capacity=pool_capacity,
        )
        with coordinator:
            handles = [coordinator.submit(spec) for spec in specs]
            await coordinator.drain()
            stats = coordinator.pool.stats.to_dict()
        return handles, stats

    handles, stats = asyncio.run(scenario())
    for handle in handles:
        assert handle.state is JobState.DONE, (
            f"{handle.job_id}: {handle.state.value} {handle.error}"
        )
    return [handle.report.to_dict() for handle in handles], stats


def pool_throughput(specs):
    """Shared pool vs per-job-engine baseline on the same grid.

    ``pool_capacity=0`` forces every quantum through a full
    snapshot → discard → rebuild → restore cycle: exactly the cost a
    coordinator that kept no engines alive between quanta would pay.
    The shared pool keeps running jobs resident and must win by
    ``MIN_SPEEDUP`` while producing bit-identical reports.
    """
    start = time.perf_counter()
    shared_reports, shared_stats = _drain_grid(specs, pool_capacity=None)
    shared_seconds = time.perf_counter() - start

    start = time.perf_counter()
    baseline_reports, baseline_stats = _drain_grid(specs, pool_capacity=0)
    baseline_seconds = time.perf_counter() - start

    assert shared_reports == baseline_reports, (
        "pooled run diverged from the per-job-engine baseline"
    )
    assert shared_stats["hits"] > 0, shared_stats
    assert baseline_stats["restores"] > 0, baseline_stats
    assert baseline_stats["evictions"] > baseline_stats["restores"] - 1, (
        baseline_stats
    )
    speedup = baseline_seconds / shared_seconds
    assert speedup >= MIN_SPEEDUP, (
        f"shared pool only {speedup:.2f}x faster than per-job engines "
        f"(gate: {MIN_SPEEDUP}x); shared={shared_seconds:.3f}s "
        f"baseline={baseline_seconds:.3f}s"
    )
    return {
        "min_speedup": MIN_SPEEDUP,
        "speedup": round(speedup, 2),
        "shared": {
            "seconds": round(shared_seconds, 3),
            "jobs_per_second": round(NUM_JOBS / shared_seconds, 2),
            "pool": shared_stats,
        },
        "per_job_engine": {
            "seconds": round(baseline_seconds, 3),
            "jobs_per_second": round(NUM_JOBS / baseline_seconds, 2),
            "pool": baseline_stats,
        },
    }


def kill_resume(specs, snapshots, workdir):
    """SIGKILL a serving coordinator mid-grid; a successor must finish
    the survivors bit-identically to the never-interrupted run."""
    root = workdir / "kill-mbox"
    trace_dir = workdir / "kill-traces"
    client = CoordinatorClient(root)
    job_ids = [
        client.submit(spec, job_id=f"kill-{i:02d}", trace=True)
        for i, spec in enumerate(specs)
    ]
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve", str(root),
            "--mode", "deterministic", "--trace-dir", str(trace_dir),
            "--pool-capacity", "2", "--poll-interval", "0.02",
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    killed_mid_run = False
    try:
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            states = [client.state(job_id) for job_id in job_ids]
            if any(s.get("rounds_done", 0) >= 2 for s in states):
                killed_mid_run = True
                break
            time.sleep(0.02)
    finally:
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
    assert killed_mid_run, "coordinator made no progress before kill"
    assert (root / "coordinator.json").exists(), (
        "killed coordinator should leave its serving marker behind"
    )

    # Successor: takes over the stale marker, restores checkpointed
    # jobs, finishes the grid.
    coordinator = Coordinator(
        mode="deterministic",
        max_running=4,
        pool_capacity=2,
        trace_dir=trace_dir,
    )
    with coordinator:
        asyncio.run(coordinator.serve(ServeMailbox(root), once=True))

    for job_id, snapshot in zip(job_ids, snapshots):
        resumed = client.state(job_id)
        assert resumed["state"] == "done", (
            f"{job_id}: {resumed['state']} {resumed.get('error')}"
        )
        report = dict(resumed["report"])
        baseline = dict(snapshot["report"])
        resumed_trace = pathlib.Path(report.pop("trace_path"))
        baseline_trace = pathlib.Path(baseline.pop("trace_path"))
        assert report == baseline, (
            f"{job_id} diverged after kill/resume:\n"
            f"  resumed : {report}\n  baseline: {baseline}"
        )
        assert resumed_trace.read_bytes() == baseline_trace.read_bytes(), (
            f"{job_id} trace diverged after kill/resume"
        )


def live_failure_isolation(specs, snapshots):
    """Live mode with one broken job: peers match the served reports."""

    async def scenario():
        coordinator = Coordinator(mode="live", max_running=4)
        with coordinator:
            handles = [coordinator.submit(spec) for spec in specs]
            doomed = coordinator.submit(bad_spec())
            await coordinator.drain()
            return handles, doomed

    handles, doomed = asyncio.run(scenario())
    assert doomed.state is JobState.FAILED, doomed.state
    assert "does-not-exist" in doomed.error
    for handle, snapshot in zip(handles, snapshots):
        assert handle.state is JobState.DONE, (
            f"{handle.job_id} was affected by the injected failure: "
            f"{handle.state.value} {handle.error}"
        )
        live = handle.report.to_dict()
        served = dict(snapshot["report"])
        live.pop("trace_path", None)
        served.pop("trace_path", None)
        assert live == served, (
            f"{handle.job_id} live-mode result diverged"
        )


def main() -> int:
    specs = make_specs()
    report = {
        "benchmark": "serve",
        "python": platform.python_version(),
        "num_jobs": NUM_JOBS,
        "schemes": sorted({spec.scheme for spec in specs}),
    }
    with tempfile.TemporaryDirectory() as tmp:
        workdir = pathlib.Path(tmp)

        start = time.perf_counter()
        snapshots = mailbox_smoke(specs, workdir)
        report["mailbox_seconds"] = round(time.perf_counter() - start, 3)
        print(f"mailbox smoke: {NUM_JOBS} jobs done "
              f"({report['mailbox_seconds']}s)")

        start = time.perf_counter()
        check_determinism(specs, snapshots, workdir)
        report["determinism_seconds"] = round(
            time.perf_counter() - start, 3
        )
        print("determinism: reports and traces match sequential runs")

        check_trace_reaggregation(snapshots)
        print("traces: re-read + re-aggregate losslessly")

        report["pool"] = pool_throughput(specs)
        print("pool: shared engines "
              f"{report['pool']['speedup']}x faster than per-job "
              f"engines (gate: {MIN_SPEEDUP}x)")

        start = time.perf_counter()
        kill_resume(specs, snapshots, workdir)
        report["kill_resume_seconds"] = round(
            time.perf_counter() - start, 3
        )
        print("kill/resume: successor coordinator finished the grid "
              f"bit-identically ({report['kill_resume_seconds']}s)")

        start = time.perf_counter()
        live_failure_isolation(specs, snapshots)
        report["live_seconds"] = round(time.perf_counter() - start, 3)
        print("live mode: injected failure isolated, peers unaffected "
              f"({report['live_seconds']}s)")

    out = pathlib.Path("BENCH_serve.json")
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"report: {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
