"""Design-choice ablations DESIGN.md calls out.

1. **Wait policy sensitivity** — WaitForK vs Deadline vs an adaptive
   ramp, under the same delay trace (the paper sketches all three in
   Sec. IV).
2. **Straggler-model sensitivity** — exponential vs Pareto vs
   persistent stragglers: IS-GC's advantage over sync-SGD should hold
   under every delay shape, and *grow* with tail weight.
"""

import numpy as np
import pytest

from repro.analysis.reporting import Table
from repro.simulation import (
    AdaptiveWaitK,
    ClusterSimulator,
    ComputeModel,
    DeadlinePolicy,
    WaitForK,
    linear_rampup,
)
from repro.straggler import (
    DelayTrace,
    ExponentialDelay,
    ParetoDelay,
    PersistentStragglers,
    ShiftedExponentialDelay,
    TraceReplayModel,
)

from conftest import register_report

N = 24
STEPS = 150


def _avg_step_time(trace, policy, c=2):
    sim = ClusterSimulator(
        num_workers=N,
        partitions_per_worker=c,
        compute=ComputeModel(0.1, 0.4),
        delay_model=TraceReplayModel(trace),
        rng=np.random.default_rng(0),
    )
    times = [sim.run_round(s, policy).step_time for s in range(STEPS)]
    return float(np.mean(times))


@pytest.fixture(scope="module")
def ablation_report():
    rng = np.random.default_rng(7)
    exp_trace = DelayTrace.record(ExponentialDelay(1.5), N, STEPS, rng)

    policies = Table(
        title="Ablation — wait-policy sensitivity "
        "(n=24, c=2, exp(1.5s) delays, avg step time in s)",
        columns=["policy", "avg step time (s)"],
    )
    policies.add_row("wait-k (k=12)", _avg_step_time(exp_trace, WaitForK(12)))
    policies.add_row("wait-k (k=18)", _avg_step_time(exp_trace, WaitForK(18)))
    policies.add_row("wait-all", _avg_step_time(exp_trace, WaitForK(N)))
    policies.add_row(
        "deadline (2.0s)", _avg_step_time(exp_trace, DeadlinePolicy(2.0))
    )
    policies.add_row(
        "adaptive ramp 6→18",
        _avg_step_time(
            exp_trace, AdaptiveWaitK(linear_rampup(6, 18, STEPS // 2))
        ),
    )

    models = Table(
        title="Ablation — straggler-model sensitivity "
        "(n=24, c=2, IS-GC wait-12 vs sync-SGD, avg step time in s)",
        columns=["delay model", "is-gc (w=12)", "sync-sgd", "saving"],
    )
    delay_models = [
        ("exponential(1.5)", ExponentialDelay(1.5)),
        ("pareto(a=1.5, 1.0)", ParetoDelay(1.5, 1.0)),
        (
            "persistent 4 slow",
            PersistentStragglers(range(4), ShiftedExponentialDelay(8.0, 1.0)),
        ),
    ]
    for name, model in delay_models:
        trace = DelayTrace.record(model, N, STEPS, np.random.default_rng(11))
        fast = _avg_step_time(trace, WaitForK(12))
        slow = _avg_step_time(trace, WaitForK(N))
        models.add_row(name, fast, slow, f"{100 * (1 - fast / slow):.1f}%")

    text = policies.render() + "\n\n" + models.render()
    register_report("ablation_policies_and_models", text)
    return policies, models


def test_wait_policy_bench(benchmark, ablation_report):
    rng = np.random.default_rng(0)
    trace = DelayTrace.record(ExponentialDelay(1.5), N, STEPS, rng)
    result = benchmark(_avg_step_time, trace, WaitForK(12))
    assert result > 0


def test_waiting_for_fewer_is_faster(ablation_report):
    policies, _ = ablation_report
    by_name = {row[0]: row[1] for row in policies.rows}
    assert by_name["wait-k (k=12)"] < by_name["wait-k (k=18)"] < by_name["wait-all"]


def test_isgc_saves_time_under_every_delay_model(ablation_report):
    _, models = ablation_report
    for row in models.rows:
        assert row[1] < row[2], f"no saving under {row[0]}"


def test_time_varying_models_table(ablation_report):
    """Extra rows: diurnal and bursty delays (time-varying models).

    IS-GC's advantage must also survive load waves and burst states;
    this renders its own table rather than asserting magnitudes.
    """
    from repro.straggler import BurstyDelay, DiurnalDelay

    table = Table(
        title="Ablation — time-varying delay models "
        "(n=24, c=2, IS-GC wait-12 vs sync-SGD, avg step time in s)",
        columns=["delay model", "is-gc (w=12)", "sync-sgd", "saving"],
    )
    models = [
        (
            "diurnal exp(1.5), period 50",
            DiurnalDelay(ExponentialDelay(1.5), period_steps=50, amplitude=0.8),
        ),
        (
            "bursty exp(3.0), 5%/25%",
            BurstyDelay(ExponentialDelay(3.0), enter_burst=0.05, exit_burst=0.25),
        ),
    ]
    for name, model in models:
        trace = DelayTrace.record(model, N, STEPS, np.random.default_rng(21))
        fast = _avg_step_time(trace, WaitForK(12))
        slow = _avg_step_time(trace, WaitForK(N))
        table.add_row(name, fast, slow, f"{100 * (1 - fast / slow):.1f}%")
        assert fast < slow
    register_report("ablation_time_varying", table.render())
