#!/usr/bin/env python3
"""Benchmark the placement layer: construction, conflict graphs,
fingerprints — and the registry's dispatch overhead.

Like ``bench_parallel.py`` this is a self-contained script — ``make
bench-placement`` and the CI smoke step run it directly and archive its
JSON report (``BENCH_placement.json``), so the placement layer's perf
trajectory accumulates one comparable data point per commit::

    PYTHONPATH=src python benchmarks/bench_placement.py --smoke
    PYTHONPATH=src python benchmarks/bench_placement.py

Per registered family it measures:

* **build+fingerprint** — construct the placement and compute its
  content digest (the decode-cache key path), through the registry
  (``make_placement``) *and* through the direct constructor; the
  registry must add **< 5% overhead** (asserted — the script exits
  non-zero otherwise, and CI fails).  The asserted overhead is the
  *directly measured* dispatch cost — name resolution plus scheme
  instantiation, the only work ``make_placement`` adds before
  delegating to the very constructor the direct path calls — divided
  by the direct build time.  Subtracting two noisy ~50µs end-to-end
  timings would put the shared-runner jitter (±10%) inside the 5%
  budget and make CI flaky; the ~1µs dispatch cost is measured on its
  own instead.  The end-to-end paired comparison is still run and
  reported (informational) so a regression *inside* ``construct()``
  remains visible in the JSON trail;
* **conflict graph** — the family's fast path
  (``PlacementScheme.conflict_graph``) vs the partition-intersection
  ground truth (``repro.core.conflict.conflict_graph``), re-verifying
  on the way that both graphs are **identical** (also asserted: a fast
  path that drifts from ground truth is a correctness bug, not a perf
  win).

Timings use the minimum over several measurement batches (the most
repeatable statistic for sub-millisecond work); speedups are reported,
not asserted, because machines differ.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import pathlib
import platform
import statistics
import sys
import time

import numpy as np

from repro.core.conflict import conflict_graph
from repro.core.cyclic import CyclicRepetition
from repro.core.explicit import ExplicitPlacement
from repro.core.fractional import FractionalRepetition
from repro.core.hybrid import HybridRepetition
from repro.core.scheme import make_placement, placement_scheme

#: Maximum sanctioned registry overhead on the build+fingerprint path.
MAX_OVERHEAD_PCT = 5.0

EXPLICIT_ROWS = [
    [(w + j) % 24 for j in range(3)] for w in range(24)
]
HETERO_ASSIGNMENT = [(m * 7) % 24 for m in range(24)]

#: family → (registry params, equivalent direct construction).
CASES = [
    ("fr", {"num_workers": 24, "partitions_per_worker": 4},
     lambda: FractionalRepetition(24, 4)),
    ("cr", {"num_workers": 24, "partitions_per_worker": 3},
     lambda: CyclicRepetition(24, 3)),
    ("hr", {"num_workers": 24, "c1": 3, "c2": 1, "num_groups": 4},
     lambda: HybridRepetition(24, 3, 1, 4)),
    ("explicit", {"rows": EXPLICIT_ROWS},
     lambda: ExplicitPlacement.from_rows(EXPLICIT_ROWS)),
    ("hetero",
     {"num_workers": 24, "partitions_per_worker": 3, "base": "cr",
      "assignment": HETERO_ASSIGNMENT},
     lambda: ExplicitPlacement({
         m: CyclicRepetition(24, 3).partitions_of(w)
         for m, w in enumerate(HETERO_ASSIGNMENT)
     })),
    ("comm-efficient",
     {"num_workers": 24, "partitions_per_worker": 4, "blocks": 2},
     lambda: FractionalRepetition(24, 4)),
    ("multimessage",
     {"num_workers": 24, "partitions_per_worker": 3, "base": "cr"},
     lambda: CyclicRepetition(24, 3)),
]


def best_batch_seconds(fn, iterations: int, batches: int) -> float:
    """Fastest of ``batches`` timed batches of ``iterations`` calls."""
    best = float("inf")
    for _ in range(batches):
        t0 = time.perf_counter()
        for _ in range(iterations):
            fn()
        best = min(best, time.perf_counter() - t0)
    return best


def paired_batch_seconds(fn_a, fn_b, iterations, batches):
    """Fastest batch of each of two functions, plus their best ratio.

    Batches are interleaved (A/B in one round, B/A in the next) so CPU
    frequency drift hits both paths equally — separate loops attribute
    the drift to whichever ran second.  Both functions are warmed up
    before timing, and the collector is paused so an unlucky GC cycle
    cannot land in one path's batch only.  Returns ``(best_a, best_b,
    ratio)`` where ``ratio`` is the *median* per-round a/b ratio:
    within a round the two batches run back to back, so their ratio
    cancels drift that independent minima over all rounds do not (a
    lucky B batch in round 3 vs an unlucky A batch in round 7 would
    otherwise overstate A's cost), and the median discards the
    occasional round where one batch eats a scheduler hiccup.
    """
    for _ in range(max(1, iterations // 4)):
        fn_a()
        fn_b()
    best_a = best_b = float("inf")
    ratios = []
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for round_no in range(batches):
            pair = (fn_a, fn_b) if round_no % 2 == 0 else (fn_b, fn_a)
            times = []
            for fn in pair:
                t0 = time.perf_counter()
                for _ in range(iterations):
                    fn()
                times.append(time.perf_counter() - t0)
            a_s, b_s = times if round_no % 2 == 0 else reversed(times)
            best_a = min(best_a, a_s)
            best_b = min(best_b, b_s)
            ratios.append(a_s / b_s)
    finally:
        if gc_was_enabled:
            gc.enable()
    return best_a, best_b, statistics.median(ratios)


def bench_family(family, params, direct, iterations, batches) -> dict:
    def registry_path():
        return make_placement(family, **params).fingerprint

    def direct_path():
        return direct().fingerprint

    def dispatch_only():
        return placement_scheme(family, **params)

    registry_s, direct_s, ratio = paired_batch_seconds(
        registry_path, direct_path, iterations, batches
    )
    # Dispatch cost measured directly (sub-µs, so more iterations per
    # batch for timer resolution) — see the module docstring for why
    # the assertion uses this rather than registry_s - direct_s.
    dispatch_s = best_batch_seconds(dispatch_only, iterations * 4, batches)
    overhead_pct = 100.0 * (dispatch_s / 4) / direct_s

    scheme = placement_scheme(family, **params)
    placement = scheme.construct()
    fast = scheme.conflict_graph()
    truth = conflict_graph(placement)
    graphs_identical = fast == truth

    fast_s = best_batch_seconds(
        lambda: placement_scheme(family, **params).conflict_graph(),
        max(1, iterations // 4), batches,
    )
    truth_s = best_batch_seconds(
        lambda: conflict_graph(direct()),
        max(1, iterations // 4), batches,
    )

    return {
        "family": family,
        "num_workers": placement.num_workers,
        "fingerprint": placement.fingerprint,
        "build_fingerprint": {
            "registry_seconds": registry_s,
            "direct_seconds": direct_s,
            "end_to_end_ratio": ratio,
            "dispatch_seconds": dispatch_s / 4,
            "overhead_pct": overhead_pct,
        },
        "conflict_graph": {
            "edges": fast.number_of_edges(),
            "fast_path_seconds": fast_s,
            "ground_truth_seconds": truth_s,
            "speedup": truth_s / fast_s if fast_s else float("nan"),
            "identical": graphs_identical,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="fewer iterations for CI (seconds, not minutes)",
    )
    parser.add_argument(
        "--out", type=pathlib.Path,
        default=pathlib.Path("BENCH_placement.json"),
        help="JSON report path (default: ./BENCH_placement.json)",
    )
    args = parser.parse_args(argv)
    iterations = 400 if args.smoke else 2_000
    batches = 9 if args.smoke else 15

    families = []
    failures = []
    for family, params, direct in CASES:
        result = bench_family(family, params, direct, iterations, batches)
        families.append(result)
        bf = result["build_fingerprint"]
        cg = result["conflict_graph"]
        print(
            f"{family:<15} build+fp registry {1e6 * bf['registry_seconds'] / iterations:8.1f}us "
            f"direct {1e6 * bf['direct_seconds'] / iterations:8.1f}us "
            f"dispatch {1e6 * bf['dispatch_seconds'] / iterations:5.2f}us "
            f"(overhead {bf['overhead_pct']:+.2f}%)  "
            f"graph fast/truth {cg['speedup']:.2f}x, "
            f"identical: {cg['identical']}"
        )
        if not cg["identical"]:
            failures.append(
                f"{family}: fast-path conflict graph diverged from the "
                "partition-intersection ground truth"
            )
        if bf["overhead_pct"] >= MAX_OVERHEAD_PCT:
            failures.append(
                f"{family}: registry adds {bf['overhead_pct']:.2f}% to "
                f"build+fingerprint (budget {MAX_OVERHEAD_PCT}%)"
            )

    report = {
        "bench": "placement",
        "mode": "smoke" if args.smoke else "full",
        "iterations": iterations,
        "batches": batches,
        "max_overhead_pct": MAX_OVERHEAD_PCT,
        "env": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
        },
        "families": families,
        "ok": not failures,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
