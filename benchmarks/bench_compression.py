"""Extension bench — top-k sparsification over IS-GC payloads.

Sweeps the kept fraction and reports the bandwidth/convergence
trade-off: uploads shrink linearly with the fraction while error
feedback keeps training convergent, at a loss-at-budget penalty that
grows as the fraction falls.
"""

import numpy as np
import pytest

from repro.analysis.reporting import Table
from repro.core import CyclicRepetition
from repro.simulation import ClusterSimulator, ComputeModel, NetworkModel
from repro.straggler import NoDelay
from repro.training import (
    CompressedISGCStrategy,
    DistributedTrainer,
    ISGCStrategy,
    LogisticRegressionModel,
    SGD,
    TopKCompressor,
    build_batch_streams,
    make_classification,
    nonzero_fraction,
    partition_dataset,
)

from conftest import register_report

N, C, W, STEPS = 4, 2, 4, 120


def _run(strategy):
    ds = make_classification(512, 8, num_classes=2, separation=3.0, seed=1)
    streams = build_batch_streams(partition_dataset(ds, N, seed=2), 32, seed=3)
    cluster = ClusterSimulator(
        N, C, compute=ComputeModel(0.01, 0.01),
        network=NetworkModel(latency=0.0, bandwidth=float("inf")),
        delay_model=NoDelay(), rng=np.random.default_rng(0),
    )
    trainer = DistributedTrainer(
        LogisticRegressionModel(8, seed=0), streams, strategy,
        cluster, SGD(0.3), eval_data=ds,
    )
    return trainer.run(max_steps=STEPS)


@pytest.fixture(scope="module")
def compression_report():
    table = Table(
        title=(
            "Extension — top-k sparsified IS-GC payloads "
            f"(n={N}, c={C}, w={W}, {STEPS} steps)"
        ),
        columns=["kept fraction", "upload elems/9", "final loss"],
    )
    rows = []
    for fraction in (1.0, 0.5, 0.2, 0.1):
        if fraction == 1.0:
            strategy = ISGCStrategy(
                CyclicRepetition(N, C), wait_for=W,
                rng=np.random.default_rng(1),
            )
        else:
            strategy = CompressedISGCStrategy(
                CyclicRepetition(N, C), wait_for=W, fraction=fraction,
                rng=np.random.default_rng(1),
            )
        summary = _run(strategy)
        kept = max(1, round(9 * fraction))  # 9 = logistic model params
        table.add_row(fraction, kept, round(summary.final_loss, 4))
        rows.append((fraction, summary.final_loss))
    register_report("extension_compression", table.render())
    return rows


def test_compressor_bench(benchmark, compression_report):
    comp = TopKCompressor(0.01)
    vec = np.random.default_rng(0).normal(size=100_000)
    benchmark(comp.compress, 0, vec)


def test_all_fractions_converge(compression_report):
    for fraction, final_loss in compression_report:
        assert final_loss < 0.5, f"fraction {fraction} failed to converge"


def test_sparsity_measured(compression_report):
    strategy = CompressedISGCStrategy(
        CyclicRepetition(N, C), wait_for=W, fraction=0.2,
        rng=np.random.default_rng(2),
    )
    rng = np.random.default_rng(3)
    grads = {p: rng.normal(size=50) for p in range(N)}
    assert nonzero_fraction(strategy.encode(grads)) <= 0.2 + 1e-9
