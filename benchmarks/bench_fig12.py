"""Fig. 12 reproduction — end-to-end training comparison (n=4, c=2).

Regenerates all four panels (recovered-gradient %, steps to threshold,
average step time, total training time vs the wait count ``w``) and
times one training cell.

Expected shape vs the paper (Sec. VIII-C):
* (a) IS-GC recovers more gradients than IS-SGD at every w, hits 100 %
  at w = 3, and FR beats CR at w = 2;
* (b) steps-to-threshold falls as recovery rises (paper: IS-GC saves up
  to 37.1 % of steps; we measure ≈38 % at w = 1);
* (c) IS-GC pays a modest constant step-time overhead over IS-SGD;
* (d) total time is optimised at an intermediate w.
"""

import pytest

from repro.experiments import Fig12Config, fig12_tables, run_fig12, recovery_table

from conftest import register_report


@pytest.fixture(scope="module")
def fig12_report():
    cfg = Fig12Config(num_trials=2)
    tables = fig12_tables(cfg)
    text = "\n\n".join(t.render() for t in tables)
    register_report("fig12_training", text)
    return cfg, tables


SMALL = Fig12Config(
    num_trials=1, max_steps=120, loss_threshold=0.0,
    recovery_trials=500, dataset_samples=512, wait_values=(2,),
)


def test_fig12_recovery_panel(benchmark, fig12_report):
    table = benchmark(recovery_table, Fig12Config(recovery_trials=2000))
    # FR > CR at w = 2 appears in the rendered row.
    row_w2 = next(r for r in table.rows if r[0] == 2)
    fr_pct = float(str(row_w2[2]).rstrip("%"))
    cr_pct = float(str(row_w2[3]).rstrip("%"))
    assert fr_pct > cr_pct


def test_fig12_training_cell(benchmark, fig12_report):
    """Time one (w=2) training cell across the three IS schemes."""
    results = benchmark(run_fig12, SMALL)
    points = results[2]
    issgd = next(p for p in points if p.scheme == "is-sgd")
    isgc_fr = next(p for p in points if p.scheme == "is-gc-fr")
    assert isgc_fr.recovery_pct > issgd.recovery_pct
    assert isgc_fr.avg_step_time >= issgd.avg_step_time


def test_fig12_full_shape(fig12_report):
    """Shape assertions on the full (reported) configuration."""
    cfg, _tables = fig12_report
    results = run_fig12(cfg)
    # (b): steps fall (weakly) as w rises for IS-SGD.
    issgd_steps = [
        next(p for p in results[w] if p.scheme == "is-sgd").num_steps
        for w in (1, 2, 4)
    ]
    assert issgd_steps[0] >= issgd_steps[1] >= issgd_steps[2]
    # (b): IS-GC needs no more steps than IS-SGD at w = 1 (more recovery).
    w1 = results[1]
    assert (
        next(p for p in w1 if p.scheme == "is-gc-fr").num_steps
        <= next(p for p in w1 if p.scheme == "is-sgd").num_steps
    )
    # (d): at w = 4 waiting for everyone costs the most total time per
    # step; the intermediate-w optimum appears in avg_step_time ordering.
    step_times = [
        next(p for p in results[w] if p.scheme == "is-gc-fr").avg_step_time
        for w in (1, 2, 3, 4)
    ]
    assert step_times == sorted(step_times)
