"""Extension bench — multi-message uploads vs coded IS-GC payloads.

Regenerates the recovery-vs-deadline head-to-head: multi-message
recovers earlier (stragglers' partial work counts) at a ``c×``
bandwidth cost; IS-GC catches up once workers finish their full local
computation.
"""

import numpy as np
import pytest

from repro.analysis.reporting import Table
from repro.core import CyclicRepetition
from repro.partial import MultiMessageRound, recovery_vs_deadline
from repro.simulation import ComputeModel, NetworkModel
from repro.straggler import ShiftedExponentialDelay

from conftest import register_report

IDEAL = NetworkModel(latency=0.0, bandwidth=float("inf"))
PLACEMENT = CyclicRepetition(8, 2)
COMPUTE = ComputeModel(base=0.1, per_partition=0.4)
DELAYS = ShiftedExponentialDelay(0.0, 0.5)


@pytest.fixture(scope="module")
def multimessage_report():
    comparisons = recovery_vs_deadline(
        PLACEMENT,
        deadlines=(0.4, 0.7, 1.0, 1.5, 2.5, 4.0),
        trials=400,
        compute=COMPUTE,
        network=IDEAL,
        delay_model=DELAYS,
        seed=3,
    )
    table = Table(
        title=(
            "Extension — recovery vs deadline: multi-message (c× bytes) "
            "vs IS-GC coded payloads, CR(8,2), exp(0.5s) stragglers"
        ),
        columns=[
            "deadline (s)", "multi-message E[recovered]",
            "is-gc E[recovered]", "multi-message lead",
        ],
    )
    for comp in comparisons:
        lead = comp.multimessage_recovered - comp.isgc_recovered
        table.add_row(
            comp.deadline,
            round(comp.multimessage_recovered, 2),
            round(comp.isgc_recovered, 2),
            f"{lead:+.2f}",
        )
    register_report("extension_multimessage", table.render())
    return comparisons


def test_round_simulation_bench(benchmark, multimessage_report):
    round_sim = MultiMessageRound(
        PLACEMENT, compute=COMPUTE, network=IDEAL,
        delay_model=DELAYS, rng=np.random.default_rng(0),
    )
    benchmark(round_sim.simulate, 0)


def test_comparison_bench(benchmark, multimessage_report):
    benchmark(
        recovery_vs_deadline,
        PLACEMENT, (0.5, 1.5), 50,
        COMPUTE, IDEAL, DELAYS,
    )


def test_multimessage_leads_early(multimessage_report):
    tightest = multimessage_report[0]
    assert tightest.multimessage_recovered > tightest.isgc_recovered


def test_both_converge_late(multimessage_report):
    loosest = multimessage_report[-1]
    assert loosest.isgc_recovered >= 0.9 * loosest.multimessage_recovered
