#!/usr/bin/env python3
"""Benchmark the parallel sweep executor and the decode cache.

Unlike the ``bench_*.py`` pytest-benchmark suites, this is a
self-contained script — ``make bench`` and the CI smoke step run it
directly and archive its JSON report, so the perf trajectory
accumulates one comparable data point per commit::

    PYTHONPATH=src python benchmarks/bench_parallel.py --smoke
    PYTHONPATH=src python benchmarks/bench_parallel.py --jobs 8

Two sections:

* **sweep** — a fig11-shaped grid executed serially and through
  :class:`~repro.parallel.ProcessExecutor`; results must be bit-for-bit
  identical (the script exits non-zero otherwise), and the report
  records the wall-clock speedup.  On an 8-core runner the full grid
  shows >= 3x; speedup is *reported, not asserted*, because CI and dev
  machines differ in core count.
* **decode-cache** — the same decode stream with and without a
  :class:`~repro.parallel.DecodeCache`, asserting bit-identical
  results and recording the hit rate and time saved.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import time

import numpy as np

from repro.core.cyclic import CyclicRepetition
from repro.core.decoders import decoder_for
from repro.experiments.config import Fig11Config
from repro.experiments.fig11 import run_fig11
from repro.parallel import DecodeCache, ProcessExecutor


def _grid_config(smoke: bool) -> Fig11Config:
    if smoke:
        return Fig11Config(
            num_workers=8,
            num_steps=20,
            expected_delays=(1.5, 3.0),
            num_delayed_options=(4, 8),
            wait_values=(2, 6),
        )
    return Fig11Config(num_steps=120)


def bench_sweep(jobs: int, smoke: bool) -> dict:
    cfg = _grid_config(smoke)
    conditions = len(cfg.expected_delays) * len(cfg.num_delayed_options)

    t0 = time.perf_counter()
    serial = run_fig11(cfg)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = run_fig11(cfg, executor=ProcessExecutor(jobs))
    parallel_s = time.perf_counter() - t0

    identical = serial == parallel
    return {
        "grid": {
            "conditions": conditions,
            "num_workers": cfg.num_workers,
            "num_steps": cfg.num_steps,
        },
        "jobs": jobs,
        "serial_seconds": serial_s,
        "parallel_seconds": parallel_s,
        "speedup": serial_s / parallel_s if parallel_s else float("nan"),
        "bit_identical": identical,
    }


def bench_decode_cache(smoke: bool) -> dict:
    placement = CyclicRepetition(24, 2)
    rounds = 2_000 if smoke else 20_000
    n = placement.num_workers

    # A sweep replays the same straggler scenarios over and over, so
    # availability masks recur; model that with a bounded mask pool
    # rather than fresh uniform masks (which would never repeat).
    pool_rng = np.random.default_rng(1)
    mask_pool = [
        frozenset(
            int(x) for x in pool_rng.choice(
                n, size=int(pool_rng.integers(6, 18)), replace=False
            )
        )
        for _ in range(64)
    ]

    def decode_stream(cache):
        rng = np.random.default_rng(7)
        mask_rng = np.random.default_rng(2)
        decoder = decoder_for(placement, rng=rng, cache=cache)
        out = []
        t0 = time.perf_counter()
        for _ in range(rounds):
            mask = mask_pool[int(mask_rng.integers(len(mask_pool)))]
            out.append(decoder.decode(mask))
        return out, time.perf_counter() - t0

    uncached, uncached_s = decode_stream(None)
    cache = DecodeCache()
    cached, cached_s = decode_stream(cache)

    return {
        "rounds": rounds,
        "uncached_seconds": uncached_s,
        "cached_seconds": cached_s,
        "speedup": uncached_s / cached_s if cached_s else float("nan"),
        "bit_identical": uncached == cached,
        "cache": cache.snapshot(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small grid for CI (seconds, not minutes)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: min(8, cpu count))",
    )
    parser.add_argument(
        "--out", type=pathlib.Path,
        default=pathlib.Path("BENCH_parallel.json"),
        help="JSON report path (default: ./BENCH_parallel.json)",
    )
    args = parser.parse_args(argv)
    jobs = args.jobs if args.jobs is not None else min(8, os.cpu_count() or 1)

    print(f"sweep: fig11-shaped grid, jobs={jobs} "
          f"({'smoke' if args.smoke else 'full'}) ...")
    sweep = bench_sweep(jobs, args.smoke)
    print(f"  serial   {sweep['serial_seconds']:.2f}s")
    print(f"  parallel {sweep['parallel_seconds']:.2f}s "
          f"(speedup {sweep['speedup']:.2f}x, "
          f"bit-identical: {sweep['bit_identical']})")

    print("decode cache: repeated-mask decode stream ...")
    cache = bench_decode_cache(args.smoke)
    print(f"  uncached {cache['uncached_seconds']:.2f}s, "
          f"cached {cache['cached_seconds']:.2f}s "
          f"(speedup {cache['speedup']:.2f}x, "
          f"hit rate {100 * cache['cache']['hit_rate']:.1f}%, "
          f"bit-identical: {cache['bit_identical']})")

    report = {
        "bench": "parallel",
        "mode": "smoke" if args.smoke else "full",
        "env": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
        },
        "sweep": sweep,
        "decode_cache": cache,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")

    if not (sweep["bit_identical"] and cache["bit_identical"]):
        print("FAIL: parallel/cached results diverged from the "
              "serial/uncached reference", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
