#!/usr/bin/env python3
"""Benchmark the parallel sweep executor and the decode cache.

Unlike the ``bench_*.py`` pytest-benchmark suites, this is a
self-contained script — ``make bench`` and the CI smoke step run it
directly and archive its JSON report, so the perf trajectory
accumulates one comparable data point per commit::

    PYTHONPATH=src python benchmarks/bench_parallel.py --smoke
    PYTHONPATH=src python benchmarks/bench_parallel.py --jobs 8

Two sections:

* **sweep** — a fig11-shaped grid executed serially and through
  :class:`~repro.parallel.ProcessExecutor`; results must be bit-for-bit
  identical (the script exits non-zero otherwise), and the report
  records the wall-clock speedup.  On an 8-core runner the full grid
  shows >= 3x; speedup is *reported, not asserted*, because CI and dev
  machines differ in core count.
* **decode-cache** — the same decode stream with and without a
  :class:`~repro.parallel.DecodeCache`, asserting bit-identical
  results and recording the hit rate and time saved.
* **batch-decode** — the same mask stream through ``decode_batch``
  versus the per-mask loop, asserting **>= 10x** speedup on the smoke
  grid, bit-for-bit identical selections *and* generator stream, plus
  looped/batched equivalence for every registered placement family.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import time

import numpy as np

from repro.core.cyclic import CyclicRepetition
from repro.core.decoders import decoder_for
from repro.experiments.config import Fig11Config
from repro.experiments.fig11 import run_fig11
from repro.parallel import DecodeCache, ProcessExecutor


def _grid_config(smoke: bool) -> Fig11Config:
    if smoke:
        return Fig11Config(
            num_workers=8,
            num_steps=20,
            expected_delays=(1.5, 3.0),
            num_delayed_options=(4, 8),
            wait_values=(2, 6),
        )
    return Fig11Config(num_steps=120)


def bench_sweep(jobs: int, smoke: bool) -> dict:
    cfg = _grid_config(smoke)
    conditions = len(cfg.expected_delays) * len(cfg.num_delayed_options)

    t0 = time.perf_counter()
    serial = run_fig11(cfg)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = run_fig11(cfg, executor=ProcessExecutor(jobs))
    parallel_s = time.perf_counter() - t0

    identical = serial == parallel
    return {
        "grid": {
            "conditions": conditions,
            "num_workers": cfg.num_workers,
            "num_steps": cfg.num_steps,
        },
        "jobs": jobs,
        "serial_seconds": serial_s,
        "parallel_seconds": parallel_s,
        "speedup": serial_s / parallel_s if parallel_s else float("nan"),
        "bit_identical": identical,
    }


def bench_decode_cache(smoke: bool) -> dict:
    placement = CyclicRepetition(24, 2)
    rounds = 2_000 if smoke else 20_000
    n = placement.num_workers

    # A sweep replays the same straggler scenarios over and over, so
    # availability masks recur; model that with a bounded mask pool
    # rather than fresh uniform masks (which would never repeat).
    pool_rng = np.random.default_rng(1)
    mask_pool = [
        frozenset(
            int(x) for x in pool_rng.choice(
                n, size=int(pool_rng.integers(6, 18)), replace=False
            )
        )
        for _ in range(64)
    ]

    def decode_stream(cache):
        rng = np.random.default_rng(7)
        mask_rng = np.random.default_rng(2)
        decoder = decoder_for(placement, rng=rng, cache=cache)
        out = []
        t0 = time.perf_counter()
        for _ in range(rounds):
            mask = mask_pool[int(mask_rng.integers(len(mask_pool)))]
            out.append(decoder.decode(mask))
        return out, time.perf_counter() - t0

    uncached, uncached_s = decode_stream(None)
    cache = DecodeCache()
    cached, cached_s = decode_stream(cache)

    return {
        "rounds": rounds,
        "uncached_seconds": uncached_s,
        "cached_seconds": cached_s,
        "speedup": uncached_s / cached_s if cached_s else float("nan"),
        "bit_identical": uncached == cached,
        "cache": cache.snapshot(),
    }


def _family_placements() -> "list[tuple[str, object]]":
    """One representative placement per registered family."""
    from repro.core.scheme import make_placement

    return [
        ("fr", make_placement("fr", num_workers=12, partitions_per_worker=3)),
        ("cr", make_placement("cr", num_workers=12, partitions_per_worker=3)),
        (
            "hr",
            make_placement(
                "hr", num_workers=12, c1=1, c2=2, num_groups=3
            ),
        ),
        (
            "explicit",
            make_placement(
                "explicit",
                rows=[[0, 1], [1, 2], [2, 3], [3, 4], [4, 5], [5, 0]],
            ),
        ),
        (
            "hetero",
            make_placement(
                "hetero",
                num_workers=8,
                assignment=[3, 1, 0, 2, 7, 5, 4, 6],
                base="cr",
                partitions_per_worker=2,
            ),
        ),
        (
            "comm-efficient",
            make_placement(
                "comm-efficient",
                num_workers=12,
                partitions_per_worker=3,
                blocks=2,
            ),
        ),
        (
            "multimessage",
            make_placement(
                "multimessage",
                num_workers=12,
                partitions_per_worker=2,
                base="cr",
            ),
        ),
    ]


def _random_masks(n: int, count: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    masks = np.zeros((count, n), dtype=bool)
    lo, hi = max(1, n // 4), max(2, 3 * n // 4)
    for i in range(count):
        size = int(rng.integers(lo, hi + 1))
        masks[i, rng.choice(n, size=size, replace=False)] = True
    return masks


def bench_batch_decode(smoke: bool) -> dict:
    """``decode_batch`` vs the per-mask loop: speed + equivalence."""
    import warnings

    # A larger circle than fig11's n=24: per-mask work is what the
    # vectorization removes, and at n=48/c=3 the looped walks dominate
    # over the irreducible per-mask fairness draws (one ``integers`` +
    # one ``shuffle`` each, identical on both paths by contract).
    placement = CyclicRepetition(48, 3)
    num_masks = 4_000 if smoke else 40_000
    masks = _random_masks(placement.num_workers, num_masks, seed=3)

    # Both sides are timed as the best of two runs (fresh identically
    # seeded generators each run) so a scheduler hiccup on either side
    # cannot decide the speedup assertion.
    mask_lists = [np.flatnonzero(row).tolist() for row in masks]
    looped_s = float("inf")
    for _ in range(2):
        looped_rng = np.random.default_rng(11)
        looped_dec = decoder_for(placement, rng=looped_rng)
        t0 = time.perf_counter()
        looped = [looped_dec.decode(m) for m in mask_lists]
        looped_s = min(looped_s, time.perf_counter() - t0)

    batched_s = float("inf")
    for _ in range(2):
        batched_rng = np.random.default_rng(11)
        batched_dec = decoder_for(placement, rng=batched_rng)
        t0 = time.perf_counter()
        batch = batched_dec.decode_batch(masks)
        batched_s = min(batched_s, time.perf_counter() - t0)
    # Materialising per-mask DecodeResult objects is outside the timed
    # window on purpose: batch consumers (recovery stats, variance
    # moments) work on the arrays and never pay this cost.
    bit_identical = (
        batch.results() == looped
        and batched_rng.bit_generator.state
        == looped_rng.bit_generator.state
    )

    # Equivalence for every registered placement family: identical
    # selections and identical generator stream, looped vs batched.
    families = {}
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        for name, family_placement in _family_placements():
            fam_masks = _random_masks(
                family_placement.num_workers, 200, seed=5
            )
            rng_a = np.random.default_rng(23)
            rng_b = np.random.default_rng(23)
            dec_a = decoder_for(family_placement, rng=rng_a)
            dec_b = decoder_for(family_placement, rng=rng_b)
            fam_looped = [
                dec_a.decode(np.flatnonzero(row).tolist())
                for row in fam_masks
            ]
            fam_batch = dec_b.decode_batch(fam_masks)
            families[name] = bool(
                fam_batch.results() == fam_looped
                and rng_a.bit_generator.state == rng_b.bit_generator.state
            )

    speedup = looped_s / batched_s if batched_s else float("nan")
    return {
        "num_masks": num_masks,
        "looped_seconds": looped_s,
        "batched_seconds": batched_s,
        "speedup": speedup,
        "speedup_ok": speedup >= 10.0,
        "bit_identical": bool(bit_identical),
        "families": families,
        "families_ok": all(families.values()),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small grid for CI (seconds, not minutes)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: min(8, cpu count))",
    )
    parser.add_argument(
        "--out", type=pathlib.Path,
        default=pathlib.Path("BENCH_parallel.json"),
        help="JSON report path (default: ./BENCH_parallel.json)",
    )
    args = parser.parse_args(argv)
    jobs = args.jobs if args.jobs is not None else min(8, os.cpu_count() or 1)

    print(f"sweep: fig11-shaped grid, jobs={jobs} "
          f"({'smoke' if args.smoke else 'full'}) ...")
    sweep = bench_sweep(jobs, args.smoke)
    print(f"  serial   {sweep['serial_seconds']:.2f}s")
    print(f"  parallel {sweep['parallel_seconds']:.2f}s "
          f"(speedup {sweep['speedup']:.2f}x, "
          f"bit-identical: {sweep['bit_identical']})")

    print("decode cache: repeated-mask decode stream ...")
    cache = bench_decode_cache(args.smoke)
    print(f"  uncached {cache['uncached_seconds']:.2f}s, "
          f"cached {cache['cached_seconds']:.2f}s "
          f"(speedup {cache['speedup']:.2f}x, "
          f"hit rate {100 * cache['cache']['hit_rate']:.1f}%, "
          f"bit-identical: {cache['bit_identical']})")

    print("batch decode: vectorized decode_batch vs per-mask loop ...")
    batch = bench_batch_decode(args.smoke)
    print(f"  looped   {batch['looped_seconds']:.2f}s, "
          f"batched {batch['batched_seconds']:.2f}s "
          f"(speedup {batch['speedup']:.1f}x, "
          f"bit-identical: {batch['bit_identical']})")
    print("  family equivalence: "
          + ", ".join(f"{k}={'ok' if v else 'FAIL'}"
                      for k, v in batch["families"].items()))

    report = {
        "bench": "parallel",
        "mode": "smoke" if args.smoke else "full",
        "env": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
        },
        "sweep": sweep,
        "decode_cache": cache,
        "batch_decode": batch,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")

    if not (sweep["bit_identical"] and cache["bit_identical"]):
        print("FAIL: parallel/cached results diverged from the "
              "serial/uncached reference", file=sys.stderr)
        return 1
    if not (batch["bit_identical"] and batch["families_ok"]):
        print("FAIL: batched decoding diverged from the looped "
              "reference", file=sys.stderr)
        return 1
    if not batch["speedup_ok"]:
        print(f"FAIL: batched decode speedup {batch['speedup']:.1f}x "
              "is below the required 10x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
