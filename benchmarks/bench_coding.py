"""Coding-layer ablation — summation code vs classic GC throughput.

IS-GC's worker-side encode is a plain vector sum and its master-side
decode is a sum over the selected workers; classic GC needs weighted
combinations and a least-squares solve per straggler pattern.  This
bench quantifies that gap across gradient sizes.
"""

import numpy as np
import pytest

from repro.codes import ClassicGradientCode
from repro.core import CyclicRepetition, SummationCode, decoder_for


def _gradients(n, dim, seed=0):
    rng = np.random.default_rng(seed)
    return {p: rng.normal(size=dim) for p in range(n)}


@pytest.mark.parametrize("dim", [1_000, 100_000])
def test_summation_encode(benchmark, dim):
    placement = CyclicRepetition(24, 2)
    code = SummationCode(placement)
    grads = _gradients(24, dim)
    benchmark(code.encode, grads)


@pytest.mark.parametrize("dim", [1_000, 100_000])
def test_classic_gc_encode(benchmark, dim):
    placement = CyclicRepetition(24, 2)
    code = ClassicGradientCode(placement, rng=np.random.default_rng(0))
    grads = _gradients(24, dim)
    benchmark(code.encode, grads)


def test_summation_decode(benchmark):
    placement = CyclicRepetition(24, 2)
    code = SummationCode(placement)
    grads = _gradients(24, 100_000)
    payloads = code.encode(grads)
    decoder = decoder_for(placement, rng=np.random.default_rng(0))
    decision = decoder.decode(list(range(0, 24, 2)))
    benchmark(code.decode_sum, decision, payloads)


def test_classic_gc_decode(benchmark):
    """Classic GC decode includes the least-squares solve."""
    placement = CyclicRepetition(24, 2)
    code = ClassicGradientCode(placement, rng=np.random.default_rng(0))
    grads = _gradients(24, 100_000)
    payloads = code.encode(grads)
    survivors = list(range(23))  # one straggler
    benchmark(code.decode, survivors, payloads)
