"""Extension bench — online placement adaptation.

Fixed-CR vs fixed-FR vs the adaptive trainer on the same workload:
the adaptive run starts on CR (the "wrong" placement at w = 4), pays a
small migration, and finishes with recovery close to the fixed-FR run.
"""

import numpy as np
import pytest

from repro.analysis.reporting import Table
from repro.core import CyclicRepetition, FractionalRepetition
from repro.simulation import ClusterSimulator, ComputeModel, NetworkModel
from repro.straggler import ExponentialDelay
from repro.training import (
    AdaptivePlacementTrainer,
    DistributedTrainer,
    ISGCStrategy,
    LogisticRegressionModel,
    SGD,
    build_batch_streams,
    make_classification,
    partition_dataset,
)

from conftest import register_report

N, C, W, STEPS = 8, 2, 4, 120


def _workload():
    ds = make_classification(512, 8, num_classes=2, separation=3.0, seed=1)
    streams = build_batch_streams(partition_dataset(ds, N, seed=2), 32, seed=3)
    return ds, streams


def _cluster():
    return ClusterSimulator(
        N, C, compute=ComputeModel(0.02, 0.02),
        network=NetworkModel(latency=0.0, bandwidth=float("inf")),
        delay_model=ExponentialDelay(0.5),
        rng=np.random.default_rng(0),
    )


def _fixed(placement, ds, streams):
    strategy = ISGCStrategy(
        placement, wait_for=W, rng=np.random.default_rng(5)
    )
    trainer = DistributedTrainer(
        LogisticRegressionModel(8, seed=0), streams, strategy,
        _cluster(), SGD(0.3), eval_data=ds,
    )
    return trainer.run(max_steps=STEPS)


def _adaptive(ds, streams):
    trainer = AdaptivePlacementTrainer(
        model=LogisticRegressionModel(8, seed=0),
        streams=streams,
        initial_placement=CyclicRepetition(N, C),
        wait_for=W,
        cluster=_cluster(),
        optimizer=SGD(0.3),
        eval_data=ds,
        partition_bytes=1e5,
        network=NetworkModel(latency=0.001, bandwidth=1e9),
        review_every=20,
        rng=np.random.default_rng(6),
    )
    summary = trainer.run(max_steps=STEPS)
    return trainer, summary


@pytest.fixture(scope="module")
def adaptive_report():
    ds, streams = _workload()
    fixed_cr = _fixed(CyclicRepetition(N, C), ds, streams)
    fixed_fr = _fixed(FractionalRepetition(N, C), ds, streams)
    trainer, adaptive = _adaptive(ds, streams)

    table = Table(
        title=(
            "Extension — online placement adaptation "
            f"(n={N}, c={C}, w={W}, {STEPS} steps)"
        ),
        columns=["run", "avg recovery %", "final loss", "migrations"],
    )
    table.add_row("fixed CR", f"{100 * fixed_cr.avg_recovery_fraction:.1f}",
                  round(fixed_cr.final_loss, 4), 0)
    table.add_row("fixed FR", f"{100 * fixed_fr.avg_recovery_fraction:.1f}",
                  round(fixed_fr.final_loss, 4), 0)
    table.add_row(
        "adaptive (CR start)",
        f"{100 * adaptive.avg_recovery_fraction:.1f}",
        round(adaptive.final_loss, 4),
        len(trainer.migrations),
    )
    register_report("extension_adaptive_placement", table.render())
    return fixed_cr, fixed_fr, adaptive, trainer


def test_adaptive_run_bench(benchmark, adaptive_report):
    ds, streams = _workload()
    benchmark(_adaptive, ds, streams)


def test_adaptive_lands_between_cr_and_fr(adaptive_report):
    fixed_cr, fixed_fr, adaptive, trainer = adaptive_report
    assert trainer.migrations
    assert (
        fixed_cr.avg_recovery_fraction
        < adaptive.avg_recovery_fraction
        <= fixed_fr.avg_recovery_fraction + 1e-9
    )
