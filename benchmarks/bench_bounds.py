"""Theory table — Theorems 10/11 bounds vs exact and Monte-Carlo recovery.

Regenerates the Sec. VII analysis as a table: for each scheme and each
``w`` it shows the theoretical band ``[lower, upper]`` on ``α(G[W'])``,
the exact expectation (closed form for FR, subset enumeration for CR
and HR), and a Monte-Carlo estimate — all three must agree.
"""

import numpy as np
import pytest

from repro.analysis import (
    expected_alpha_exact,
    expected_alpha_fr,
    monte_carlo_recovery,
)
from repro.analysis.reporting import Table
from repro.core import (
    CyclicRepetition,
    FractionalRepetition,
    HybridRepetition,
    alpha_lower_bound,
    alpha_upper_bound,
)

from conftest import register_report


@pytest.fixture(scope="module")
def bounds_report():
    placements = [
        ("FR(8,2)", FractionalRepetition(8, 2)),
        ("CR(8,2)", CyclicRepetition(8, 2)),
        ("HR(8,2,2,g=2)", HybridRepetition(8, 2, 2, 2)),
    ]
    table = Table(
        title="Theory — Thm 10/11 bounds vs exact and Monte-Carlo E[α]",
        columns=[
            "placement", "w", "lower", "upper", "exact E[α]", "MC E[α]",
        ],
    )
    for name, placement in placements:
        n = placement.num_workers
        c = placement.partitions_per_worker
        for w in (2, 4, 6, 8):
            exact = expected_alpha_exact(placement, w)
            mc = monte_carlo_recovery(
                placement, w, trials=2000, seed=1
            ).mean_recovered / c
            table.add_row(
                name, w,
                alpha_lower_bound(n, c, w), alpha_upper_bound(n, c, w),
                round(exact, 4), round(mc, 4),
            )
    register_report("theory_bounds", table.render())
    return table


def test_exact_alpha_bench(benchmark, bounds_report):
    placement = CyclicRepetition(12, 3)
    benchmark(expected_alpha_exact, placement, 6)


def test_closed_form_fr_bench(benchmark, bounds_report):
    result = benchmark(expected_alpha_fr, 48, 4, 24)
    assert 0 < result <= 12


def test_bounds_bracket_exact(bounds_report):
    for row in bounds_report.rows:
        _, _, lower, upper, exact, mc = row
        assert lower - 1e-9 <= exact <= upper + 1e-9
        assert abs(exact - mc) < 0.15
