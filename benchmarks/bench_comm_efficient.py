"""Extension bench — communication-efficient GC and its IS extension.

Sweeps the block count ``k`` of Ye-Abbe coding over FR(8, 4) and
reports the three-way trade-off:

* upload size per worker (shrinks as 1/k),
* guaranteed straggler tolerance per group (c − k),
* expected *partial* recovery under random stragglers when decoding
  with the ignore-straggler extension (``decode_partial``).
"""

import numpy as np
import pytest

from repro.analysis.reporting import Table
from repro.codes import CommEfficientGC
from repro.core import FractionalRepetition
from repro.exceptions import CodingError

from conftest import register_report

N, C = 8, 4
DIM = 256
TRIALS = 500


@pytest.fixture(scope="module")
def comm_report():
    placement = FractionalRepetition(N, C)
    rng = np.random.default_rng(0)
    grads = {p: rng.normal(size=DIM) for p in range(N)}

    table = Table(
        title=(
            f"Extension — Ye-Abbe block coding over FR({N},{C}) with the "
            f"IS decode, d={DIM}, random w=4 availability, {TRIALS} rounds"
        ),
        columns=[
            "k", "upload elems", "tolerance/group",
            "mean recovered %", "round failures %",
        ],
    )
    for k in (1, 2, 3, 4):
        code = CommEfficientGC(placement, blocks=k)
        payloads = code.encode(grads)
        recovered = 0.0
        failures = 0
        for _ in range(TRIALS):
            avail = rng.choice(N, size=4, replace=False).tolist()
            try:
                _, rec = code.decode_partial(avail, payloads, DIM)
                recovered += len(rec) / N
            except CodingError:
                failures += 1
        table.add_row(
            k,
            code.payload_elements(DIM),
            code.max_stragglers_per_group,
            f"{100 * recovered / TRIALS:.1f}",
            f"{100 * failures / TRIALS:.1f}",
        )
    register_report("extension_comm_efficient", table.render())
    return table


def test_encode_bench(benchmark, comm_report):
    placement = FractionalRepetition(N, C)
    code = CommEfficientGC(placement, blocks=2)
    rng = np.random.default_rng(1)
    grads = {p: rng.normal(size=10_000) for p in range(N)}
    benchmark(code.encode, grads)


def test_decode_bench(benchmark, comm_report):
    placement = FractionalRepetition(N, C)
    code = CommEfficientGC(placement, blocks=2)
    rng = np.random.default_rng(2)
    grads = {p: rng.normal(size=10_000) for p in range(N)}
    payloads = code.encode(grads)
    benchmark(code.decode, [0, 1, 4, 5], payloads, 10_000)


def test_upload_shrinks_with_k(comm_report):
    sizes = [row[1] for row in comm_report.rows]
    assert sizes == sorted(sizes, reverse=True)


def test_recovery_shrinks_with_k(comm_report):
    """More compression → fewer decodable rounds at fixed w."""
    recoveries = [float(str(row[3])) for row in comm_report.rows]
    assert recoveries == sorted(recoveries, reverse=True)
