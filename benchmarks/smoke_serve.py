#!/usr/bin/env python3
"""Serve smoke: 8 concurrent jobs through the full mailbox protocol.

A self-contained script — ``make serve-smoke`` and the CI step run it
directly and archive its JSON report.  Three gates, all asserted (the
script exits non-zero on any violation):

* **determinism** — 8 jobs submitted through a file mailbox and run by
  one deterministic coordinator produce reports *and* streamed JSONL
  round traces bit-for-bit identical to 8 sequential single-job runs;
* **lossless traces** — each job's streamed trace re-reads and
  re-aggregates to exactly the loss trajectory its report carries;
* **failure isolation (live mode)** — rerunning the same 8 jobs in
  live (thread-pool) mode with one deliberately broken ninth job: the
  bad job FAILs, every peer still matches the deterministic reports.

Usage::

    PYTHONPATH=src python benchmarks/smoke_serve.py
"""

from __future__ import annotations

import asyncio
import json
import pathlib
import platform
import sys
import tempfile
import time

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro import (  # noqa: E402
    Coordinator,
    CoordinatorClient,
    ExperimentSpec,
    JobState,
    ServeMailbox,
    aggregate_traces,
    read_traces,
    run_jobs,
)

NUM_JOBS = 8
SCHEMES = ("is-gc-cr", "is-gc-fr", "is-gc-hr", "gc")


def make_specs():
    """Eight small jobs spanning four placement schemes."""
    specs = []
    for i in range(NUM_JOBS):
        scheme = SCHEMES[i % len(SCHEMES)]
        num_workers, params = 4, {}
        if scheme == "is-gc-hr":
            num_workers = 6
            params = {"c1": 1, "c2": 2, "num_groups": 2}
        specs.append(ExperimentSpec(
            name=f"smoke-{i}",
            scheme=scheme,
            num_workers=num_workers,
            partitions_per_worker=2,
            wait_for=3,
            max_steps=12,
            seed=40 + i,
            scheme_params=params,
        ))
    return specs


def bad_spec():
    """A job that fails at engine build (unknown scheme)."""
    return ExperimentSpec(
        name="smoke-injected-failure",
        scheme="does-not-exist",
        num_workers=4,
        partitions_per_worker=2,
        wait_for=3,
        max_steps=12,
    )


def mailbox_smoke(specs, workdir):
    """Run the 8 jobs via mailbox submissions + a serving coordinator."""
    root = workdir / "mbox"
    trace_dir = workdir / "traces"
    client = CoordinatorClient(root)
    job_ids = [
        client.submit(spec, job_id=f"smoke-{i:02d}")
        for i, spec in enumerate(specs)
    ]
    coordinator = Coordinator(
        mode="deterministic", max_running=4, trace_dir=trace_dir
    )
    with coordinator:
        asyncio.run(coordinator.serve(ServeMailbox(root), once=True))
    snapshots = [client.state(job_id) for job_id in job_ids]
    assert all(s["state"] == "done" for s in snapshots), (
        f"not all jobs finished: {[s['state'] for s in snapshots]}"
    )
    return snapshots


def check_determinism(specs, snapshots, workdir):
    """Mailbox-run reports + traces == sequential single-job runs."""
    for i, (spec, snapshot) in enumerate(zip(specs, snapshots)):
        solo_dir = workdir / f"solo-{i:02d}"
        (solo,) = run_jobs([spec], trace_dir=solo_dir)
        report = dict(snapshot["report"])
        solo_report = solo.to_dict()
        served_trace = pathlib.Path(report.pop("trace_path"))
        solo_trace = pathlib.Path(solo_report.pop("trace_path"))
        assert report == solo_report, (
            f"job {i} diverged from its sequential run:\n"
            f"  served: {report}\n  solo  : {solo_report}"
        )
        assert served_trace.read_bytes() == solo_trace.read_bytes(), (
            f"job {i} trace diverged from its sequential run"
        )


def check_trace_reaggregation(snapshots):
    """Streamed traces re-read + re-aggregate to the reported curves."""
    for snapshot in snapshots:
        report = snapshot["report"]
        traces = read_traces(report["trace_path"])
        assert len(traces) == report["num_steps"], (
            f"{snapshot['id']}: {len(traces)} trace rounds != "
            f"{report['num_steps']} reported steps"
        )
        assert [trace.step for trace in traces] == list(
            range(report["num_steps"])
        ), f"{snapshot['id']}: trace steps are not contiguous"
        # each round's simulated end time is the report's time curve —
        # bit-for-bit, proving the stream lost nothing.
        clocks = [trace.step_end for trace in traces]
        assert clocks == list(report["time_curve"]), (
            f"{snapshot['id']}: trace clocks diverge from the report"
        )
        aggregates = aggregate_traces(traces)
        (label,) = aggregates
        assert aggregates[label].rounds == report["num_steps"]


def live_failure_isolation(specs, snapshots):
    """Live mode with one broken job: peers match the served reports."""

    async def scenario():
        coordinator = Coordinator(mode="live", max_running=4)
        with coordinator:
            handles = [coordinator.submit(spec) for spec in specs]
            doomed = coordinator.submit(bad_spec())
            await coordinator.drain()
            return handles, doomed

    handles, doomed = asyncio.run(scenario())
    assert doomed.state is JobState.FAILED, doomed.state
    assert "does-not-exist" in doomed.error
    for handle, snapshot in zip(handles, snapshots):
        assert handle.state is JobState.DONE, (
            f"{handle.job_id} was affected by the injected failure: "
            f"{handle.state.value} {handle.error}"
        )
        live = handle.report.to_dict()
        served = dict(snapshot["report"])
        live.pop("trace_path", None)
        served.pop("trace_path", None)
        assert live == served, (
            f"{handle.job_id} live-mode result diverged"
        )


def main() -> int:
    specs = make_specs()
    report = {
        "benchmark": "serve-smoke",
        "python": platform.python_version(),
        "num_jobs": NUM_JOBS,
        "schemes": sorted({spec.scheme for spec in specs}),
    }
    with tempfile.TemporaryDirectory() as tmp:
        workdir = pathlib.Path(tmp)

        start = time.perf_counter()
        snapshots = mailbox_smoke(specs, workdir)
        report["mailbox_seconds"] = round(time.perf_counter() - start, 3)
        print(f"mailbox smoke: {NUM_JOBS} jobs done "
              f"({report['mailbox_seconds']}s)")

        start = time.perf_counter()
        check_determinism(specs, snapshots, workdir)
        report["determinism_seconds"] = round(
            time.perf_counter() - start, 3
        )
        print("determinism: reports and traces match sequential runs")

        check_trace_reaggregation(snapshots)
        print("traces: re-read + re-aggregate losslessly")

        start = time.perf_counter()
        live_failure_isolation(specs, snapshots)
        report["live_seconds"] = round(time.perf_counter() - start, 3)
        print("live mode: injected failure isolated, peers unaffected "
              f"({report['live_seconds']}s)")

    out = pathlib.Path("BENCH_serve.json")
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"report: {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
