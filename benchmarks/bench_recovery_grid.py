"""Theory bench — recovery heat-map over (c, w) and the FR/CR gap grid.

Uses the sweep utility to tabulate expected recovered fractions across
the parameter plane, showing at a glance where IS-GC's placements
matter most (intermediate w, larger c).
"""

import pytest

from repro.analysis import expected_recovered_exact
from repro.core import CyclicRepetition, FractionalRepetition
from repro.experiments.sweep import Sweep

from conftest import register_report

N = 12


def _cr_recovery_pct(c, w):
    value = expected_recovered_exact(CyclicRepetition(N, c), w)
    return f"{100 * value / N:.0f}%"


def _fr_gap_pct(c, w):
    """FR advantage over CR in percentage points of recovery."""
    fr = expected_recovered_exact(FractionalRepetition(N, c), w)
    cr = expected_recovered_exact(CyclicRepetition(N, c), w)
    return f"+{100 * (fr - cr) / N:.1f}"


@pytest.fixture(scope="module")
def recovery_grid_report():
    cr_sweep = Sweep(
        name=f"Theory — CR(n={N}) expected recovery (% of gradients)",
        axes={"c": (2, 3, 4, 6), "w": (2, 4, 6, 8, 10, 12)},
    )
    cr_sweep.run(_cr_recovery_pct)
    gap_sweep = Sweep(
        name=f"Theory — FR advantage over CR (percentage points, n={N})",
        axes={"c": (2, 3, 4, 6), "w": (2, 4, 6, 8, 10, 12)},
    )
    gap_sweep.run(_fr_gap_pct)
    text = (
        cr_sweep.to_grid_table("c", "w").render()
        + "\n\n"
        + gap_sweep.to_grid_table("c", "w").render()
    )
    register_report("theory_recovery_grid", text)
    return cr_sweep, gap_sweep


def test_grid_bench(benchmark, recovery_grid_report):
    benchmark(_cr_recovery_pct, 3, 6)


def test_every_point_computed(recovery_grid_report):
    cr_sweep, gap_sweep = recovery_grid_report
    assert all(p.ok for p in cr_sweep.points)
    assert all(p.ok for p in gap_sweep.points)
    assert len(cr_sweep.points) == 24


def test_fr_never_behind(recovery_grid_report):
    _, gap_sweep = recovery_grid_report
    for point in gap_sweep.points:
        assert float(point.value.lstrip("+")) >= -1e-9
