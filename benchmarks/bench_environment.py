#!/usr/bin/env python3
"""Benchmark the environment layer: registry dispatch overhead and the
vectorized ``sample_round`` hot path.

Like ``bench_placement.py`` this is a self-contained script — ``make
bench-environment`` and the CI smoke step run it directly and archive
its JSON report (``BENCH_environment.json``), so the environment
layer's perf trajectory accumulates one comparable data point per
commit::

    PYTHONPATH=src python benchmarks/bench_environment.py --smoke
    PYTHONPATH=src python benchmarks/bench_environment.py

Two measurements per delay family:

* **dispatch overhead** — building through the registry
  (``make_delay_model``) vs the direct constructor, over a realistic
  unit of work (construct + ``ROUNDS`` rounds of 64-worker
  ``sample_round`` draws — what one short simulation costs).  The
  registry must add **< 5% overhead** (asserted — the script exits
  non-zero otherwise, and CI fails).  As in ``bench_placement.py`` the
  asserted number is the *directly measured* dispatch cost — name
  resolution plus kwargs validation, the only work ``make_delay_model``
  adds before delegating to the very constructor the direct path
  calls — divided by the direct unit of work; subtracting two noisy
  end-to-end timings would put shared-runner jitter inside the budget.
  The end-to-end paired comparison is still reported (informational).

* **sample_round speedup** — the vectorized whole-round draw vs the
  per-worker scalar ``sample`` loop it replaced, on a 64-worker round.
  The streams are asserted **bit-for-bit identical** first (a fast
  path that drifts from the scalar path would silently change every
  simulation), then timed; the exponential family must show a
  **>= 1.5x** win (asserted — that is the hot path
  ``ClusterSimulator`` batches through).
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import pathlib
import platform
import statistics
import sys
import time

import numpy as np

from repro.env import make_delay_model, resolve_model
from repro.straggler.models import (
    BernoulliStraggler,
    ExponentialDelay,
    MixtureDelay,
    ParetoDelay,
    PersistentStragglers,
    ShiftedExponentialDelay,
)

#: Maximum sanctioned registry overhead on the construct+sample path.
MAX_OVERHEAD_PCT = 5.0
#: Minimum sanctioned vectorization win for the exponential hot path.
MIN_EXPONENTIAL_SPEEDUP = 1.5

NUM_WORKERS = 64
ROUNDS = 4
WORKERS = list(range(NUM_WORKERS))

#: family → (registry params, equivalent direct construction).
CASES = [
    ("exponential", {"mean": 1.5}, lambda: ExponentialDelay(1.5)),
    ("shifted-exponential", {"shift": 3.0, "mean": 0.5},
     lambda: ShiftedExponentialDelay(3.0, 0.5)),
    ("pareto", {"alpha": 2.5, "scale": 0.3}, lambda: ParetoDelay(2.5, 0.3)),
    ("bernoulli",
     {"probability": 0.3, "delay": {"kind": "exponential", "mean": 2.0}},
     lambda: BernoulliStraggler(0.3, ExponentialDelay(2.0))),
    ("persistent",
     {"stragglers": [0, 1], "mean": 3.0, "background_mean": 0.2},
     lambda: PersistentStragglers(
         [0, 1], ExponentialDelay(3.0),
         background_delay=ExponentialDelay(0.2))),
    ("mixture",
     {"models": [{"kind": "exponential", "mean": 0.2},
                 {"kind": "shifted-exponential", "shift": 2.0, "mean": 1.0}],
      "weights": [0.7, 0.3]},
     lambda: MixtureDelay(
         [ExponentialDelay(0.2), ShiftedExponentialDelay(2.0, 1.0)],
         [0.7, 0.3])),
]


def best_batch_seconds(fn, iterations: int, batches: int) -> float:
    """Fastest of ``batches`` timed batches of ``iterations`` calls."""
    best = float("inf")
    for _ in range(batches):
        t0 = time.perf_counter()
        for _ in range(iterations):
            fn()
        best = min(best, time.perf_counter() - t0)
    return best


def paired_batch_seconds(fn_a, fn_b, iterations, batches):
    """Fastest batch of each of two functions, plus their best ratio.

    Batches are interleaved (A/B in one round, B/A in the next) so CPU
    frequency drift hits both paths equally; both functions are warmed
    up before timing, and the collector is paused so an unlucky GC
    cycle cannot land in one path's batch only.  Returns ``(best_a,
    best_b, ratio)`` where ``ratio`` is the median per-round a/b ratio
    (back-to-back batches cancel drift; the median discards rounds that
    eat a scheduler hiccup).
    """
    for _ in range(max(1, iterations // 4)):
        fn_a()
        fn_b()
    best_a = best_b = float("inf")
    ratios = []
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for round_no in range(batches):
            pair = (fn_a, fn_b) if round_no % 2 == 0 else (fn_b, fn_a)
            times = []
            for fn in pair:
                t0 = time.perf_counter()
                for _ in range(iterations):
                    fn()
                times.append(time.perf_counter() - t0)
            a_s, b_s = times if round_no % 2 == 0 else reversed(times)
            best_a = min(best_a, a_s)
            best_b = min(best_b, b_s)
            ratios.append(a_s / b_s)
    finally:
        if gc_was_enabled:
            gc.enable()
    return best_a, best_b, statistics.median(ratios)


def unit_of_work(build):
    """Construct + a short simulation's worth of round draws."""
    model = build()
    rng = np.random.default_rng(0)
    for step in range(ROUNDS):
        model.sample_round(WORKERS, step, rng)
    return model


def bench_family(kind, params, direct, iterations, batches) -> dict:
    def registry_path():
        return unit_of_work(lambda: make_delay_model(kind, **params))

    def direct_path():
        return unit_of_work(direct)

    def dispatch_only():
        return resolve_model("delay", kind)

    registry_s, direct_s, ratio = paired_batch_seconds(
        registry_path, direct_path, iterations, batches
    )
    # Dispatch cost measured directly (sub-µs, so more iterations per
    # batch for timer resolution) — see the module docstring for why
    # the assertion uses this rather than registry_s - direct_s.
    dispatch_s = best_batch_seconds(dispatch_only, iterations * 4, batches)
    overhead_pct = 100.0 * (dispatch_s / 4) / direct_s

    # Stream identity: the vectorized round draw must consume the RNG
    # exactly as the scalar per-worker loop would.
    batched_model = direct()
    looped_model = direct()
    rng_a = np.random.default_rng(42)
    rng_b = np.random.default_rng(42)
    streams_identical = True
    for step in range(ROUNDS):
        vec = batched_model.sample_round(WORKERS, step, rng_a)
        loop = np.array(
            [looped_model.sample(w, step, rng_b) for w in WORKERS]
        )
        if not np.array_equal(vec, loop):
            streams_identical = False
    if rng_a.bit_generator.state != rng_b.bit_generator.state:
        streams_identical = False

    model_v = direct()
    model_s = direct()
    rng_v = np.random.default_rng(1)
    rng_s = np.random.default_rng(1)
    vector_s, scalar_s, _ = paired_batch_seconds(
        lambda: model_v.sample_round(WORKERS, 0, rng_v),
        lambda: [model_s.sample(w, 0, rng_s) for w in WORKERS],
        iterations, batches,
    )
    speedup = scalar_s / vector_s if vector_s else float("nan")

    return {
        "family": kind,
        "num_workers": NUM_WORKERS,
        "construct_sample": {
            "registry_seconds": registry_s,
            "direct_seconds": direct_s,
            "end_to_end_ratio": ratio,
            "dispatch_seconds": dispatch_s / 4,
            "overhead_pct": overhead_pct,
        },
        "sample_round": {
            "vector_seconds": vector_s,
            "scalar_seconds": scalar_s,
            "speedup": speedup,
            "streams_identical": streams_identical,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="fewer iterations for CI (seconds, not minutes)",
    )
    parser.add_argument(
        "--out", type=pathlib.Path,
        default=pathlib.Path("BENCH_environment.json"),
        help="JSON report path (default: ./BENCH_environment.json)",
    )
    args = parser.parse_args(argv)
    iterations = 200 if args.smoke else 1_000
    batches = 9 if args.smoke else 15

    families = []
    failures = []
    for kind, params, direct in CASES:
        result = bench_family(kind, params, direct, iterations, batches)
        families.append(result)
        cs = result["construct_sample"]
        sr = result["sample_round"]
        print(
            f"{kind:<20} build+sample registry "
            f"{1e6 * cs['registry_seconds'] / iterations:8.1f}us "
            f"direct {1e6 * cs['direct_seconds'] / iterations:8.1f}us "
            f"dispatch {1e6 * cs['dispatch_seconds'] / iterations:5.2f}us "
            f"(overhead {cs['overhead_pct']:+.2f}%)  "
            f"round vector/scalar {sr['speedup']:.2f}x, "
            f"identical: {sr['streams_identical']}"
        )
        if not sr["streams_identical"]:
            failures.append(
                f"{kind}: vectorized sample_round diverged from the "
                "scalar per-worker stream"
            )
        if cs["overhead_pct"] >= MAX_OVERHEAD_PCT:
            failures.append(
                f"{kind}: registry adds {cs['overhead_pct']:.2f}% to "
                f"construct+sample (budget {MAX_OVERHEAD_PCT}%)"
            )
        if kind == "exponential" and sr["speedup"] < MIN_EXPONENTIAL_SPEEDUP:
            failures.append(
                f"exponential: sample_round is only {sr['speedup']:.2f}x "
                f"the scalar loop (floor {MIN_EXPONENTIAL_SPEEDUP}x) on a "
                f"{NUM_WORKERS}-worker round"
            )

    report = {
        "bench": "environment",
        "mode": "smoke" if args.smoke else "full",
        "iterations": iterations,
        "batches": batches,
        "rounds_per_unit": ROUNDS,
        "max_overhead_pct": MAX_OVERHEAD_PCT,
        "min_exponential_speedup": MIN_EXPONENTIAL_SPEEDUP,
        "env": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
        },
        "families": families,
        "ok": not failures,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
