"""Engine overhead: the refactored trainer must cost ≲ the old loop.

The engine refactor replaced the hand-rolled ``DistributedTrainer``
loop with ``RoundEngine`` + ``FlatBackend`` + ``SyncUpdate``.  The
dispatch indirection (rule/backend virtual calls, ``RoundExecution``
construction) must stay in the noise next to the real per-step work
(gradient evaluation + event simulation).

``_inline_run`` below is a faithful transcription of the pre-engine
loop body — per-partition batch gradients, encode, ``run_round``,
decode, unbiased mean update, held-out eval — on Fig. 11's cluster
shape (n = 24, c = 2, IS-GC/CR with w = 6, exponential delays).  The
benchmark asserts:

* the engine-backed trainer's best-of-N wall clock is within **5 %**
  of the inline loop's (the refactor's overhead budget);
* the two produce bit-identical loss trajectories (so the comparison
  measures the same computation).
"""

from __future__ import annotations

import time

import numpy as np

from repro import (
    ClusterSimulator,
    ComputeModel,
    CyclicRepetition,
    DelayTrace,
    DistributedTrainer,
    ExponentialDelay,
    ISGCStrategy,
    LogisticRegressionModel,
    SGD,
    TraceReplayModel,
    build_batch_streams,
    make_classification,
    partition_dataset,
)
from repro.training.evaluation import held_out_loss

N = 24          # Fig. 11 cluster size
C = 2           # partitions per worker
W = 6           # IS-GC wait-for
STEPS = 150     # long enough that timer noise amortises out
REPEATS = 7     # best-of-N to shed scheduler noise


def _workload():
    dataset = make_classification(1536, 8, num_classes=2, seed=1)
    partitions = partition_dataset(dataset, N, seed=2)
    streams = build_batch_streams(partitions, batch_size=32, seed=3)
    trace = DelayTrace.record(
        ExponentialDelay(1.5, affected=range(12)),
        N, STEPS, np.random.default_rng(4),
    )
    return dataset, streams, trace


def _fresh_parts(dataset, trace):
    """Everything with run-consumed state, rebuilt per repetition."""
    model = LogisticRegressionModel(8, seed=0)
    strategy = ISGCStrategy(
        CyclicRepetition(N, C), wait_for=W, rng=np.random.default_rng(7)
    )
    cluster = ClusterSimulator(
        num_workers=N,
        partitions_per_worker=C,
        compute=ComputeModel(0.1, 1.6),   # Fig11Config compute costs
        delay_model=TraceReplayModel(trace),
        rng=np.random.default_rng(0),
    )
    return model, strategy, cluster, SGD(0.3)


def _inline_run(model, streams, strategy, cluster, optimizer, eval_data):
    """The pre-engine DistributedTrainer loop body, transcribed from
    the last pre-refactor revision (including its StepRecord, gradient
    norm and loss-tracker bookkeeping, so the comparison is fair)."""
    from repro.training.convergence import LossTracker
    from repro.types import StepRecord

    tracker = LossTracker(None, 5)
    n = strategy.placement.num_partitions
    records = []
    for step in range(STEPS):
        partition_gradients = {}
        batch_losses = []
        for pid in range(n):
            x, y = streams[pid].batch(step)
            loss, grad = model.loss_and_gradient(x, y)
            partition_gradients[pid] = grad
            batch_losses.append(loss)
        payloads = strategy.encode(partition_gradients)
        result = cluster.run_round(step, strategy.policy)
        grad_sum, recovered = strategy.decode(
            result.outcome.accepted_workers, payloads
        )
        mean_grad = grad_sum / len(recovered)
        model.set_parameters(
            optimizer.update(model.get_parameters(), mean_grad)
        )
        loss = held_out_loss(model, eval_data, fallback_losses=batch_losses)
        tracker.record(loss)
        records.append(StepRecord(
            step=step,
            sim_time=cluster.clock,
            wait_time=result.step_time,
            num_available=len(result.outcome.accepted_workers),
            num_recovered=len(recovered),
            recovery_fraction=len(recovered) / n,
            loss=loss,
            grad_norm=float(np.linalg.norm(mean_grad)),
        ))
    return [r.loss for r in records]


def _engine_run(model, streams, strategy, cluster, optimizer, eval_data):
    trainer = DistributedTrainer(
        model, streams, strategy, cluster, optimizer, eval_data=eval_data
    )
    return list(trainer.run(max_steps=STEPS).loss_curve)


def _timed(fn, dataset, streams, trace):
    model, strategy, cluster, optimizer = _fresh_parts(dataset, trace)
    start = time.perf_counter()
    losses = fn(model, streams, strategy, cluster, optimizer, dataset)
    return time.perf_counter() - start, losses


def test_engine_overhead_below_5_percent(benchmark):
    dataset, streams, trace = _workload()

    # Warm both paths (first runs pay lazy imports and cache fills),
    # then time them back-to-back in pairs: ambient slowdowns (CPU
    # contention, frequency drift) inflate both halves of a pair, so
    # the per-pair ratio stays honest and the best pair is the cleanest
    # measurement.
    _timed(_inline_run, dataset, streams, trace)
    _timed(_engine_run, dataset, streams, trace)
    ratios = []
    inline_losses = engine_losses = None
    for _ in range(REPEATS):
        inline_t, inline_losses = _timed(_inline_run, dataset, streams, trace)
        engine_t, engine_losses = _timed(_engine_run, dataset, streams, trace)
        ratios.append(engine_t / inline_t)

    # Same computation: identical trajectories, bit for bit.
    assert engine_losses == inline_losses

    overhead = min(ratios) - 1.0
    assert overhead < 0.05, (
        f"engine adds {100 * overhead:.1f}% over the inline loop "
        f"(best engine/inline ratio over {REPEATS} pairs; all ratios: "
        f"{[round(r, 3) for r in ratios]})"
    )

    # Register the engine path with pytest-benchmark for the timing table.
    def one_engine_run():
        model, strategy, cluster, optimizer = _fresh_parts(dataset, trace)
        return _engine_run(
            model, streams, strategy, cluster, optimizer, dataset
        )

    benchmark(one_engine_run)
