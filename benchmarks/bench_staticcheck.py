#!/usr/bin/env python3
"""Benchmark the incremental static-analysis cache.

Runs ``repro check`` over the repository three times — cold (empty
cache), warm (nothing changed) and warm-after-edit (one core module
touched) — and asserts the contract the cache exists for:

* the warm no-change run is at least ``MIN_WARM_SPEEDUP``x faster than
  the cold run;
* warm findings are **bit-identical** to cold findings;
* the after-edit run re-analyses the edited file (and its importers)
  but still hits the cache for everything else.

Writes ``BENCH_staticcheck.json`` (the perf-trajectory data point CI
archives per commit) and exits non-zero on any violated floor.
"""

import json
import os
import pathlib
import platform
import sys
import tempfile
import time

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

import numpy as np  # noqa: E402  (environment fingerprint only)

from repro.staticcheck import AnalysisCache, run_check  # noqa: E402

REPO = pathlib.Path(__file__).resolve().parent.parent

#: the paths `make static` gates (the realistic workload).
PATHS = ["src", "tests", "examples", "README.md", "docs"]

#: warm no-change run must beat the cold run by at least this factor.
MIN_WARM_SPEEDUP = 5.0


def finding_dicts(result):
    """Findings as sorted JSON-able dicts (for bit-identity checks)."""
    return [f.to_dict() for f in sorted(result.findings)]


def timed_run(cache_path):
    started = time.perf_counter()
    result = run_check(PATHS, cache=AnalysisCache(cache_path))
    return time.perf_counter() - started, result


def main(argv=None) -> int:
    os.chdir(REPO)
    out = pathlib.Path("BENCH_staticcheck.json")
    failures = []

    with tempfile.TemporaryDirectory() as tmp:
        cache_path = pathlib.Path(tmp) / "cache.json"

        cold_s, cold = timed_run(cache_path)
        warm_s, warm = timed_run(cache_path)
        speedup = cold_s / warm_s if warm_s > 0 else float("inf")
        identical = finding_dicts(cold) == finding_dicts(warm)

        print(
            f"cold {cold_s:6.2f}s ({cold.num_files} files, "
            f"{cold.project_modules} modules)   "
            f"warm {warm_s:6.2f}s   speedup {speedup:.1f}x   "
            f"identical findings: {identical}"
        )
        if speedup < MIN_WARM_SPEEDUP:
            failures.append(
                f"warm run is only {speedup:.1f}x faster than cold "
                f"(floor {MIN_WARM_SPEEDUP}x)"
            )
        if not identical:
            failures.append("warm findings differ from cold findings")
        if warm.cache_misses != 0:
            failures.append(
                f"warm no-change run missed the cache "
                f"{warm.cache_misses} times"
            )

        # Touch one core module (comment-only edit: content hash moves,
        # findings must not) and measure the incremental run.
        target = REPO / "src" / "repro" / "core" / "exact_decoder.py"
        original = target.read_text(encoding="utf-8")
        try:
            target.write_text(
                original + "\n# bench_staticcheck touch\n",
                encoding="utf-8",
            )
            edit_s, edited = timed_run(cache_path)
        finally:
            target.write_text(original, encoding="utf-8")
        print(
            f"after-edit {edit_s:6.2f}s   "
            f"hits {edited.cache_hits}, misses {edited.cache_misses}"
        )
        if edited.cache_misses == 0:
            failures.append("edited file did not invalidate its entry")
        if edited.cache_hits == 0:
            failures.append("after-edit run hit nothing (no reuse)")
        if finding_dicts(edited) != finding_dicts(cold):
            failures.append("comment-only edit changed the findings")

    report = {
        "bench": "staticcheck",
        "paths": PATHS,
        "min_warm_speedup": MIN_WARM_SPEEDUP,
        "cold_seconds": cold_s,
        "warm_seconds": warm_s,
        "warm_speedup": speedup,
        "warm_findings_identical": identical,
        "after_edit_seconds": edit_s,
        "after_edit_cache_hits": edited.cache_hits,
        "after_edit_cache_misses": edited.cache_misses,
        "num_files": cold.num_files,
        "project_modules": cold.project_modules,
        "num_findings": len(cold.findings),
        "env": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
        },
        "ok": not failures,
    }
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
