"""Ablation — IS-GC's exact partial sums vs approximate gradient coding.

The paper (Sec. II) argues approximate GC "trades off the computation
load for a lower l2 error, making it difficult to analyze … its
convergence".  This bench quantifies the comparison on identical
payloads: for each availability level ``w`` it reports

* IS-GC's recovered fraction (its estimate is an *exact* partial sum —
  coefficient vector is 0/1 by construction);
* the ℓ2-optimal linear combiner's coefficient deviation ``‖v − 𝟙‖``;
* the stochastic-sum (Bitar et al. style) deviation.

Shape to expect: the LS deviation is never worse than stochastic-sum
(it is optimal), both shrink with ``w``, and IS-GC turns the same
information into clean partial sums instead of biased estimates.
"""

import numpy as np
import pytest

from repro.analysis.reporting import Table
from repro.codes import LeastSquaresDecoder, StochasticSumDecoder
from repro.core import CyclicRepetition, SummationCode, decoder_for

from conftest import register_report

N, C = 12, 3
TRIALS = 400


@pytest.fixture(scope="module")
def approx_report():
    placement = CyclicRepetition(N, C)
    code = SummationCode(placement)
    rng = np.random.default_rng(0)
    grads = {p: rng.normal(size=64) for p in range(N)}
    payloads = code.encode(grads)
    isgc = decoder_for(placement, rng=np.random.default_rng(1))
    ls = LeastSquaresDecoder(placement)
    ss = StochasticSumDecoder(placement)

    table = Table(
        title=(
            "Ablation — exact partial sums (IS-GC) vs approximate GC "
            f"decoding, CR(n={N}, c={C}), {TRIALS} random rounds per w"
        ),
        columns=[
            "w", "IS-GC recovered %", "LS deviation ‖v-1‖",
            "stoch-sum deviation", "LS exact rounds %",
        ],
    )
    for w in (2, 4, 6, 8, 10, 12):
        rec = 0.0
        ls_dev = 0.0
        ss_dev = 0.0
        ls_exact = 0
        for _ in range(TRIALS):
            avail = rng.choice(N, size=w, replace=False).tolist()
            rec += isgc.decode(avail).num_recovered / N
            ls_result = ls.decode(avail, payloads)
            ls_dev += ls_result.deviation
            ls_exact += ls_result.is_exact
            ss_dev += ss.decode(avail, payloads).deviation
        table.add_row(
            w,
            f"{100 * rec / TRIALS:.1f}",
            round(ls_dev / TRIALS, 4),
            round(ss_dev / TRIALS, 4),
            f"{100 * ls_exact / TRIALS:.1f}",
        )
    register_report("ablation_approx_vs_isgc", table.render())
    return table


def test_ls_decode_bench(benchmark, approx_report):
    placement = CyclicRepetition(N, C)
    code = SummationCode(placement)
    rng = np.random.default_rng(2)
    grads = {p: rng.normal(size=10_000) for p in range(N)}
    payloads = code.encode(grads)
    ls = LeastSquaresDecoder(placement)
    avail = list(range(0, N, 2))
    benchmark(ls.decode, avail, payloads)


def test_stochastic_sum_bench(benchmark, approx_report):
    placement = CyclicRepetition(N, C)
    code = SummationCode(placement)
    rng = np.random.default_rng(3)
    grads = {p: rng.normal(size=10_000) for p in range(N)}
    payloads = code.encode(grads)
    ss = StochasticSumDecoder(placement)
    avail = list(range(0, N, 2))
    benchmark(ss.decode, avail, payloads)


def test_ls_never_worse_than_stochastic(approx_report):
    for row in approx_report.rows:
        assert float(row[2]) <= float(row[3]) + 1e-9


def test_deviation_shrinks_with_w(approx_report):
    devs = [float(row[2]) for row in approx_report.rows]
    assert devs == sorted(devs, reverse=True)
