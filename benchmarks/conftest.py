"""Benchmark-suite plumbing.

Each bench regenerates one of the paper's tables/figures.  Rendered
tables are registered here and written both to
``benchmarks/results/<name>.txt`` and into pytest's terminal summary,
so ``pytest benchmarks/ --benchmark-only | tee bench_output.txt``
captures the full reproduction alongside the timing numbers.
"""

from __future__ import annotations

import pathlib
from typing import List, Tuple

_RESULTS_DIR = pathlib.Path(__file__).parent / "results"
_REPORTS: List[Tuple[str, str]] = []


def register_report(name: str, text: str) -> None:
    """Save a rendered experiment table for the terminal summary."""
    _REPORTS.append((name, text))
    _RESULTS_DIR.mkdir(exist_ok=True)
    (_RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def pytest_terminal_summary(terminalreporter):  # noqa: D103 - pytest hook
    if not _REPORTS:
        return
    terminalreporter.write_sep("=", "paper reproduction tables")
    for _name, text in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(text)
    terminalreporter.write_line("")
    terminalreporter.write_line(
        f"(also saved under {_RESULTS_DIR}/ as one .txt per experiment)"
    )
