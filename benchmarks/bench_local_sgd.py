"""Extension bench — local-update SGD over IS-GC.

Fixed batch budget (τ × rounds = const): larger τ means fewer
communication rounds — hence fewer straggler waits — at the price of
local-update drift.  Under heavy stragglers the simulated wall-clock
drops nearly τ-fold.
"""

import numpy as np
import pytest

from repro.analysis.reporting import Table
from repro.core import CyclicRepetition
from repro.simulation import ClusterSimulator, ComputeModel, NetworkModel
from repro.straggler import ExponentialDelay
from repro.training import (
    ISGCStrategy,
    LocalUpdateTrainer,
    LogisticRegressionModel,
    build_batch_streams,
    make_classification,
    partition_dataset,
)

from conftest import register_report

N, C, W = 4, 2, 3
BATCH_BUDGET = 48  # per partition


def _run(tau):
    ds = make_classification(512, 8, num_classes=2, separation=3.0, seed=1)
    streams = build_batch_streams(partition_dataset(ds, N, seed=2), 32, seed=3)
    strategy = ISGCStrategy(
        CyclicRepetition(N, C), wait_for=W, rng=np.random.default_rng(0)
    )
    cluster = ClusterSimulator(
        N, C, compute=ComputeModel(0.02, 0.02),
        network=NetworkModel(latency=0.0, bandwidth=float("inf")),
        delay_model=ExponentialDelay(1.0),
        rng=np.random.default_rng(4),
    )
    trainer = LocalUpdateTrainer(
        LogisticRegressionModel(8, seed=0), streams, strategy,
        cluster, local_steps=tau, local_lr=0.3, eval_data=ds,
    )
    return trainer.run(max_rounds=BATCH_BUDGET // tau)


@pytest.fixture(scope="module")
def local_sgd_report():
    table = Table(
        title=(
            "Extension — local-update SGD over IS-GC "
            f"(n={N}, c={C}, w={W}, {BATCH_BUDGET} batches/partition, "
            "exp(1.0s) stragglers)"
        ),
        columns=["τ", "rounds", "total time (s)", "final loss"],
    )
    outcomes = {}
    for tau in (1, 2, 4, 8):
        summary = _run(tau)
        outcomes[tau] = summary
        table.add_row(
            tau, summary.num_steps, round(summary.total_sim_time, 1),
            round(summary.final_loss, 4),
        )
    register_report("extension_local_sgd", table.render())
    return outcomes


def test_local_round_bench(benchmark, local_sgd_report):
    benchmark(_run, 4)


def test_wall_clock_shrinks_with_tau(local_sgd_report):
    times = [local_sgd_report[tau].total_sim_time for tau in (1, 2, 4, 8)]
    assert times == sorted(times, reverse=True)
    # Near-τ-fold: τ=8 should be at least 4× cheaper than τ=1.
    assert times[-1] < times[0] / 4


def test_all_taus_converge(local_sgd_report):
    for tau, summary in local_sgd_report.items():
        assert summary.final_loss < 0.4, f"τ={tau} failed to converge"
