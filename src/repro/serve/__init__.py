"""Multi-job serving layer: one coordinator, many experiments.

:mod:`repro.serve` turns the single-run engine into a job service: an
asyncio :class:`Coordinator` admits many :class:`~repro.engine.ExperimentSpec`
jobs at once, interleaves their rounds under a fair (smooth weighted
round-robin) scheduler, isolates failures, supports cancellation at
round boundaries, and streams each job's round trace as JSONL.

Entry points:

* :func:`run_jobs` — submit a batch of specs and collect
  :class:`~repro.engine.RunReport` results (the one-call API);
* :class:`Coordinator` — long-lived, incremental submissions,
  ``await handle.result()`` / ``async for event in handle.watch()``;
* :class:`CoordinatorClient` + ``repro serve`` / ``repro submit`` /
  ``repro jobs`` / ``repro cancel`` — cross-process, over a file
  mailbox.

Jobs are *suspendable values*: every engine round boundary can be
snapshotted to a JSON-safe :class:`~repro.engine.EngineState`, which is
how the shared :class:`WorkerPool` multiplexes more jobs than live
engines, how ``checkpoints/`` mailbox records survive a coordinator
kill, and why a resumed job's trajectory and trace are bit-identical
to an uninterrupted run.  :class:`SchedulingClass` adds priority tiers
and earliest-deadline-first tie-breaking on top of the fair scheduler.

Deterministic mode guarantees that any interleaving of N jobs is
bit-for-bit identical to N sequential ``repro run`` invocations; see
``docs/serving.md``.
"""

from .coordinator import Coordinator, run_jobs
from .jobs import (
    JobCancelledError,
    JobEvent,
    JobFailedError,
    JobHandle,
    JobState,
)
from .mailbox import (
    CheckpointRecord,
    CoordinatorClient,
    ServeMailbox,
    Submission,
)
from .pool import PoolStats, WorkerPool
from .runner import JobRunner
from .scheduler import (
    DEFAULT_CLASS,
    FairScheduler,
    RandomOrderScheduler,
    RoundRobinScheduler,
    Scheduler,
    SchedulingClass,
)

__all__ = [
    "Coordinator",
    "run_jobs",
    "JobState",
    "JobEvent",
    "JobHandle",
    "JobFailedError",
    "JobCancelledError",
    "JobRunner",
    "Scheduler",
    "FairScheduler",
    "RoundRobinScheduler",
    "RandomOrderScheduler",
    "SchedulingClass",
    "DEFAULT_CLASS",
    "WorkerPool",
    "PoolStats",
    "ServeMailbox",
    "CoordinatorClient",
    "Submission",
    "CheckpointRecord",
]
