"""Quantum schedulers: which running job gets the next round.

The coordinator executes one *quantum* (one engine round) at a time
per scheduling decision.  A :class:`Scheduler` picks the job for each
quantum from the currently runnable set; the default
:class:`FairScheduler` implements smooth weighted round-robin (SWRR):
every decision adds each runnable job's weight to its credit, the
highest-credit job runs and pays the total weight back.  Over any
window of ``Q`` quanta a job with weight ``w_i`` receives
``Q * w_i / Σw`` quanta to within one — the classic starvation-free
fairness bound (ties break on admission order, so the schedule is a
pure function of the submission history).

Jobs may carry a :class:`SchedulingClass`, which refines the decision
in two ways without disturbing the SWRR bound *within* each tier:

* **priority tiers** — only the highest-priority runnable tier
  competes for a quantum (strict priority; lower tiers wait);
* **deadlines** — credit ties inside a tier break earliest-deadline-
  first (deadlines are in each job's own *simulated* seconds), then on
  admission order.

Default-class jobs (priority 0, no deadline) form a single tier with
no deadline ties, so the schedule — and every byte of coordinator
output — is identical to the plain SWRR behaviour.

Schedulers are pluggable (``Coordinator(scheduler=...)``); the test
suite drives the coordinator with adversarial random-order schedulers
to prove trajectories are interleaving-invariant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Protocol, Sequence

import numpy as np

from ..exceptions import ServeError

if TYPE_CHECKING:  # pragma: no cover
    from .jobs import Job


@dataclass(frozen=True)
class SchedulingClass:
    """A named (priority, weight, deadline) bundle for submissions.

    Attributes
    ----------
    name:
        Label for logs and job listings.
    priority:
        Tier index; higher tiers receive strictly all quanta while
        runnable (within a tier, SWRR fairness still holds).
    weight:
        Default SWRR weight for jobs submitted under this class (an
        explicit per-job weight overrides it).
    deadline:
        Optional target completion time in the job's own simulated
        seconds; used only to break credit ties earliest-first, so it
        shapes latency without breaking the fairness bound.
    """

    name: str = "default"
    priority: int = 0
    weight: int = 1
    deadline: Optional[float] = None

    def __post_init__(self) -> None:
        if self.weight < 1:
            raise ServeError(
                f"scheduling class weight must be >= 1, got {self.weight}"
            )
        if self.deadline is not None and self.deadline <= 0:
            raise ServeError(
                f"scheduling class deadline must be positive, "
                f"got {self.deadline}"
            )


#: the implicit class of jobs submitted without one.
DEFAULT_CLASS = SchedulingClass()


def _deadline_key(job: "Job") -> tuple:
    """Sort key: earlier deadline first, deadline-less jobs last."""
    deadline = job.deadline
    return (deadline is None, deadline if deadline is not None else 0.0)


class Scheduler(Protocol):
    """Picks the next job to receive a round quantum."""

    def pick(self, runnable: Sequence["Job"]) -> "Job":
        """Choose one job from ``runnable`` (never empty)."""
        ...


class FairScheduler:
    """Smooth weighted round-robin within the top priority tier.

    Credit state lives on the jobs themselves (``job.credit``), so
    jobs entering and leaving the running set keep their standing and
    a finished job's state needs no cleanup here.  Only the
    highest-priority runnable tier is credited — lower tiers neither
    gain nor pay credit while blocked, so their internal SWRR standing
    is frozen, not skewed, until the tier above drains.  Credit ties
    break earliest-deadline-first, then on admission order; with
    default-class jobs this is byte-for-byte the classic SWRR
    schedule.
    """

    def pick(self, runnable: Sequence["Job"]) -> "Job":
        """One SWRR decision: credit the top tier, run the richest."""
        tier_priority = max(job.priority for job in runnable)
        tier: List["Job"] = [
            job for job in runnable if job.priority == tier_priority
        ]
        total = sum(job.weight for job in tier)
        best = None
        for job in tier:
            job.credit += job.weight
            if best is None or job.credit > best.credit or (
                job.credit == best.credit
                and (_deadline_key(job), job.seq)
                < (_deadline_key(best), best.seq)
            ):
                best = job
        assert best is not None
        best.credit -= total
        return best


class RoundRobinScheduler:
    """Strict cyclic order by admission sequence, ignoring weights."""

    def __init__(self) -> None:
        self._last_seq = -1

    def pick(self, runnable: Sequence["Job"]) -> "Job":
        """The next runnable job after the previously picked one."""
        ordered = sorted(runnable, key=lambda job: job.seq)
        for job in ordered:
            if job.seq > self._last_seq:
                self._last_seq = job.seq
                return job
        job = ordered[0]
        self._last_seq = job.seq
        return job


class RandomOrderScheduler:
    """Seeded adversarial scheduler: uniformly random runnable job.

    Exists for the determinism tests — *any* interleaving must produce
    the same per-job trajectories — and for chaos-style smoke runs.
    """

    def __init__(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(seed)

    def pick(self, runnable: Sequence["Job"]) -> "Job":
        """A uniformly random runnable job from the seeded stream."""
        return runnable[int(self._rng.integers(len(runnable)))]
