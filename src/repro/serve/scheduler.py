"""Quantum schedulers: which running job gets the next round.

The coordinator executes one *quantum* (one engine round) at a time
per scheduling decision.  A :class:`Scheduler` picks the job for each
quantum from the currently runnable set; the default
:class:`FairScheduler` implements smooth weighted round-robin (SWRR):
every decision adds each runnable job's weight to its credit, the
highest-credit job runs and pays the total weight back.  Over any
window of ``Q`` quanta a job with weight ``w_i`` receives
``Q * w_i / Σw`` quanta to within one — the classic starvation-free
fairness bound (ties break on admission order, so the schedule is a
pure function of the submission history).

Schedulers are pluggable (``Coordinator(scheduler=...)``); the test
suite drives the coordinator with adversarial random-order schedulers
to prove trajectories are interleaving-invariant.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from .jobs import Job


class Scheduler(Protocol):
    """Picks the next job to receive a round quantum."""

    def pick(self, runnable: Sequence["Job"]) -> "Job":
        """Choose one job from ``runnable`` (never empty)."""
        ...


class FairScheduler:
    """Smooth weighted round-robin over the runnable jobs.

    Credit state lives on the jobs themselves (``job.credit``), so
    jobs entering and leaving the running set keep their standing and
    a finished job's state needs no cleanup here.
    """

    def pick(self, runnable: Sequence["Job"]) -> "Job":
        """One SWRR decision: credit all runnables, run the richest."""
        total = sum(job.weight for job in runnable)
        best = None
        for job in runnable:
            job.credit += job.weight
            if best is None or job.credit > best.credit or (
                job.credit == best.credit and job.seq < best.seq
            ):
                best = job
        assert best is not None
        best.credit -= total
        return best


class RoundRobinScheduler:
    """Strict cyclic order by admission sequence, ignoring weights."""

    def __init__(self) -> None:
        self._last_seq = -1

    def pick(self, runnable: Sequence["Job"]) -> "Job":
        """The next runnable job after the previously picked one."""
        ordered = sorted(runnable, key=lambda job: job.seq)
        for job in ordered:
            if job.seq > self._last_seq:
                self._last_seq = job.seq
                return job
        job = ordered[0]
        self._last_seq = job.seq
        return job


class RandomOrderScheduler:
    """Seeded adversarial scheduler: uniformly random runnable job.

    Exists for the determinism tests — *any* interleaving must produce
    the same per-job trajectories — and for chaos-style smoke runs.
    """

    def __init__(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(seed)

    def pick(self, runnable: Sequence["Job"]) -> "Job":
        """A uniformly random runnable job from the seeded stream."""
        return runnable[int(self._rng.integers(len(runnable)))]
