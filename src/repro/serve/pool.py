"""Shared engine slots for multiplexed jobs: :class:`WorkerPool`.

A coordinator may hold far more admitted jobs than it can keep as live
engines: every :class:`~repro.serve.runner.JobRunner` owns a dataset,
partitioned batch streams, a coded strategy and a simulator — cheap to
*step* but comparatively expensive to *build*.  The pool bounds how
many of those engines exist at once and multiplexes all jobs over
them:

* ``acquire(job)`` returns the job's resident runner (a *hit*), or
  rebuilds one — from the job's checkpoint when it was previously
  evicted — and makes it resident (a *build*/*restore*);
* when residency exceeds ``capacity``, the least-recently-used
  unpinned job is *evicted*: its engine state is snapshotted onto the
  job record (:attr:`~repro.serve.jobs.Job.checkpoint_state`) and the
  engine discarded, so the job can resume bit-identically later;
* jobs whose quantum is in flight are *pinned* and never evicted.

Because eviction goes through the same
:class:`~repro.engine.EngineState` snapshot/restore path as coordinator
crash recovery, a pooled job's trajectory is bit-for-bit identical no
matter how many times it bounced out of the pool — the determinism
tests pin this.  ``capacity=0`` degenerates to a per-quantum
build/restore cycle (the "per-job engine" baseline the serve benchmark
measures the shared pool against).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict

from ..exceptions import ServeError
from .runner import JobRunner

if TYPE_CHECKING:  # pragma: no cover
    from .jobs import Job


@dataclass
class PoolStats:
    """Counters for pool effectiveness (surfaced by the benchmark)."""

    builds: int = 0
    restores: int = 0
    hits: int = 0
    evictions: int = 0

    def to_dict(self) -> Dict[str, int]:
        """The counters as a plain dict (benchmark/report payloads)."""
        return {
            "builds": self.builds,
            "restores": self.restores,
            "hits": self.hits,
            "evictions": self.evictions,
        }


@dataclass
class _Slot:
    job: "Job"
    runner: JobRunner
    pinned: bool = field(default=False)


class WorkerPool:
    """An LRU-bounded set of live job engines.

    Parameters
    ----------
    capacity:
        Maximum resident engines (``>= 0``).  ``0`` forces a
        snapshot/rebuild round-trip on every quantum — functionally
        identical, maximally memory-frugal, and the benchmark's
        baseline.
    """

    def __init__(self, capacity: int = 4):
        if capacity < 0:
            raise ServeError(
                f"pool capacity must be >= 0, got {capacity}"
            )
        self.capacity = capacity
        self._slots: "OrderedDict[str, _Slot]" = OrderedDict()
        self.stats = PoolStats()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._slots)

    def resident(self, job_id: str) -> bool:
        """Whether ``job_id`` currently holds a live engine."""
        return job_id in self._slots

    # ------------------------------------------------------------------
    def acquire(self, job: "Job") -> JobRunner:
        """The job's live runner, rebuilding from its checkpoint if
        it was evicted; pins the slot until :meth:`release`."""
        slot = self._slots.get(job.job_id)
        if slot is not None:
            self.stats.hits += 1
            slot.pinned = True
            self._slots.move_to_end(job.job_id)
            return slot.runner
        runner = JobRunner(
            job.spec,
            trace_path=job.trace_path,
            trace_context=job.name,
            checkpoint=job.checkpoint_state,
        )
        if job.checkpoint_state is not None:
            self.stats.restores += 1
            job.checkpoint_state = None
        self.stats.builds += 1
        self._slots[job.job_id] = _Slot(job=job, runner=runner, pinned=True)
        job.runner = runner
        return runner

    def release(self, job: "Job") -> None:
        """Unpin the job's slot and shrink residency back to capacity."""
        slot = self._slots.get(job.job_id)
        if slot is None:
            return
        slot.pinned = False
        self._shrink()

    def discard(self, job: "Job") -> None:
        """Drop a terminal job's engine without snapshotting it."""
        slot = self._slots.pop(job.job_id, None)
        if slot is not None:
            job.runner = None

    def evict(self, job: "Job") -> None:
        """Park one job: snapshot its engine onto the job and drop it."""
        slot = self._slots.get(job.job_id)
        if slot is None:
            return
        if slot.pinned:
            raise ServeError(
                f"cannot evict job {job.job_id!r}: quantum in flight"
            )
        del self._slots[job.job_id]
        self._park(slot)

    def _park(self, slot: _Slot) -> None:
        job = slot.job
        if not slot.runner.finished:
            job.checkpoint_state = slot.runner.checkpoint()
        slot.runner.release()
        job.runner = None
        self.stats.evictions += 1

    def _shrink(self) -> None:
        """Evict LRU unpinned slots until residency fits capacity."""
        while len(self._slots) > self.capacity:
            victim_id = None
            for job_id, slot in self._slots.items():
                if not slot.pinned:
                    victim_id = job_id
                    break
            if victim_id is None:
                return  # everything in flight; shrink on next release
            self._park(self._slots.pop(victim_id))

    def clear(self) -> None:
        """Park every unpinned resident job (coordinator shutdown)."""
        for job_id in [
            job_id
            for job_id, slot in self._slots.items()
            if not slot.pinned
        ]:
            self._park(self._slots.pop(job_id))
