"""Job lifecycle primitives: states, the coordinator-side record, and
the client-side :class:`JobHandle`.

A job is one :class:`~repro.engine.ExperimentSpec` owned by a
:class:`~repro.serve.Coordinator`.  Its lifecycle is a strict state
machine::

    submit ──▶ QUEUED ──▶ RUNNING ──▶ DONE
                  │           │ ├───▶ FAILED     (isolated; peers unaffected)
                  │           │ └───▶ CANCELLED  (at a round boundary)
                  └──────────▶ CANCELLED         (before ever running)

Terminal states carry either a :class:`~repro.engine.RunReport`
(``DONE``) or an error summary (``FAILED``).  All timing inside a job
is *simulated* seconds from its own engine; the coordinator never
injects wall-clock values into results (enforced by the ``TIME003``
static check).
"""

from __future__ import annotations

import asyncio
import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, AsyncIterator, Dict, List, Optional

from ..exceptions import ServeError

if TYPE_CHECKING:  # pragma: no cover
    from ..engine.report import RunReport
    from ..engine.spec import ExperimentSpec
    from .coordinator import Coordinator
    from .runner import JobRunner


class JobState(str, enum.Enum):
    """Where a job is in its lifecycle."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


class JobFailedError(ServeError):
    """Awaited a job that ended in :attr:`JobState.FAILED`."""


class JobCancelledError(ServeError):
    """Awaited a job that ended in :attr:`JobState.CANCELLED`."""


@dataclass
class JobEvent:
    """One progress event pushed to :meth:`JobHandle.watch` streams.

    ``kind`` is ``"state"`` for lifecycle transitions and ``"round"``
    for per-round progress; round events carry the step index and the
    job's own simulated clock/loss (never wall-clock values).
    """

    job_id: str
    kind: str
    state: str
    step: Optional[int] = None
    sim_time: Optional[float] = None
    loss: Optional[float] = None
    detail: str = ""

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready payload (optional fields dropped when unset)."""
        payload: Dict[str, object] = {
            "job_id": self.job_id,
            "kind": self.kind,
            "state": self.state,
        }
        if self.step is not None:
            payload["step"] = self.step
        if self.sim_time is not None:
            payload["sim_time"] = self.sim_time
        if self.loss is not None:
            payload["loss"] = self.loss
        if self.detail:
            payload["detail"] = self.detail
        return payload


@dataclass(eq=False)  # identity semantics: jobs live in set membership
class Job:
    """Coordinator-side record of one submitted job (internal)."""

    job_id: str
    name: str
    spec: "ExperimentSpec"
    weight: int = 1
    #: scheduling-class priority tier; higher tiers preempt quanta.
    priority: int = 0
    #: optional deadline (simulated seconds); breaks credit ties
    #: earliest-deadline-first within a priority tier.
    deadline: Optional[float] = None
    state: JobState = JobState.QUEUED
    #: admission order; ties in the scheduler break on this.
    seq: int = 0
    rounds_done: int = 0
    report: "RunReport | None" = None
    error: str = ""
    trace_path: Optional[str] = None
    cancel_requested: bool = False
    #: the live engine wrapper once RUNNING (None while queued).
    runner: "JobRunner | None" = None
    #: parked engine state while evicted from the worker pool (or
    #: recovered from a mailbox checkpoint); consumed on re-acquire.
    checkpoint_state: "object | None" = None
    #: scheduler bookkeeping (smooth weighted round-robin credit).
    credit: int = 0
    #: queues feeding active ``watch()`` streams.
    watchers: List["asyncio.Queue[JobEvent | None]"] = field(
        default_factory=list
    )
    done_event: asyncio.Event = field(default_factory=asyncio.Event)

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready state summary (the ``jobs/<id>.json`` payload)."""
        payload: Dict[str, object] = {
            "id": self.job_id,
            "name": self.name,
            "state": self.state.value,
            "weight": self.weight,
            "rounds_done": self.rounds_done,
            "spec_fingerprint": self.spec.fingerprint(),
        }
        # Scheduling-class fields appear only when non-default, so
        # default-class jobs keep the exact historical payload.
        if self.priority != 0:
            payload["priority"] = self.priority
        if self.deadline is not None:
            payload["deadline"] = self.deadline
        if self.trace_path is not None:
            payload["trace_path"] = self.trace_path
        if self.report is not None:
            payload["report"] = self.report.to_dict()
        if self.error:
            payload["error"] = self.error
        return payload


class JobHandle:
    """The in-process client view of one submitted job.

    Obtained from :meth:`Coordinator.submit`; all waiting is asyncio
    (``await handle.result()``, ``async for event in handle.watch()``),
    while :attr:`state`, :attr:`report` and :meth:`cancel` are plain
    synchronous accessors.
    """

    def __init__(self, coordinator: "Coordinator", job: Job):
        self._coordinator = coordinator
        self._job = job

    # ------------------------------------------------------------------
    @property
    def job_id(self) -> str:
        return self._job.job_id

    @property
    def name(self) -> str:
        return self._job.name

    @property
    def state(self) -> JobState:
        return self._job.state

    @property
    def report(self) -> "RunReport | None":
        """The job's result payload once ``DONE``, else ``None``."""
        return self._job.report

    @property
    def error(self) -> str:
        """The failure summary once ``FAILED``, else ``""``."""
        return self._job.error

    @property
    def trace_path(self) -> Optional[str]:
        """Where this job's JSONL round trace streams, if tracing."""
        return self._job.trace_path

    def done(self) -> bool:
        """Whether the job has reached a terminal state."""
        return self._job.state.terminal

    # ------------------------------------------------------------------
    def cancel(self) -> bool:
        """Request cancellation; returns ``False`` if already terminal.

        Queued jobs cancel immediately; running jobs stop at their next
        round boundary (the current round always completes, so traces
        never end mid-round).
        """
        return self._coordinator._request_cancel(self._job)

    async def result(self) -> "RunReport":
        """Wait for the job to finish and return its report.

        Raises :class:`JobFailedError` / :class:`JobCancelledError` for
        the corresponding terminal states.
        """
        await self._job.done_event.wait()
        if self._job.state is JobState.FAILED:
            raise JobFailedError(
                f"job {self._job.job_id} ({self._job.name}) failed: "
                f"{self._job.error}"
            )
        if self._job.state is JobState.CANCELLED:
            raise JobCancelledError(
                f"job {self._job.job_id} ({self._job.name}) was cancelled"
            )
        assert self._job.report is not None
        return self._job.report

    async def watch(self) -> AsyncIterator[JobEvent]:
        """Stream this job's lifecycle and per-round events.

        Yields every subsequent :class:`JobEvent` until the job reaches
        a terminal state; a watcher attached after completion receives
        just the terminal state event.
        """
        queue: "asyncio.Queue[JobEvent | None]" = asyncio.Queue()
        if self._job.state.terminal:
            yield JobEvent(
                job_id=self._job.job_id,
                kind="state",
                state=self._job.state.value,
                detail=self._job.error,
            )
            return
        self._job.watchers.append(queue)
        try:
            while True:
                event = await queue.get()
                if event is None:
                    return
                yield event
        finally:
            if queue in self._job.watchers:
                self._job.watchers.remove(queue)
