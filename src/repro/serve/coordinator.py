"""The asyncio multi-job coordinator: :class:`Coordinator`.

One coordinator hosts many simultaneous training jobs — each a full
:class:`~repro.engine.ExperimentSpec` with its own placement scheme,
environment, round engine and seed — and interleaves their rounds over
a shared executor under a fair scheduler:

* **admission control** — at most ``queue_limit`` non-terminal jobs;
  submissions beyond that are rejected with :class:`ServeError`;
* **scheduling** — up to ``max_running`` jobs hold RUNNING state; each
  quantum (one engine round) goes to the job the pluggable
  :class:`~repro.serve.scheduler.Scheduler` picks (default: smooth
  weighted round-robin, starvation-free);
* **lifecycle** — ``submit → QUEUED → RUNNING → DONE/FAILED/CANCELLED``
  with per-job failure isolation and round-boundary cancellation;
* **observability** — per-job JSONL round-trace streaming through
  :class:`~repro.obs.TraceStreamWriter`, plus in-process
  :meth:`JobHandle.watch` event streams.

Two execution modes:

``deterministic``
    Quanta run inline on the event-loop thread, one at a time.  Because
    every job's RNG streams, decode cache and simulated clock are
    private to its engine, **any** interleaving of quanta yields
    bit-for-bit the trajectories of sequential ``repro run``
    invocations — the property the test suite pins with hypothesis.

``live``
    Quanta run on a thread pool (up to ``max_running`` in flight), so
    many jobs make wall-clock progress concurrently while the event
    loop keeps serving submissions, watches and the file mailbox.
    Results are still per-job deterministic; only the *completion
    order* is timing-dependent.

Simulated time and wall time never mix: job results carry only their
engines' simulated clocks (the ``TIME003`` static check patrols this
boundary).
"""

from __future__ import annotations

import asyncio
import itertools
import json
import pathlib
import traceback
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from ..engine.spec import ExperimentSpec
from ..exceptions import AdmissionError, ServeError
from .jobs import Job, JobEvent, JobHandle, JobState
from .pool import WorkerPool
from .scheduler import FairScheduler, Scheduler, SchedulingClass

if TYPE_CHECKING:  # pragma: no cover
    from ..engine.report import RunReport
    from .mailbox import CheckpointRecord, ServeMailbox


class Coordinator:
    """Hosts and fairly schedules many concurrent training jobs.

    Parameters
    ----------
    mode:
        ``"deterministic"`` (inline quanta, reproducible interleaving)
        or ``"live"`` (thread-pool quanta); see the module docstring.
    max_running:
        How many jobs may hold RUNNING state at once (and, in live
        mode, how many quanta may be in flight concurrently).
    queue_limit:
        Admission bound on non-terminal jobs (queued + running).
    scheduler:
        Quantum scheduler; defaults to the smooth weighted round-robin
        :class:`~repro.serve.scheduler.FairScheduler`.
    trace_dir:
        When set, every job streams its round trace to
        ``<trace_dir>/<job_id>.jsonl`` unless submitted with
        ``trace=False``.
    pool_capacity:
        How many live engines the shared :class:`WorkerPool` keeps
        resident; jobs beyond that are parked as
        :class:`~repro.engine.EngineState` snapshots and resumed
        bit-identically on their next quantum.  Defaults to
        ``max_running``.
    """

    def __init__(
        self,
        *,
        mode: str = "live",
        max_running: int = 4,
        queue_limit: int = 64,
        scheduler: Optional[Scheduler] = None,
        trace_dir: "str | pathlib.Path | None" = None,
        pool_capacity: Optional[int] = None,
    ):
        if mode not in ("live", "deterministic"):
            raise ServeError(
                f"unknown coordinator mode {mode!r}; expected "
                "'live' or 'deterministic'"
            )
        if max_running <= 0:
            raise ServeError(
                f"max_running must be positive, got {max_running}"
            )
        if queue_limit <= 0:
            raise ServeError(
                f"queue_limit must be positive, got {queue_limit}"
            )
        self.mode = mode
        self.max_running = max_running
        self.queue_limit = queue_limit
        self.scheduler: Scheduler = (
            scheduler if scheduler is not None else FairScheduler()
        )
        self.trace_dir = (
            pathlib.Path(trace_dir) if trace_dir is not None else None
        )
        self.pool = WorkerPool(
            capacity=(
                pool_capacity if pool_capacity is not None else max_running
            )
        )
        self._jobs: Dict[str, Job] = {}
        self._seq = itertools.count()
        self._inflight: set = set()
        self._pool: ThreadPoolExecutor | None = None
        self._wake = asyncio.Event()
        self._mailbox: "ServeMailbox | None" = None
        self._closed = False

    # ------------------------------------------------------------------
    # Submission / admission control
    # ------------------------------------------------------------------
    def submit(
        self,
        spec: "ExperimentSpec | str | pathlib.Path",
        *,
        name: Optional[str] = None,
        weight: Optional[int] = None,
        trace: Optional[bool] = None,
        job_id: Optional[str] = None,
        priority: Optional[int] = None,
        deadline: Optional[float] = None,
        scheduling_class: Optional[SchedulingClass] = None,
    ) -> JobHandle:
        """Admit one job; returns its :class:`JobHandle`.

        ``spec`` may be a spec object or a ``.json``/``.toml`` path
        (loaded through :meth:`ExperimentSpec.from_file`, so submission
        payloads get the same validation + did-you-mean errors).
        ``scheduling_class`` supplies default weight/priority/deadline;
        the explicit keyword arguments override it field by field.
        Raises :class:`~repro.exceptions.AdmissionError` (carrying the
        queue depth and a retry hint) when the queue is full, and
        :class:`ServeError` when the weight is invalid or the
        coordinator is closed.
        """
        if self._closed:
            raise ServeError("coordinator is closed; no new submissions")
        if not isinstance(spec, ExperimentSpec):
            spec = ExperimentSpec.from_file(spec)
        sched = scheduling_class
        if weight is None:
            weight = sched.weight if sched is not None else 1
        if priority is None:
            priority = sched.priority if sched is not None else 0
        if deadline is None and sched is not None:
            deadline = sched.deadline
        if weight < 1:
            raise ServeError(f"job weight must be >= 1, got {weight}")
        if deadline is not None and deadline <= 0:
            raise ServeError(
                f"job deadline must be positive, got {deadline}"
            )
        active = sum(
            1 for job in self._jobs.values() if not job.state.terminal
        )
        if active >= self.queue_limit:
            raise AdmissionError(
                f"admission rejected: {active} active jobs at the "
                f"queue limit ({self.queue_limit})",
                reason="queue_limit",
                queue_depth=active,
                queue_limit=self.queue_limit,
                retry_hint=(
                    "resubmit after a job reaches a terminal state "
                    "(watch jobs/ for done/failed/cancelled)"
                ),
            )
        seq = next(self._seq)
        if job_id is None:
            job_id = f"job-{seq:04d}"
        if job_id in self._jobs:
            raise ServeError(f"duplicate job id {job_id!r}")
        job = Job(
            job_id=job_id,
            name=name if name is not None else spec.name,
            spec=spec,
            weight=int(weight),
            priority=int(priority),
            deadline=deadline,
            seq=seq,
        )
        if trace is None:
            trace = self.trace_dir is not None and spec.rule != "async"
        if trace:
            if self.trace_dir is None:
                raise ServeError(
                    "tracing requested but the coordinator has no "
                    "trace_dir"
                )
            self.trace_dir.mkdir(parents=True, exist_ok=True)
            job.trace_path = str(self.trace_dir / f"{job_id}.jsonl")
        self._jobs[job_id] = job
        self._emit_state(job)
        if self._mailbox is not None:
            self._mailbox.write_checkpoint(job, None)
        self._wake.set()
        return JobHandle(self, job)

    def handle(self, job_id: str) -> JobHandle:
        """The handle for a previously submitted job id."""
        job = self._jobs.get(job_id)
        if job is None:
            raise ServeError(f"unknown job id {job_id!r}")
        return JobHandle(self, job)

    def jobs(self) -> List[Dict[str, object]]:
        """State snapshots of every job, in submission order."""
        ordered = sorted(self._jobs.values(), key=lambda job: job.seq)
        return [job.snapshot() for job in ordered]

    # ------------------------------------------------------------------
    # Lifecycle internals
    # ------------------------------------------------------------------
    def _request_cancel(self, job: Job) -> bool:
        if job.state.terminal:
            return False
        job.cancel_requested = True
        if job.state is JobState.QUEUED:
            self._finish_cancel(job)
        # RUNNING jobs stop at the next round boundary (the scheduler
        # checks the flag before granting another quantum).
        self._wake.set()
        return True

    def _finish_cancel(self, job: Job) -> None:
        if job.runner is not None:
            job.runner.abort()
        self._transition(job, JobState.CANCELLED)

    def _transition(
        self, job: Job, state: JobState, detail: str = ""
    ) -> None:
        job.state = state
        self._emit_state(job, detail)
        if state.terminal:
            self.pool.discard(job)
            job.checkpoint_state = None
            if self._mailbox is not None:
                self._mailbox.clear_checkpoint(job.job_id)
            job.done_event.set()
            for queue in job.watchers:
                queue.put_nowait(None)
            job.watchers.clear()

    def _emit_state(self, job: Job, detail: str = "") -> None:
        self._push_event(job, JobEvent(
            job_id=job.job_id,
            kind="state",
            state=job.state.value,
            detail=detail or job.error,
        ))

    def _push_event(self, job: Job, event: JobEvent) -> None:
        for queue in job.watchers:
            queue.put_nowait(event)
        if self._mailbox is not None:
            self._mailbox.write_state(job)

    def _start_job(self, job: Job) -> None:
        """QUEUED → RUNNING: build the engine (isolated on failure).

        Goes through the shared :class:`WorkerPool`, so a recovered job
        (one carrying a ``checkpoint_state``) resumes from its snapshot
        instead of round zero.
        """
        try:
            self.pool.acquire(job)
        except Exception as exc:  # noqa: BLE001 - isolation boundary
            job.error = _summarize_error(exc)
            self._transition(job, JobState.FAILED)
            return
        self.pool.release(job)
        self._transition(job, JobState.RUNNING)

    def _admit_queued(self) -> None:
        running = [
            job for job in self._jobs.values()
            if job.state is JobState.RUNNING
        ]
        queued = sorted(
            (
                job for job in self._jobs.values()
                if job.state is JobState.QUEUED
            ),
            key=lambda job: job.seq,
        )
        for job in queued:
            if len(running) >= self.max_running:
                break
            if job.cancel_requested:
                self._finish_cancel(job)
                continue
            self._start_job(job)
            if job.state is JobState.RUNNING:
                running.append(job)

    def _runnable(self) -> List[Job]:
        """RUNNING jobs eligible for a quantum right now."""
        jobs = []
        for job in sorted(self._jobs.values(), key=lambda j: j.seq):
            if job.state is not JobState.RUNNING or job in self._inflight:
                continue
            if job.cancel_requested:
                self._finish_cancel(job)
                continue
            jobs.append(job)
        return jobs

    def _active(self) -> bool:
        return any(
            not job.state.terminal for job in self._jobs.values()
        )

    # ------------------------------------------------------------------
    # Quantum execution
    # ------------------------------------------------------------------
    def _finish_quantum(self, job: Job, outcome) -> None:
        """Commit one quantum's result on the event-loop thread."""
        self._inflight.discard(job)
        if isinstance(outcome, BaseException):
            job.error = _summarize_error(outcome)
            if job.runner is not None:
                job.runner.abort()
            self._transition(job, JobState.FAILED)
            return
        assert job.runner is not None
        job.rounds_done = job.runner.rounds_done
        record = job.runner.last_record
        self._push_event(job, JobEvent(
            job_id=job.job_id,
            kind="round",
            state=job.state.value,
            step=job.rounds_done,
            sim_time=record.sim_time if record is not None else None,
            loss=record.loss if record is not None else None,
        ))
        if outcome:  # runner reported completion
            job.report = job.runner.report()
            self._transition(job, JobState.DONE)
        elif job.cancel_requested:
            self._finish_cancel(job)
        else:
            # Still running: persist the round boundary so a killed
            # coordinator resumes from here, then unpin the engine
            # (the pool may park it under capacity pressure).
            if self._mailbox is not None:
                self._mailbox.write_checkpoint(
                    job, job.runner.checkpoint()
                )
            self.pool.release(job)

    async def _run_one_deterministic(self, job: Job) -> None:
        try:
            runner = self.pool.acquire(job)
            done = runner.step()
        except Exception as exc:  # noqa: BLE001 - isolation boundary
            self._finish_quantum(job, exc)
        else:
            self._finish_quantum(job, done)
        # Yield so submissions/watchers interleave at round boundaries.
        await asyncio.sleep(0)

    def _launch_live(self, job: Job) -> "asyncio.Future | None":
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.max_running,
                thread_name_prefix="repro-serve",
            )
        self._inflight.add(job)
        try:
            runner = self.pool.acquire(job)
        except Exception as exc:  # noqa: BLE001 - isolation boundary
            self._finish_quantum(job, exc)
            return None
        loop = asyncio.get_running_loop()
        future = loop.run_in_executor(self._pool, runner.step)

        def _done(fut: "asyncio.Future") -> None:
            outcome = fut.exception()
            if outcome is None:
                outcome = fut.result()
            self._finish_quantum(job, outcome)
            self._wake.set()

        future.add_done_callback(_done)
        return future

    # ------------------------------------------------------------------
    # Driving loops
    # ------------------------------------------------------------------
    async def drain(self) -> None:
        """Schedule quanta until every submitted job is terminal."""
        while self._active():
            self._admit_queued()
            runnable = self._runnable()
            if not runnable:
                if self._inflight:
                    self._wake.clear()
                    await self._wake.wait()
                    continue
                if not self._active():
                    break
                # Only queued-but-unadmittable jobs remain; loop again
                # (admission frees up as running jobs finish).
                await asyncio.sleep(0)
                continue
            if self.mode == "deterministic":
                job = self.scheduler.pick(runnable)
                await self._run_one_deterministic(job)
            else:
                while runnable and len(self._inflight) < self.max_running:
                    job = self.scheduler.pick(runnable)
                    runnable.remove(job)
                    self._launch_live(job)
                self._wake.clear()
                if self._inflight:
                    await self._wake.wait()

    async def serve(
        self,
        mailbox: "ServeMailbox",
        *,
        poll_interval: float = 0.05,
        idle_exit: Optional[float] = None,
        once: bool = False,
    ) -> None:
        """Serve a file mailbox: accept submissions, run jobs, publish
        state snapshots.

        ``once`` drains the current inbox and every admitted job, then
        returns (the CI smoke mode).  ``idle_exit`` returns after
        approximately that many seconds with an empty inbox and no
        active jobs (measured in ``poll_interval`` sleeps, not by
        reading a wall clock).  With neither, serves until cancelled.

        On startup the mailbox's ``checkpoints/`` records are scanned
        and every non-terminal job is re-admitted — RUNNING jobs resume
        from their last snapshotted round boundary, QUEUED ones from
        round zero — so a coordinator killed mid-run completes its
        jobs bit-identically after a restart (``announce`` has already
        taken over the stale pid marker).
        """
        self._mailbox = mailbox
        mailbox.announce(self)
        self._recover(mailbox)
        idle_polls = 0
        try:
            while True:
                admitted = self._poll_mailbox(mailbox)
                if self._active():
                    idle_polls = 0
                    await self.drain()
                    for job in self._jobs.values():
                        if job.state.terminal:
                            mailbox.write_state(job)
                    continue
                if once and not admitted:
                    return
                if idle_exit is not None:
                    idle_polls += 1
                    if idle_polls * poll_interval >= idle_exit:
                        return
                await asyncio.sleep(poll_interval)
        finally:
            mailbox.retire(self)
            self._mailbox = None

    def _recover(self, mailbox: "ServeMailbox") -> None:
        """Re-admit every checkpointed job the last coordinator left.

        A job whose published state is already terminal only needs its
        stale checkpoint cleared; everything else is resubmitted under
        its original id/class, carrying the snapshotted engine state
        (when one was written) so its first quantum continues exactly
        where the dead coordinator stopped.
        """
        for record in mailbox.poll_checkpoints():
            if record.job_id in self._jobs:
                continue
            published = self._published_state(mailbox, record.job_id)
            if published in ("done", "failed", "cancelled"):
                mailbox.clear_checkpoint(record.job_id)
                continue
            try:
                handle = self.submit(
                    record.spec,
                    name=record.name,
                    weight=record.weight,
                    priority=record.priority,
                    deadline=record.deadline,
                    trace=False,
                    job_id=record.job_id,
                )
            except ServeError as exc:
                mailbox.clear_checkpoint(record.job_id)
                mailbox._write_rejection_payload(
                    record.job_id,
                    f"recovery failed: {exc}",
                    {"reason": "recovery_failed"},
                )
                continue
            job = self._jobs[handle.job_id]
            job.trace_path = record.trace_path
            job.checkpoint_state = record.engine_state
            job.rounds_done = record.rounds_done
            # Re-persist the recovered state (submit wrote a fresh
            # round-zero record) so a second crash resumes from the
            # same boundary, not from scratch.
            mailbox.write_checkpoint(job, record.engine_state)

    @staticmethod
    def _published_state(
        mailbox: "ServeMailbox", job_id: str
    ) -> Optional[str]:
        path = mailbox.root / "jobs" / f"{job_id}.json"
        if not path.exists():
            return None
        try:
            return json.loads(path.read_text()).get("state")
        except ValueError:
            return None

    def _poll_mailbox(self, mailbox: "ServeMailbox") -> int:
        admitted = 0
        for submission in mailbox.poll_submissions():
            try:
                self.submit(
                    submission.spec,
                    name=submission.name,
                    weight=submission.weight,
                    trace=submission.trace,
                    job_id=submission.job_id,
                    priority=submission.priority,
                    deadline=submission.deadline,
                )
                admitted += 1
            except AdmissionError as exc:
                mailbox.write_rejection(submission, str(exc), exc.details())
            except ServeError as exc:
                mailbox.write_rejection(submission, str(exc))
        for job_id in mailbox.poll_cancels():
            job = self._jobs.get(job_id)
            if job is not None:
                self._request_cancel(job)
        return admitted

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Refuse further submissions and release the thread pool.

        Unfinished engines are parked through the worker pool (their
        state snapshotted onto the job records, trace streams closed).
        """
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self.pool.clear()

    def __enter__(self) -> "Coordinator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _summarize_error(exc: BaseException) -> str:
    """One-line error summary plus the innermost frame, for job state."""
    lines = traceback.format_exception_only(type(exc), exc)
    summary = lines[-1].strip() if lines else repr(exc)
    tb = exc.__traceback__
    location = ""
    while tb is not None:
        frame = tb.tb_frame
        location = f" (at {frame.f_code.co_filename}:{tb.tb_lineno})"
        tb = tb.tb_next
    return summary + location


def run_jobs(
    specs: Sequence["ExperimentSpec | str | pathlib.Path"],
    *,
    mode: str = "deterministic",
    max_running: int = 4,
    weights: Optional[Sequence[int]] = None,
    scheduler: Optional[Scheduler] = None,
    trace_dir: "str | pathlib.Path | None" = None,
    queue_limit: Optional[int] = None,
) -> List["RunReport"]:
    """Convenience driver: submit ``specs``, drain, return the reports.

    Results are in submission order.  A failed or cancelled job raises
    its :class:`~repro.serve.jobs.JobFailedError` /
    :class:`~repro.serve.jobs.JobCancelledError` — callers that want
    per-job outcomes should drive a :class:`Coordinator` directly.
    """
    coordinator = Coordinator(
        mode=mode,
        max_running=max_running,
        queue_limit=(
            queue_limit if queue_limit is not None else max(64, len(specs))
        ),
        scheduler=scheduler,
        trace_dir=trace_dir,
    )

    async def _run() -> List["RunReport"]:
        handles = [
            coordinator.submit(
                spec,
                weight=(weights[i] if weights is not None else 1),
            )
            for i, spec in enumerate(specs)
        ]
        await coordinator.drain()
        return [await handle.result() for handle in handles]

    with coordinator:
        return asyncio.run(_run())
