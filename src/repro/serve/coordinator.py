"""The asyncio multi-job coordinator: :class:`Coordinator`.

One coordinator hosts many simultaneous training jobs — each a full
:class:`~repro.engine.ExperimentSpec` with its own placement scheme,
environment, round engine and seed — and interleaves their rounds over
a shared executor under a fair scheduler:

* **admission control** — at most ``queue_limit`` non-terminal jobs;
  submissions beyond that are rejected with :class:`ServeError`;
* **scheduling** — up to ``max_running`` jobs hold RUNNING state; each
  quantum (one engine round) goes to the job the pluggable
  :class:`~repro.serve.scheduler.Scheduler` picks (default: smooth
  weighted round-robin, starvation-free);
* **lifecycle** — ``submit → QUEUED → RUNNING → DONE/FAILED/CANCELLED``
  with per-job failure isolation and round-boundary cancellation;
* **observability** — per-job JSONL round-trace streaming through
  :class:`~repro.obs.TraceStreamWriter`, plus in-process
  :meth:`JobHandle.watch` event streams.

Two execution modes:

``deterministic``
    Quanta run inline on the event-loop thread, one at a time.  Because
    every job's RNG streams, decode cache and simulated clock are
    private to its engine, **any** interleaving of quanta yields
    bit-for-bit the trajectories of sequential ``repro run``
    invocations — the property the test suite pins with hypothesis.

``live``
    Quanta run on a thread pool (up to ``max_running`` in flight), so
    many jobs make wall-clock progress concurrently while the event
    loop keeps serving submissions, watches and the file mailbox.
    Results are still per-job deterministic; only the *completion
    order* is timing-dependent.

Simulated time and wall time never mix: job results carry only their
engines' simulated clocks (the ``TIME003`` static check patrols this
boundary).
"""

from __future__ import annotations

import asyncio
import itertools
import pathlib
import traceback
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from ..engine.spec import ExperimentSpec
from ..exceptions import ServeError
from .jobs import Job, JobEvent, JobHandle, JobState
from .runner import JobRunner
from .scheduler import FairScheduler, Scheduler

if TYPE_CHECKING:  # pragma: no cover
    from ..engine.report import RunReport
    from .mailbox import ServeMailbox


class Coordinator:
    """Hosts and fairly schedules many concurrent training jobs.

    Parameters
    ----------
    mode:
        ``"deterministic"`` (inline quanta, reproducible interleaving)
        or ``"live"`` (thread-pool quanta); see the module docstring.
    max_running:
        How many jobs may hold RUNNING state at once (and, in live
        mode, how many quanta may be in flight concurrently).
    queue_limit:
        Admission bound on non-terminal jobs (queued + running).
    scheduler:
        Quantum scheduler; defaults to the smooth weighted round-robin
        :class:`~repro.serve.scheduler.FairScheduler`.
    trace_dir:
        When set, every job streams its round trace to
        ``<trace_dir>/<job_id>.jsonl`` unless submitted with
        ``trace=False``.
    """

    def __init__(
        self,
        *,
        mode: str = "live",
        max_running: int = 4,
        queue_limit: int = 64,
        scheduler: Optional[Scheduler] = None,
        trace_dir: "str | pathlib.Path | None" = None,
    ):
        if mode not in ("live", "deterministic"):
            raise ServeError(
                f"unknown coordinator mode {mode!r}; expected "
                "'live' or 'deterministic'"
            )
        if max_running <= 0:
            raise ServeError(
                f"max_running must be positive, got {max_running}"
            )
        if queue_limit <= 0:
            raise ServeError(
                f"queue_limit must be positive, got {queue_limit}"
            )
        self.mode = mode
        self.max_running = max_running
        self.queue_limit = queue_limit
        self.scheduler: Scheduler = (
            scheduler if scheduler is not None else FairScheduler()
        )
        self.trace_dir = (
            pathlib.Path(trace_dir) if trace_dir is not None else None
        )
        self._jobs: Dict[str, Job] = {}
        self._seq = itertools.count()
        self._inflight: set = set()
        self._pool: ThreadPoolExecutor | None = None
        self._wake = asyncio.Event()
        self._mailbox: "ServeMailbox | None" = None
        self._closed = False

    # ------------------------------------------------------------------
    # Submission / admission control
    # ------------------------------------------------------------------
    def submit(
        self,
        spec: "ExperimentSpec | str | pathlib.Path",
        *,
        name: Optional[str] = None,
        weight: int = 1,
        trace: Optional[bool] = None,
        job_id: Optional[str] = None,
    ) -> JobHandle:
        """Admit one job; returns its :class:`JobHandle`.

        ``spec`` may be a spec object or a ``.json``/``.toml`` path
        (loaded through :meth:`ExperimentSpec.from_file`, so submission
        payloads get the same validation + did-you-mean errors).
        Raises :class:`ServeError` when the queue is full, the weight
        is invalid, or the coordinator is closed.
        """
        if self._closed:
            raise ServeError("coordinator is closed; no new submissions")
        if not isinstance(spec, ExperimentSpec):
            spec = ExperimentSpec.from_file(spec)
        if weight < 1:
            raise ServeError(f"job weight must be >= 1, got {weight}")
        active = sum(
            1 for job in self._jobs.values() if not job.state.terminal
        )
        if active >= self.queue_limit:
            raise ServeError(
                f"admission rejected: {active} active jobs at the "
                f"queue limit ({self.queue_limit})"
            )
        seq = next(self._seq)
        if job_id is None:
            job_id = f"job-{seq:04d}"
        if job_id in self._jobs:
            raise ServeError(f"duplicate job id {job_id!r}")
        job = Job(
            job_id=job_id,
            name=name if name is not None else spec.name,
            spec=spec,
            weight=int(weight),
            seq=seq,
        )
        if trace is None:
            trace = self.trace_dir is not None and spec.rule != "async"
        if trace:
            if self.trace_dir is None:
                raise ServeError(
                    "tracing requested but the coordinator has no "
                    "trace_dir"
                )
            self.trace_dir.mkdir(parents=True, exist_ok=True)
            job.trace_path = str(self.trace_dir / f"{job_id}.jsonl")
        self._jobs[job_id] = job
        self._emit_state(job)
        self._wake.set()
        return JobHandle(self, job)

    def handle(self, job_id: str) -> JobHandle:
        """The handle for a previously submitted job id."""
        job = self._jobs.get(job_id)
        if job is None:
            raise ServeError(f"unknown job id {job_id!r}")
        return JobHandle(self, job)

    def jobs(self) -> List[Dict[str, object]]:
        """State snapshots of every job, in submission order."""
        ordered = sorted(self._jobs.values(), key=lambda job: job.seq)
        return [job.snapshot() for job in ordered]

    # ------------------------------------------------------------------
    # Lifecycle internals
    # ------------------------------------------------------------------
    def _request_cancel(self, job: Job) -> bool:
        if job.state.terminal:
            return False
        job.cancel_requested = True
        if job.state is JobState.QUEUED:
            self._finish_cancel(job)
        # RUNNING jobs stop at the next round boundary (the scheduler
        # checks the flag before granting another quantum).
        self._wake.set()
        return True

    def _finish_cancel(self, job: Job) -> None:
        if job.runner is not None:
            job.runner.abort()
        self._transition(job, JobState.CANCELLED)

    def _transition(
        self, job: Job, state: JobState, detail: str = ""
    ) -> None:
        job.state = state
        self._emit_state(job, detail)
        if state.terminal:
            job.done_event.set()
            for queue in job.watchers:
                queue.put_nowait(None)
            job.watchers.clear()

    def _emit_state(self, job: Job, detail: str = "") -> None:
        self._push_event(job, JobEvent(
            job_id=job.job_id,
            kind="state",
            state=job.state.value,
            detail=detail or job.error,
        ))

    def _push_event(self, job: Job, event: JobEvent) -> None:
        for queue in job.watchers:
            queue.put_nowait(event)
        if self._mailbox is not None:
            self._mailbox.write_state(job)

    def _start_job(self, job: Job) -> None:
        """QUEUED → RUNNING: build the engine (isolated on failure)."""
        try:
            job.runner = JobRunner(
                job.spec,
                trace_path=job.trace_path,
                trace_context=job.name,
            )
        except Exception as exc:  # noqa: BLE001 - isolation boundary
            job.error = _summarize_error(exc)
            self._transition(job, JobState.FAILED)
            return
        self._transition(job, JobState.RUNNING)

    def _admit_queued(self) -> None:
        running = [
            job for job in self._jobs.values()
            if job.state is JobState.RUNNING
        ]
        queued = sorted(
            (
                job for job in self._jobs.values()
                if job.state is JobState.QUEUED
            ),
            key=lambda job: job.seq,
        )
        for job in queued:
            if len(running) >= self.max_running:
                break
            if job.cancel_requested:
                self._finish_cancel(job)
                continue
            self._start_job(job)
            if job.state is JobState.RUNNING:
                running.append(job)

    def _runnable(self) -> List[Job]:
        """RUNNING jobs eligible for a quantum right now."""
        jobs = []
        for job in sorted(self._jobs.values(), key=lambda j: j.seq):
            if job.state is not JobState.RUNNING or job in self._inflight:
                continue
            if job.cancel_requested:
                self._finish_cancel(job)
                continue
            jobs.append(job)
        return jobs

    def _active(self) -> bool:
        return any(
            not job.state.terminal for job in self._jobs.values()
        )

    # ------------------------------------------------------------------
    # Quantum execution
    # ------------------------------------------------------------------
    def _finish_quantum(self, job: Job, outcome) -> None:
        """Commit one quantum's result on the event-loop thread."""
        self._inflight.discard(job)
        if isinstance(outcome, BaseException):
            job.error = _summarize_error(outcome)
            if job.runner is not None:
                job.runner.abort()
            self._transition(job, JobState.FAILED)
            return
        assert job.runner is not None
        job.rounds_done = job.runner.rounds_done
        record = job.runner.last_record
        self._push_event(job, JobEvent(
            job_id=job.job_id,
            kind="round",
            state=job.state.value,
            step=job.rounds_done,
            sim_time=record.sim_time if record is not None else None,
            loss=record.loss if record is not None else None,
        ))
        if outcome:  # runner reported completion
            job.report = job.runner.report()
            self._transition(job, JobState.DONE)
        elif job.cancel_requested:
            self._finish_cancel(job)

    async def _run_one_deterministic(self, job: Job) -> None:
        assert job.runner is not None
        try:
            done = job.runner.step()
        except Exception as exc:  # noqa: BLE001 - isolation boundary
            self._finish_quantum(job, exc)
        else:
            self._finish_quantum(job, done)
        # Yield so submissions/watchers interleave at round boundaries.
        await asyncio.sleep(0)

    def _launch_live(self, job: Job) -> "asyncio.Future":
        assert job.runner is not None
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.max_running,
                thread_name_prefix="repro-serve",
            )
        self._inflight.add(job)
        loop = asyncio.get_running_loop()
        future = loop.run_in_executor(self._pool, job.runner.step)

        def _done(fut: "asyncio.Future") -> None:
            outcome = fut.exception()
            if outcome is None:
                outcome = fut.result()
            self._finish_quantum(job, outcome)
            self._wake.set()

        future.add_done_callback(_done)
        return future

    # ------------------------------------------------------------------
    # Driving loops
    # ------------------------------------------------------------------
    async def drain(self) -> None:
        """Schedule quanta until every submitted job is terminal."""
        while self._active():
            self._admit_queued()
            runnable = self._runnable()
            if not runnable:
                if self._inflight:
                    self._wake.clear()
                    await self._wake.wait()
                    continue
                if not self._active():
                    break
                # Only queued-but-unadmittable jobs remain; loop again
                # (admission frees up as running jobs finish).
                await asyncio.sleep(0)
                continue
            if self.mode == "deterministic":
                job = self.scheduler.pick(runnable)
                await self._run_one_deterministic(job)
            else:
                while runnable and len(self._inflight) < self.max_running:
                    job = self.scheduler.pick(runnable)
                    runnable.remove(job)
                    self._launch_live(job)
                self._wake.clear()
                if self._inflight:
                    await self._wake.wait()

    async def serve(
        self,
        mailbox: "ServeMailbox",
        *,
        poll_interval: float = 0.05,
        idle_exit: Optional[float] = None,
        once: bool = False,
    ) -> None:
        """Serve a file mailbox: accept submissions, run jobs, publish
        state snapshots.

        ``once`` drains the current inbox and every admitted job, then
        returns (the CI smoke mode).  ``idle_exit`` returns after
        approximately that many seconds with an empty inbox and no
        active jobs (measured in ``poll_interval`` sleeps, not by
        reading a wall clock).  With neither, serves until cancelled.
        """
        self._mailbox = mailbox
        mailbox.announce(self)
        idle_polls = 0
        try:
            while True:
                admitted = self._poll_mailbox(mailbox)
                if self._active():
                    idle_polls = 0
                    await self.drain()
                    for job in self._jobs.values():
                        if job.state.terminal:
                            mailbox.write_state(job)
                    continue
                if once and not admitted:
                    return
                if idle_exit is not None:
                    idle_polls += 1
                    if idle_polls * poll_interval >= idle_exit:
                        return
                await asyncio.sleep(poll_interval)
        finally:
            mailbox.retire(self)
            self._mailbox = None

    def _poll_mailbox(self, mailbox: "ServeMailbox") -> int:
        admitted = 0
        for submission in mailbox.poll_submissions():
            try:
                self.submit(
                    submission.spec,
                    name=submission.name,
                    weight=submission.weight,
                    trace=submission.trace,
                    job_id=submission.job_id,
                )
                admitted += 1
            except ServeError as exc:
                mailbox.write_rejection(submission, str(exc))
        for job_id in mailbox.poll_cancels():
            job = self._jobs.get(job_id)
            if job is not None:
                self._request_cancel(job)
        return admitted

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Refuse further submissions and release the thread pool."""
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "Coordinator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _summarize_error(exc: BaseException) -> str:
    """One-line error summary plus the innermost frame, for job state."""
    lines = traceback.format_exception_only(type(exc), exc)
    summary = lines[-1].strip() if lines else repr(exc)
    tb = exc.__traceback__
    location = ""
    while tb is not None:
        frame = tb.tb_frame
        location = f" (at {frame.f_code.co_filename}:{tb.tb_lineno})"
        tb = tb.tb_next
    return summary + location


def run_jobs(
    specs: Sequence["ExperimentSpec | str | pathlib.Path"],
    *,
    mode: str = "deterministic",
    max_running: int = 4,
    weights: Optional[Sequence[int]] = None,
    scheduler: Optional[Scheduler] = None,
    trace_dir: "str | pathlib.Path | None" = None,
    queue_limit: Optional[int] = None,
) -> List["RunReport"]:
    """Convenience driver: submit ``specs``, drain, return the reports.

    Results are in submission order.  A failed or cancelled job raises
    its :class:`~repro.serve.jobs.JobFailedError` /
    :class:`~repro.serve.jobs.JobCancelledError` — callers that want
    per-job outcomes should drive a :class:`Coordinator` directly.
    """
    coordinator = Coordinator(
        mode=mode,
        max_running=max_running,
        queue_limit=(
            queue_limit if queue_limit is not None else max(64, len(specs))
        ),
        scheduler=scheduler,
        trace_dir=trace_dir,
    )

    async def _run() -> List["RunReport"]:
        handles = [
            coordinator.submit(
                spec,
                weight=(weights[i] if weights is not None else 1),
            )
            for i, spec in enumerate(specs)
        ]
        await coordinator.drain()
        return [await handle.result() for handle in handles]

    with coordinator:
        return asyncio.run(_run())
