"""File-based submission protocol between serve CLI commands and a
running coordinator.

A mailbox is a directory; every message is one JSON file written
atomically (temp file + ``os.replace``), so readers never observe a
partial payload and the protocol needs no socket, daemon library or
extra dependency.  Layout::

    <root>/
      coordinator.json      # present while a coordinator is serving
      inbox/<job_id>.json   # submissions, consumed in sorted order
      cancel/<job_id>.cancel
      jobs/<job_id>.json    # state snapshots, rewritten on progress
      rejected/<job_id>.json

Submissions embed the full spec payload (``{"spec": {...}}``), so the
coordinator revalidates through :meth:`ExperimentSpec.from_dict` and
rejections land in ``rejected/`` with the original error message —
including the spec layer's did-you-mean hints.

Two classes share the directory: :class:`ServeMailbox` is the
coordinator side (poll, consume, publish state);
:class:`CoordinatorClient` is the CLI side (submit, list, cancel,
wait).  Wall-clock time appears *only* here, for client poll timeouts —
never in job results (the ``TIME003`` static check keeps the rest of
:mod:`repro.serve` wall-clock-free).
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional

from ..engine.spec import ExperimentSpec
from ..exceptions import ConfigurationError, ServeError

if TYPE_CHECKING:  # pragma: no cover
    from .coordinator import Coordinator
    from .jobs import Job

_INBOX = "inbox"
_JOBS = "jobs"
_CANCEL = "cancel"
_REJECTED = "rejected"
_COORDINATOR = "coordinator.json"

#: terminal states a client's ``wait()`` stops on.
_TERMINAL = ("done", "failed", "cancelled", "rejected")


def _atomic_write(path: pathlib.Path, payload: Dict[str, object]) -> None:
    """Write JSON so that readers see either nothing or the whole file."""
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)


@dataclass
class Submission:
    """One decoded inbox entry."""

    job_id: str
    spec: ExperimentSpec
    name: Optional[str] = None
    weight: int = 1
    trace: Optional[bool] = None

    @classmethod
    def from_payload(
        cls, job_id: str, payload: Dict[str, object]
    ) -> "Submission":
        if not isinstance(payload, dict) or "spec" not in payload:
            raise ServeError(
                f"submission {job_id!r} is missing the 'spec' payload"
            )
        spec = ExperimentSpec.from_dict(payload["spec"])
        weight = payload.get("weight", 1)
        if not isinstance(weight, int) or isinstance(weight, bool):
            raise ServeError(
                f"submission {job_id!r} has non-integer weight "
                f"{weight!r}"
            )
        trace = payload.get("trace")
        if trace is not None and not isinstance(trace, bool):
            raise ServeError(
                f"submission {job_id!r} has non-boolean trace flag "
                f"{trace!r}"
            )
        name = payload.get("name")
        if name is not None and not isinstance(name, str):
            raise ServeError(
                f"submission {job_id!r} has non-string name {name!r}"
            )
        return cls(
            job_id=job_id, spec=spec, name=name,
            weight=weight, trace=trace,
        )


class ServeMailbox:
    """Coordinator-side view of a mailbox directory."""

    def __init__(self, root: "str | pathlib.Path"):
        self.root = pathlib.Path(root)
        for sub in (_INBOX, _JOBS, _CANCEL, _REJECTED):
            (self.root / sub).mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def announce(self, coordinator: "Coordinator") -> None:
        """Publish that a coordinator is serving this mailbox."""
        _atomic_write(self.root / _COORDINATOR, {
            "mode": coordinator.mode,
            "max_running": coordinator.max_running,
            "queue_limit": coordinator.queue_limit,
            "pid": os.getpid(),
        })

    def retire(self, coordinator: "Coordinator") -> None:
        """Remove the serving marker (idempotent)."""
        marker = self.root / _COORDINATOR
        if marker.exists():
            marker.unlink()

    # ------------------------------------------------------------------
    def poll_submissions(self) -> Iterator[Submission]:
        """Consume pending inbox entries in sorted (submission) order.

        Malformed payloads are moved straight to ``rejected/`` with the
        parse error; well-formed ones are yielded for admission.
        """
        inbox = self.root / _INBOX
        for path in sorted(inbox.glob("*.json")):
            job_id = path.stem
            try:
                payload = json.loads(path.read_text())
                submission = Submission.from_payload(job_id, payload)
            except (ServeError, ConfigurationError, ValueError) as exc:
                path.unlink()
                self._write_rejection_payload(job_id, str(exc))
                continue
            path.unlink()
            yield submission

    def poll_cancels(self) -> List[str]:
        """Consume pending cancellation requests (job ids)."""
        cancels = []
        for path in sorted((self.root / _CANCEL).glob("*.cancel")):
            cancels.append(path.stem)
            path.unlink()
        return cancels

    # ------------------------------------------------------------------
    def write_state(self, job: "Job") -> None:
        """Publish/refresh one job's state snapshot."""
        _atomic_write(
            self.root / _JOBS / f"{job.job_id}.json", job.snapshot()
        )

    def write_rejection(self, submission: Submission, reason: str) -> None:
        """Record that a well-formed submission failed admission."""
        self._write_rejection_payload(submission.job_id, reason)

    def _write_rejection_payload(self, job_id: str, reason: str) -> None:
        _atomic_write(self.root / _REJECTED / f"{job_id}.json", {
            "id": job_id,
            "state": "rejected",
            "error": reason,
        })


class CoordinatorClient:
    """CLI/client-side view of a mailbox directory.

    Submissions are fire-and-forget file drops; state comes from the
    snapshots the coordinator publishes.  ``wait()`` polls with a
    wall-clock deadline — acceptable here because the clock only
    bounds the *wait*, it never enters a job result.
    """

    def __init__(self, root: "str | pathlib.Path"):
        self.root = pathlib.Path(root)
        for sub in (_INBOX, _JOBS, _CANCEL, _REJECTED):
            (self.root / sub).mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def serving(self) -> Optional[Dict[str, object]]:
        """The announce payload if a coordinator is serving, else None."""
        marker = self.root / _COORDINATOR
        if not marker.exists():
            return None
        return json.loads(marker.read_text())

    def _fresh_job_id(self) -> str:
        taken = {
            path.stem
            for sub in (_INBOX, _JOBS, _REJECTED)
            for path in (self.root / sub).glob("*.json")
        }
        i = 0
        while f"job-{os.getpid()}-{i:04d}" in taken:
            i += 1
        return f"job-{os.getpid()}-{i:04d}"

    def submit(
        self,
        spec: "ExperimentSpec | str | pathlib.Path",
        *,
        name: Optional[str] = None,
        weight: int = 1,
        trace: Optional[bool] = None,
        job_id: Optional[str] = None,
    ) -> str:
        """Drop one submission into the inbox; returns its job id."""
        if not isinstance(spec, ExperimentSpec):
            spec = ExperimentSpec.from_file(spec)
        if job_id is None:
            job_id = self._fresh_job_id()
        target = self.root / _INBOX / f"{job_id}.json"
        if target.exists() or (self.root / _JOBS / f"{job_id}.json").exists():
            raise ServeError(f"duplicate job id {job_id!r}")
        payload: Dict[str, object] = {
            "spec": spec.to_dict(),
            "weight": int(weight),
        }
        if name is not None:
            payload["name"] = name
        if trace is not None:
            payload["trace"] = trace
        _atomic_write(target, payload)
        return job_id

    def cancel(self, job_id: str) -> None:
        """Request cancellation of a submitted job."""
        (self.root / _CANCEL / f"{job_id}.cancel").write_text("")

    # ------------------------------------------------------------------
    def state(self, job_id: str) -> Optional[Dict[str, object]]:
        """The latest snapshot for one job (or its rejection record)."""
        for sub in (_JOBS, _REJECTED):
            path = self.root / sub / f"{job_id}.json"
            if path.exists():
                return json.loads(path.read_text())
        inbox = self.root / _INBOX / f"{job_id}.json"
        if inbox.exists():
            return {"id": job_id, "state": "submitted"}
        return None

    def jobs(self) -> List[Dict[str, object]]:
        """All known job snapshots, sorted by job id."""
        snapshots = {}
        for sub in (_JOBS, _REJECTED):
            for path in sorted((self.root / sub).glob("*.json")):
                snapshots[path.stem] = json.loads(path.read_text())
        for path in sorted((self.root / _INBOX).glob("*.json")):
            snapshots.setdefault(
                path.stem, {"id": path.stem, "state": "submitted"}
            )
        return [snapshots[key] for key in sorted(snapshots)]

    def wait(
        self,
        job_id: str,
        *,
        timeout: float = 60.0,
        poll_interval: float = 0.05,
    ) -> Dict[str, object]:
        """Block until ``job_id`` reaches a terminal state.

        Returns the final snapshot; raises :class:`ServeError` when the
        timeout expires first.  The deadline uses the monotonic clock
        purely for flow control — nothing from it enters the result.
        """
        deadline = time.monotonic() + timeout
        while True:
            snapshot = self.state(job_id)
            if snapshot is not None and snapshot.get("state") in _TERMINAL:
                return snapshot
            if time.monotonic() >= deadline:
                raise ServeError(
                    f"timed out after {timeout:g}s waiting for job "
                    f"{job_id!r}"
                    + ("" if snapshot else " (never seen by a coordinator)")
                )
            time.sleep(poll_interval)
