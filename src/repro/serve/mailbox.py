"""File-based submission protocol between serve CLI commands and a
running coordinator.

A mailbox is a directory; every message is one JSON file written
atomically (temp file + ``os.replace``), so readers never observe a
partial payload and the protocol needs no socket, daemon library or
extra dependency.  Layout::

    <root>/
      coordinator.json          # present while a coordinator is serving
      inbox/<job_id>.json       # submissions, consumed in sorted order
      cancel/<job_id>.cancel
      jobs/<job_id>.json        # state snapshots, rewritten on progress
      rejected/<job_id>.json
      checkpoints/<job_id>.json # resumable job records (spec + engine
                                # state), cleared on terminal states

Submissions embed the full spec payload (``{"spec": {...}}``), so the
coordinator revalidates through :meth:`ExperimentSpec.from_dict` and
rejections land in ``rejected/`` with the original error message —
including the spec layer's did-you-mean hints.  Admission rejections
(queue limit) additionally carry structured context: a machine-readable
``reason``, the queue depth/limit at rejection time, and a
``retry_hint``.

``checkpoints/`` is what makes jobs survive their coordinator: each
record holds everything needed to re-admit the job (spec, name, weight,
scheduling class, trace path) plus — once the job has run a quantum —
its serialized :class:`~repro.engine.EngineState`.  A restarting
coordinator re-admits every non-terminal checkpointed job and resumes
it bit-identically (see :meth:`Coordinator.serve`).  The
``coordinator.json`` marker embeds the serving pid; a new coordinator
takes over a *stale* marker (dead pid) but refuses a live one.

Two classes share the directory: :class:`ServeMailbox` is the
coordinator side (poll, consume, publish state);
:class:`CoordinatorClient` is the CLI side (submit, list, cancel,
wait).  Wall-clock time appears *only* here, for client poll timeouts —
never in job results (the ``TIME003`` static check keeps the rest of
:mod:`repro.serve` wall-clock-free).
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional

from ..engine.spec import ExperimentSpec
from ..engine.state import EngineState
from ..exceptions import (
    ConfigurationError,
    ServeError,
    SubmissionRejectedError,
)

if TYPE_CHECKING:  # pragma: no cover
    from .coordinator import Coordinator
    from .jobs import Job

_INBOX = "inbox"
_JOBS = "jobs"
_CANCEL = "cancel"
_REJECTED = "rejected"
_CHECKPOINTS = "checkpoints"
_COORDINATOR = "coordinator.json"
_SUBDIRS = (_INBOX, _JOBS, _CANCEL, _REJECTED, _CHECKPOINTS)

#: terminal states a client's ``wait()`` stops on.
_TERMINAL = ("done", "failed", "cancelled", "rejected")


def _atomic_write(path: pathlib.Path, payload: Dict[str, object]) -> None:
    """Write JSON so that readers see either nothing or the whole file."""
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process we can see."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, not ours
        return True
    except OSError:  # pragma: no cover - conservative default
        return False
    return True


@dataclass
class Submission:
    """One decoded inbox entry."""

    job_id: str
    spec: ExperimentSpec
    name: Optional[str] = None
    weight: int = 1
    trace: Optional[bool] = None
    priority: int = 0
    deadline: Optional[float] = None

    @classmethod
    def from_payload(
        cls, job_id: str, payload: Dict[str, object]
    ) -> "Submission":
        if not isinstance(payload, dict) or "spec" not in payload:
            raise ServeError(
                f"submission {job_id!r} is missing the 'spec' payload"
            )
        spec = ExperimentSpec.from_dict(payload["spec"])
        weight = payload.get("weight", 1)
        if not isinstance(weight, int) or isinstance(weight, bool):
            raise ServeError(
                f"submission {job_id!r} has non-integer weight "
                f"{weight!r}"
            )
        trace = payload.get("trace")
        if trace is not None and not isinstance(trace, bool):
            raise ServeError(
                f"submission {job_id!r} has non-boolean trace flag "
                f"{trace!r}"
            )
        name = payload.get("name")
        if name is not None and not isinstance(name, str):
            raise ServeError(
                f"submission {job_id!r} has non-string name {name!r}"
            )
        priority = payload.get("priority", 0)
        if not isinstance(priority, int) or isinstance(priority, bool):
            raise ServeError(
                f"submission {job_id!r} has non-integer priority "
                f"{priority!r}"
            )
        deadline = payload.get("deadline")
        if deadline is not None:
            if isinstance(deadline, bool) or not isinstance(
                deadline, (int, float)
            ):
                raise ServeError(
                    f"submission {job_id!r} has non-numeric deadline "
                    f"{deadline!r}"
                )
            deadline = float(deadline)
        return cls(
            job_id=job_id, spec=spec, name=name,
            weight=weight, trace=trace,
            priority=priority, deadline=deadline,
        )


@dataclass
class CheckpointRecord:
    """One decoded ``checkpoints/`` entry (a resumable job)."""

    job_id: str
    spec: ExperimentSpec
    name: str
    weight: int = 1
    priority: int = 0
    deadline: Optional[float] = None
    trace_path: Optional[str] = None
    rounds_done: int = 0
    engine_state: Optional[EngineState] = None

    @classmethod
    def from_payload(
        cls, job_id: str, payload: Dict[str, object]
    ) -> "CheckpointRecord":
        if not isinstance(payload, dict) or "spec" not in payload:
            raise ServeError(
                f"checkpoint {job_id!r} is missing the 'spec' payload"
            )
        engine_state = payload.get("engine_state")
        return cls(
            job_id=job_id,
            spec=ExperimentSpec.from_dict(payload["spec"]),
            name=str(payload.get("name", job_id)),
            weight=int(payload.get("weight", 1)),
            priority=int(payload.get("priority", 0)),
            deadline=(
                float(payload["deadline"])
                if payload.get("deadline") is not None else None
            ),
            trace_path=payload.get("trace_path"),
            rounds_done=int(payload.get("rounds_done", 0)),
            engine_state=(
                EngineState.from_dict(engine_state)
                if engine_state is not None else None
            ),
        )


class ServeMailbox:
    """Coordinator-side view of a mailbox directory."""

    def __init__(self, root: "str | pathlib.Path"):
        self.root = pathlib.Path(root)
        for sub in _SUBDIRS:
            (self.root / sub).mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def announce(self, coordinator: "Coordinator") -> None:
        """Publish that a coordinator is serving this mailbox.

        Refuses when another *live* process already holds the marker;
        a stale marker (dead pid — e.g. a killed coordinator) is taken
        over silently, which is what lets a restarted coordinator
        resume the mailbox's checkpointed jobs.
        """
        marker = self.root / _COORDINATOR
        if marker.exists():
            try:
                existing = json.loads(marker.read_text())
                pid = int(existing.get("pid", -1))
            except (ValueError, TypeError):
                pid = -1
            if pid > 0 and pid != os.getpid() and _pid_alive(pid):
                raise ServeError(
                    f"mailbox {self.root} is already served by live "
                    f"coordinator pid {pid}"
                )
        _atomic_write(marker, {
            "mode": coordinator.mode,
            "max_running": coordinator.max_running,
            "queue_limit": coordinator.queue_limit,
            "pid": os.getpid(),
        })

    def retire(self, coordinator: "Coordinator") -> None:
        """Remove the serving marker (idempotent)."""
        marker = self.root / _COORDINATOR
        if marker.exists():
            marker.unlink()

    # ------------------------------------------------------------------
    def poll_submissions(self) -> Iterator[Submission]:
        """Consume pending inbox entries in sorted (submission) order.

        Malformed payloads are moved straight to ``rejected/`` with the
        parse error; well-formed ones are yielded for admission.
        """
        inbox = self.root / _INBOX
        for path in sorted(inbox.glob("*.json")):
            job_id = path.stem
            try:
                payload = json.loads(path.read_text())
                submission = Submission.from_payload(job_id, payload)
            except (ServeError, ConfigurationError, ValueError) as exc:
                path.unlink()
                self._write_rejection_payload(
                    job_id, str(exc), {"reason": "invalid_submission"}
                )
                continue
            path.unlink()
            yield submission

    def poll_cancels(self) -> List[str]:
        """Consume pending cancellation requests (job ids)."""
        cancels = []
        for path in sorted((self.root / _CANCEL).glob("*.cancel")):
            cancels.append(path.stem)
            path.unlink()
        return cancels

    # ------------------------------------------------------------------
    def write_state(self, job: "Job") -> None:
        """Publish/refresh one job's state snapshot."""
        _atomic_write(
            self.root / _JOBS / f"{job.job_id}.json", job.snapshot()
        )

    def write_rejection(
        self,
        submission: Submission,
        reason: str,
        details: Optional[Dict[str, object]] = None,
    ) -> None:
        """Record that a well-formed submission failed admission.

        ``details`` carries the structured context (machine-readable
        ``reason``, ``queue_depth``/``queue_limit``, ``retry_hint``)
        of an :class:`~repro.exceptions.AdmissionError`.
        """
        self._write_rejection_payload(submission.job_id, reason, details)

    def _write_rejection_payload(
        self,
        job_id: str,
        reason: str,
        details: Optional[Dict[str, object]] = None,
    ) -> None:
        payload: Dict[str, object] = {
            "id": job_id,
            "state": "rejected",
            "error": reason,
        }
        if details:
            payload.update(details)
        _atomic_write(self.root / _REJECTED / f"{job_id}.json", payload)

    # ------------------------------------------------------------------
    def write_checkpoint(
        self, job: "Job", state: "EngineState | None"
    ) -> None:
        """Persist one job's resumable record (spec + engine state).

        Written at admission (``state=None`` — the job can restart from
        round zero) and refreshed at every round boundary once the job
        runs, so a killed coordinator loses at most the quantum that
        was in flight.
        """
        payload: Dict[str, object] = {
            "id": job.job_id,
            "name": job.name,
            "weight": job.weight,
            "rounds_done": job.rounds_done,
            "spec": job.spec.to_dict(),
            "engine_state": state.to_dict() if state is not None else None,
        }
        if job.priority != 0:
            payload["priority"] = job.priority
        if job.deadline is not None:
            payload["deadline"] = job.deadline
        if job.trace_path is not None:
            payload["trace_path"] = job.trace_path
        _atomic_write(
            self.root / _CHECKPOINTS / f"{job.job_id}.json", payload
        )

    def clear_checkpoint(self, job_id: str) -> None:
        """Drop a terminal job's checkpoint record (idempotent)."""
        path = self.root / _CHECKPOINTS / f"{job_id}.json"
        if path.exists():
            path.unlink()

    def poll_checkpoints(self) -> List[CheckpointRecord]:
        """Decode every checkpoint record, in sorted (job id) order.

        Unreadable records are rejected (with the parse error) rather
        than wedging recovery of the readable ones.
        """
        records = []
        for path in sorted((self.root / _CHECKPOINTS).glob("*.json")):
            job_id = path.stem
            try:
                payload = json.loads(path.read_text())
                records.append(CheckpointRecord.from_payload(job_id, payload))
            except (ServeError, ConfigurationError, ValueError) as exc:
                path.unlink()
                self._write_rejection_payload(
                    job_id,
                    f"unreadable checkpoint: {exc}",
                    {"reason": "invalid_checkpoint"},
                )
        return records


class CoordinatorClient:
    """CLI/client-side view of a mailbox directory.

    Submissions are fire-and-forget file drops; state comes from the
    snapshots the coordinator publishes.  ``wait()`` polls with a
    wall-clock deadline — acceptable here because the clock only
    bounds the *wait*, it never enters a job result.
    """

    def __init__(self, root: "str | pathlib.Path"):
        self.root = pathlib.Path(root)
        for sub in _SUBDIRS:
            (self.root / sub).mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def serving(self) -> Optional[Dict[str, object]]:
        """The announce payload if a coordinator is serving, else None."""
        marker = self.root / _COORDINATOR
        if not marker.exists():
            return None
        return json.loads(marker.read_text())

    def _fresh_job_id(self) -> str:
        taken = {
            path.stem
            for sub in (_INBOX, _JOBS, _REJECTED, _CHECKPOINTS)
            for path in (self.root / sub).glob("*.json")
        }
        i = 0
        while f"job-{os.getpid()}-{i:04d}" in taken:
            i += 1
        return f"job-{os.getpid()}-{i:04d}"

    def submit(
        self,
        spec: "ExperimentSpec | str | pathlib.Path",
        *,
        name: Optional[str] = None,
        weight: int = 1,
        trace: Optional[bool] = None,
        job_id: Optional[str] = None,
        priority: int = 0,
        deadline: Optional[float] = None,
    ) -> str:
        """Drop one submission into the inbox; returns its job id.

        Reusing the id of an already *rejected* submission raises
        :class:`~repro.exceptions.SubmissionRejectedError` carrying the
        structured rejection record (reason, queue depth, retry hint).
        """
        if not isinstance(spec, ExperimentSpec):
            spec = ExperimentSpec.from_file(spec)
        if job_id is None:
            job_id = self._fresh_job_id()
        rejected = self.root / _REJECTED / f"{job_id}.json"
        if rejected.exists():
            record = json.loads(rejected.read_text())
            raise SubmissionRejectedError(
                f"job id {job_id!r} was rejected: "
                f"{record.get('error', 'unknown reason')}",
                record=record,
            )
        target = self.root / _INBOX / f"{job_id}.json"
        if target.exists() or (self.root / _JOBS / f"{job_id}.json").exists():
            raise ServeError(f"duplicate job id {job_id!r}")
        payload: Dict[str, object] = {
            "spec": spec.to_dict(),
            "weight": int(weight),
        }
        if name is not None:
            payload["name"] = name
        if trace is not None:
            payload["trace"] = trace
        # Scheduling-class fields ride along only when non-default, so
        # default-class payloads stay byte-identical to the old format.
        if priority != 0:
            payload["priority"] = int(priority)
        if deadline is not None:
            payload["deadline"] = float(deadline)
        _atomic_write(target, payload)
        return job_id

    def cancel(self, job_id: str) -> None:
        """Request cancellation of a submitted job."""
        (self.root / _CANCEL / f"{job_id}.cancel").write_text("")

    # ------------------------------------------------------------------
    def state(self, job_id: str) -> Optional[Dict[str, object]]:
        """The latest snapshot for one job (or its rejection record)."""
        for sub in (_JOBS, _REJECTED):
            path = self.root / sub / f"{job_id}.json"
            if path.exists():
                return json.loads(path.read_text())
        inbox = self.root / _INBOX / f"{job_id}.json"
        if inbox.exists():
            return {"id": job_id, "state": "submitted"}
        return None

    def jobs(self) -> List[Dict[str, object]]:
        """All known job snapshots, sorted by job id."""
        snapshots = {}
        for sub in (_JOBS, _REJECTED):
            for path in sorted((self.root / sub).glob("*.json")):
                snapshots[path.stem] = json.loads(path.read_text())
        for path in sorted((self.root / _INBOX).glob("*.json")):
            snapshots.setdefault(
                path.stem, {"id": path.stem, "state": "submitted"}
            )
        return [snapshots[key] for key in sorted(snapshots)]

    def wait(
        self,
        job_id: str,
        *,
        timeout: float = 60.0,
        poll_interval: float = 0.05,
    ) -> Dict[str, object]:
        """Block until ``job_id`` reaches a terminal state.

        Returns the final snapshot; raises
        :class:`~repro.exceptions.SubmissionRejectedError` (carrying
        the structured record) when the submission was rejected, and
        :class:`ServeError` when the timeout expires first.  The
        deadline uses the monotonic clock purely for flow control —
        nothing from it enters the result.
        """
        deadline = time.monotonic() + timeout
        while True:
            snapshot = self.state(job_id)
            if snapshot is not None and snapshot.get("state") in _TERMINAL:
                if snapshot.get("state") == "rejected":
                    raise SubmissionRejectedError(
                        f"job {job_id!r} was rejected: "
                        f"{snapshot.get('error', 'unknown reason')}",
                        record=snapshot,
                    )
                return snapshot
            if time.monotonic() >= deadline:
                raise ServeError(
                    f"timed out after {timeout:g}s waiting for job "
                    f"{job_id!r}"
                    + ("" if snapshot else " (never seen by a coordinator)")
                )
            time.sleep(poll_interval)
