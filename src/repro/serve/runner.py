"""One job's engine, steppable round by round: :class:`JobRunner`.

:meth:`RoundEngine.run` owns the canonical training loop (step →
loss-tracker → early stop).  Interleaving many jobs means suspending
that loop between rounds, so the runner drives the engine through its
resumable API — :meth:`~repro.engine.RoundEngine.start_run` once, then
one :meth:`~repro.engine.RoundEngine.step_rounds` quantum per
``step()`` call, then :meth:`~repro.engine.RoundEngine.finish_run` —
which is *exactly* the same step sequence and stopping rule, so
``JobRunner`` run to completion produces, bit for bit, the
:class:`~repro.types.TrainingSummary` of ``engine.run(...)`` on the
same spec.  The determinism tests pin this equivalence, which is what
makes the coordinator's deterministic mode meaningful — N interleaved
jobs produce the same results as N sequential ``repro run``
invocations.

Jobs under the ``async`` update rule step in fixed quanta of
:data:`ASYNC_QUANTUM` master updates, so they are preemptible and
checkpointable like synchronous jobs (the engine derives its master
version and clock from the recorded updates, making the cut points
invisible to the trajectory).

Checkpointing: :meth:`JobRunner.checkpoint` captures the engine's
:class:`~repro.engine.EngineState` at the current round boundary;
constructing a runner with ``checkpoint=`` rebuilds the engine from
the spec, restores that state, rewinds the trace stream to the
checkpointed round count, and continues — bit-identically to a run
that was never interrupted.  This is how the
:class:`~repro.serve.pool.WorkerPool` parks evicted jobs and how a
restarted coordinator resumes RUNNING jobs after a crash.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..engine.report import RunReport, build_run_report
from ..engine.spec import build_engine
from ..exceptions import ServeError
from ..obs import RoundTracer, TraceStreamWriter, truncate_traces

if TYPE_CHECKING:  # pragma: no cover
    from ..engine.state import EngineState
    from ..engine.spec import ExperimentSpec
    from ..types import StepRecord

#: master updates per quantum for ``async``-rule jobs: large enough to
#: amortise the scheduling overhead, small enough to preempt promptly.
ASYNC_QUANTUM = 32


class JobRunner:
    """Builds a spec's engine and exposes a one-quantum ``step()`` API.

    Parameters
    ----------
    spec:
        The job's experiment description; the engine, RNG streams and
        decode cache are all private to this runner, so concurrent
        runners cannot perturb each other.
    trace_path:
        When given, a :class:`~repro.obs.TraceStreamWriter` streams the
        job's round trace there — one JSONL line per round, flushed as
        the round completes (requires the flat backend, like all
        tracing).
    checkpoint:
        An :class:`~repro.engine.EngineState` from a previous runner's
        :meth:`checkpoint`; the rebuilt engine restores it and the
        trace file is rewound to the checkpointed round count before
        streaming resumes.
    """

    def __init__(
        self,
        spec: "ExperimentSpec",
        trace_path: Optional[str] = None,
        trace_context: Optional[str] = None,
        checkpoint: "EngineState | None" = None,
    ):
        self.spec = spec
        self.tracer: RoundTracer | None = None
        self._stream: TraceStreamWriter | None = None
        self._streamed = 0
        resumed_rounds = checkpoint.round_index if checkpoint is not None else 0
        if trace_path is not None:
            if spec.rule == "async":
                raise ServeError(
                    "async-rule jobs have no round trace to stream; "
                    "submit without a trace path"
                )
            self.tracer = RoundTracer(
                scheme=trace_context if trace_context is not None
                else spec.name
            )
            if checkpoint is not None:
                # Drop any rounds streamed after the snapshot was cut,
                # then continue in place: the resumed file is
                # line-for-line the uninterrupted stream.
                truncate_traces(trace_path, resumed_rounds)
            self._stream = TraceStreamWriter(
                trace_path, append=checkpoint is not None
            )
        self.engine = build_engine(spec, tracer=self.tracer)
        self._finished = False
        self._summary = None
        if spec.rule == "async":
            self.engine.start_updates(spec.max_steps)
        else:
            self.engine.start_run(
                spec.max_steps,
                loss_threshold=spec.loss_threshold,
                smoothing_window=spec.smoothing_window,
            )
        if checkpoint is not None:
            self.engine.restore(checkpoint)

    # ------------------------------------------------------------------
    @property
    def rounds_done(self) -> int:
        if self.spec.rule == "async":
            return len(self.engine.async_records)
        return len(self.engine.records)

    @property
    def finished(self) -> bool:
        return self._finished

    @property
    def last_record(self) -> "StepRecord | None":
        return self.engine.records[-1] if self.engine.records else None

    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run one quantum; returns ``True`` when the job just finished.

        For synchronous rules a quantum is one engine round; for the
        ``async`` rule it is :data:`ASYNC_QUANTUM` master updates.
        """
        if self._finished:
            raise ServeError("job already finished; step() after end")
        if self.spec.rule == "async":
            if self.engine.step_updates(ASYNC_QUANTUM):
                self._summary = self.engine.finish_updates()
                self._finished = True
            return self._finished
        done = self.engine.step_rounds(1)
        self._stream_new_traces()
        if done:
            self._summary = self.engine.finish_run()
            self._finished = True
            self._close_stream()
        return self._finished

    def checkpoint(self) -> "EngineState":
        """The engine's full mutable state at this round boundary.

        JSON-round-trippable; handing it to a new ``JobRunner`` for the
        same spec (``checkpoint=``) resumes the job bit-identically.
        """
        if self._finished:
            raise ServeError(
                "job already finished; nothing left to checkpoint"
            )
        return self.engine.snapshot()

    def _stream_new_traces(self) -> None:
        """Flush traces recorded since the last round to the stream."""
        if self._stream is None or self.tracer is None:
            return
        traces = self.tracer.traces
        for trace in traces[self._streamed:]:
            self._stream.append(trace)
        self._streamed = len(traces)

    def _close_stream(self) -> None:
        if self._stream is not None:
            self._stream_new_traces()
            self._stream.close()

    def abort(self) -> None:
        """Stop without a summary (cancellation); closes the stream."""
        self._finished = True
        self._close_stream()

    def release(self) -> None:
        """Close the trace stream without finishing (pool eviction).

        The stream reopens in append mode when the job is resumed from
        its checkpoint; the job itself stays live.
        """
        if self._stream is not None:
            self._stream_new_traces()
            self._stream.close()

    # ------------------------------------------------------------------
    def report(self) -> RunReport:
        """The finished job's result payload."""
        if self._summary is None:
            raise ServeError("job has no result yet; step() to completion")
        return build_run_report(
            self._summary,
            spec=self.spec,
            trace_path=(
                str(self._stream.path) if self._stream is not None else None
            ),
        )
