"""One job's engine, steppable round by round: :class:`JobRunner`.

:meth:`RoundEngine.run` owns the canonical training loop (step →
loss-tracker → early stop).  Interleaving many jobs means suspending
that loop between rounds, so the runner re-expresses it as an explicit
state machine with *exactly* the same step sequence and stopping rule:
``JobRunner`` run to completion produces, bit for bit, the
:class:`~repro.types.TrainingSummary` of ``engine.run(...)`` on the
same spec.  The determinism tests pin this equivalence, which is what
makes the coordinator's deterministic mode meaningful — N interleaved
jobs produce the same results as N sequential ``repro run``
invocations.

Jobs under the ``async`` update rule have no round boundary the engine
exposes (arrivals are a continuous stream), so an async job runs as a
single monolithic quantum.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..engine.report import RunReport
from ..engine.spec import build_engine
from ..exceptions import ServeError
from ..obs import RoundTracer, TraceStreamWriter

if TYPE_CHECKING:  # pragma: no cover
    from ..engine.spec import ExperimentSpec
    from ..types import StepRecord


class JobRunner:
    """Builds a spec's engine and exposes a one-round ``step()`` API.

    Parameters
    ----------
    spec:
        The job's experiment description; the engine, RNG streams and
        decode cache are all private to this runner, so concurrent
        runners cannot perturb each other.
    trace_path:
        When given, a :class:`~repro.obs.TraceStreamWriter` streams the
        job's round trace there — one JSONL line per round, flushed as
        the round completes (requires the flat backend, like all
        tracing).
    """

    def __init__(
        self,
        spec: "ExperimentSpec",
        trace_path: Optional[str] = None,
        trace_context: Optional[str] = None,
    ):
        self.spec = spec
        self.tracer: RoundTracer | None = None
        self._stream: TraceStreamWriter | None = None
        self._streamed = 0
        if trace_path is not None:
            if spec.rule == "async":
                raise ServeError(
                    "async-rule jobs have no round trace to stream; "
                    "submit without a trace path"
                )
            self.tracer = RoundTracer(
                scheme=trace_context if trace_context is not None
                else spec.name
            )
            self._stream = TraceStreamWriter(trace_path)
        self.engine = build_engine(spec, tracer=self.tracer)
        self._step = 0
        self._finished = False
        self._summary = None
        # Mirrors RoundEngine.run: same tracker, same reset, same
        # stopping rule — the golden determinism tests pin this.
        from ..training.convergence import LossTracker

        self._tracker = LossTracker(
            spec.loss_threshold, spec.smoothing_window
        )
        self.engine.max_steps = spec.max_steps
        self.engine.records = []

    # ------------------------------------------------------------------
    @property
    def rounds_done(self) -> int:
        return self._step

    @property
    def finished(self) -> bool:
        return self._finished

    @property
    def last_record(self) -> "StepRecord | None":
        return self.engine.records[-1] if self.engine.records else None

    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run one quantum; returns ``True`` when the job just finished.

        For synchronous rules a quantum is one engine round; for the
        ``async`` rule it is the whole run (no exposed round boundary).
        """
        if self._finished:
            raise ServeError("job already finished; step() after end")
        if self.spec.rule == "async":
            self._summary = self.engine.run_updates(self.spec.max_steps)
            self._step = self._summary.num_updates
            self._finished = True
            return True
        record = self.engine.run_step(self._step)
        self._tracker.record(record.loss)
        self._step += 1
        self._stream_new_traces()
        if self._tracker.reached_threshold() or self._step >= self.spec.max_steps:
            self._summary = self.engine.summarize(
                reached=self._tracker.reached_threshold()
            )
            self._finished = True
            self._close_stream()
        return self._finished

    def _stream_new_traces(self) -> None:
        """Flush traces recorded since the last round to the stream."""
        if self._stream is None or self.tracer is None:
            return
        traces = self.tracer.traces
        for trace in traces[self._streamed:]:
            self._stream.append(trace)
        self._streamed = len(traces)

    def _close_stream(self) -> None:
        if self._stream is not None:
            self._stream_new_traces()
            self._stream.close()

    def abort(self) -> None:
        """Stop without a summary (cancellation); closes the stream."""
        self._finished = True
        self._close_stream()

    # ------------------------------------------------------------------
    def report(self) -> RunReport:
        """The finished job's result payload."""
        if self._summary is None:
            raise ServeError("job has no result yet; step() to completion")
        return RunReport.from_summary(
            self._summary,
            spec=self.spec,
            trace_path=(
                str(self._stream.path) if self._stream is not None else None
            ),
        )
