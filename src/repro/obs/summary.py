"""Re-aggregation of round traces into per-scheme statistics.

This is the read path of the observability layer: given traces — live
from a :class:`~repro.obs.tracer.RoundTracer` or loaded back from JSONL
— compute the quantities the paper's evaluation revolves around (mean
step time, recovery fraction) plus the operational ones (accepted
counts, decode search effort, wasted compute).

Aggregation uses the same arithmetic as the live metrics
(``numpy`` means over the full series), so an exported-then-reloaded
trace summarises to exactly the numbers the run produced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..exceptions import ObservabilityError
from .events import RoundTrace


@dataclass(frozen=True)
class SchemeAggregate:
    """Summary statistics for every traced round of one scheme."""

    scheme: str
    rounds: int
    mean_step_time: float
    p50_step_time: float
    p95_step_time: float
    p99_step_time: float
    mean_accepted: float
    total_wasted_compute: float
    #: ``None`` when no round of this scheme was decoded.
    mean_recovery_fraction: Optional[float]
    mean_num_searches: Optional[float]
    decoded_rounds: int

    @classmethod
    def from_traces(
        cls, scheme: str, traces: Sequence[RoundTrace]
    ) -> "SchemeAggregate":
        if not traces:
            raise ObservabilityError(
                f"no traces to aggregate for scheme {scheme!r}"
            )
        times = np.array([t.step_time for t in traces])
        decoded = [t for t in traces if t.recovery_fraction is not None]
        return cls(
            scheme=scheme,
            rounds=len(traces),
            mean_step_time=float(times.mean()),
            p50_step_time=float(np.percentile(times, 50)),
            p95_step_time=float(np.percentile(times, 95)),
            p99_step_time=float(np.percentile(times, 99)),
            mean_accepted=float(
                np.mean([t.num_accepted for t in traces])
            ),
            total_wasted_compute=float(
                np.sum([t.wasted_compute for t in traces])
            ),
            mean_recovery_fraction=(
                float(np.mean([t.recovery_fraction for t in decoded]))
                if decoded else None
            ),
            mean_num_searches=(
                float(np.mean([t.num_searches for t in decoded]))
                if decoded else None
            ),
            decoded_rounds=len(decoded),
        )


def aggregate_traces(
    traces: Iterable[RoundTrace],
) -> Dict[str, SchemeAggregate]:
    """Group traces by scheme label and summarise each group.

    The returned dict preserves first-seen scheme order (insertion
    order), which matches the order schemes were run.
    """
    by_scheme: Dict[str, List[RoundTrace]] = {}
    for trace in traces:
        by_scheme.setdefault(trace.scheme, []).append(trace)
    if not by_scheme:
        raise ObservabilityError("no traces to aggregate")
    return {
        scheme: SchemeAggregate.from_traces(scheme, group)
        for scheme, group in by_scheme.items()
    }
