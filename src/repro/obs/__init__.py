"""repro.obs — round-level observability: metrics, traces, aggregation.

The subsystem has a passive half and an active half:

* :mod:`~repro.obs.registry` — named counters/gauges/streaming
  histograms with a zero-cost no-op default (:data:`NULL_REGISTRY`);
* :mod:`~repro.obs.events` / :mod:`~repro.obs.tracer` — one typed
  :class:`RoundTrace` per simulated round, recorded by the cluster
  simulator and enriched with decode outcomes by trainers/experiments;
* :mod:`~repro.obs.jsonl` — lossless JSONL export/import;
* :mod:`~repro.obs.summary` — per-scheme re-aggregation that exactly
  reproduces live statistics from an exported trace.

Typical use::

    from repro.obs import RoundTracer, aggregate_traces

    tracer = RoundTracer()
    sim = ClusterSimulator(..., tracer=tracer)
    ...
    tracer.export_jsonl("run.jsonl")
    aggregates = aggregate_traces(read_traces("run.jsonl"))
"""

from .aggregate import StepStatistics, moving_average, steps_to_threshold
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    NULL_REGISTRY,
)
from .events import RoundTrace, TRACE_SCHEMA_VERSION
from .tracer import RoundTracer, null_tracer
from .jsonl import (
    TraceStreamWriter,
    read_traces,
    truncate_traces,
    write_traces,
)
from .summary import SchemeAggregate, aggregate_traces

__all__ = [
    "StepStatistics",
    "moving_average",
    "steps_to_threshold",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "RoundTrace",
    "TRACE_SCHEMA_VERSION",
    "RoundTracer",
    "null_tracer",
    "read_traces",
    "truncate_traces",
    "write_traces",
    "TraceStreamWriter",
    "SchemeAggregate",
    "aggregate_traces",
]
