"""Lightweight metrics primitives: counters, gauges, streaming histograms.

The registry is the passive half of the observability layer: code under
measurement asks it for named instruments and records into them; nothing
here ever does I/O.  Two properties matter for use on simulator hot
paths:

* **zero-cost when disabled** — :data:`NULL_REGISTRY` hands out shared
  no-op instruments, so instrumented code can record unconditionally
  without branching on "is observability on?";
* **bounded memory** — :class:`Histogram` keeps at most ``max_samples``
  observations, switching to deterministic reservoir sampling beyond
  that, so quantiles stay available on arbitrarily long runs.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping

import numpy as np

from ..exceptions import ObservabilityError


class Counter:
    """A monotonically increasing count (rounds simulated, decodes run)."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        self._value += amount


class Gauge:
    """A point-in-time value (current clock, live worker count)."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str):
        self.name = name
        self._value = float("nan")

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        """Replace the gauge's current value."""
        self._value = float(value)


class Histogram:
    """Streaming distribution with p50/p95/p99 quantile readout.

    Exact up to ``max_samples`` observations; beyond that a
    deterministic reservoir (seeded per histogram name) keeps a uniform
    sample so memory stays flat while quantiles remain unbiased.
    """

    __slots__ = ("name", "_samples", "_count", "_total", "_max", "_rng")

    def __init__(self, name: str, max_samples: int = 4096):
        if max_samples <= 0:
            raise ObservabilityError(
                f"histogram {name!r} needs max_samples > 0, got {max_samples}"
            )
        self.name = name
        self._samples: list[float] = []
        self._count = 0
        self._total = 0.0
        self._max = max_samples
        # Seed from the name so replayed runs produce identical metrics.
        self._rng = np.random.default_rng(
            np.frombuffer(name.encode()[:32].ljust(8, b"\0"), dtype=np.uint8).sum()
        )

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self._count += 1
        self._total += value
        if len(self._samples) < self._max:
            self._samples.append(value)
        else:
            # Vitter's algorithm R: keep each of the count observations
            # with equal probability max_samples / count.
            slot = int(self._rng.integers(0, self._count))
            if slot < self._max:
                self._samples[slot] = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._total

    @property
    def mean(self) -> float:
        return self._total / self._count if self._count else float("nan")

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (``0 <= q <= 1``) of the retained sample."""
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(f"quantile must be in [0, 1], got {q}")
        if not self._samples:
            return float("nan")
        return float(np.quantile(self._samples, q))

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    def summary(self) -> Dict[str, float]:
        """Mean and headline quantiles as a plain dict."""
        return {
            "count": float(self._count),
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }


class MetricsRegistry:
    """Get-or-create home for named instruments.

    Names are free-form dotted strings (``"round.step_time"``); asking
    twice for the same name returns the same instrument, and asking for
    an existing name as a different instrument kind is an error.
    """

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _check_unique(self, name: str, own: Mapping[str, object]) -> None:
        for kind, table in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if table is not own and name in table:
                raise ObservabilityError(
                    f"metric {name!r} already registered as a {kind}"
                )

    def counter(self, name: str) -> Counter:
        """Get or create the counter registered under ``name``."""
        if name not in self._counters:
            self._check_unique(name, self._counters)
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge registered under ``name``."""
        if name not in self._gauges:
            self._check_unique(name, self._gauges)
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def histogram(self, name: str, max_samples: int = 4096) -> Histogram:
        """Get or create the histogram registered under ``name``."""
        if name not in self._histograms:
            self._check_unique(name, self._histograms)
            self._histograms[name] = Histogram(name, max_samples=max_samples)
        return self._histograms[name]

    # ------------------------------------------------------------------
    @property
    def names(self) -> Iterable[str]:
        return sorted(
            [*self._counters, *self._gauges, *self._histograms]
        )

    def snapshot(self) -> Dict[str, object]:
        """All instruments flattened into one JSON-ready dict."""
        out: Dict[str, object] = {}
        for name, c in self._counters.items():
            out[name] = c.value
        for name, g in self._gauges.items():
            out[name] = g.value
        for name, h in self._histograms.items():
            out[name] = h.summary()
        return out


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


class NullRegistry(MetricsRegistry):
    """The zero-cost default: every instrument is a shared no-op.

    Instrumented code records unconditionally; with this registry the
    records are single dict lookups returning singletons whose methods
    do nothing, so disabled observability stays off the profile.
    """

    def __init__(self):
        super().__init__()
        self._null_counter = _NullCounter("null")
        self._null_gauge = _NullGauge("null")
        self._null_histogram = _NullHistogram("null")

    def counter(self, name: str) -> Counter:
        """The shared no-op counter, whatever the name."""
        return self._null_counter

    def gauge(self, name: str) -> Gauge:
        """The shared no-op gauge, whatever the name."""
        return self._null_gauge

    def histogram(self, name: str, max_samples: int = 4096) -> Histogram:
        """The shared no-op histogram, whatever the name."""
        return self._null_histogram

    def snapshot(self) -> Dict[str, object]:
        """Always empty: nothing is recorded."""
        return {}


#: Shared no-op registry; safe to use from any number of call sites.
NULL_REGISTRY = NullRegistry()
