"""The typed per-round trace event.

One :class:`RoundTrace` captures everything the round-level layers know
about a simulated step: what the cluster simulator saw (arrivals, the
wait-policy decision, wasted compute) plus what the decoding layer adds
once the accepted set is decoded (scheme, search count, recovered
partitions).  All times follow the library-wide convention:

* ``step_start`` / ``step_end`` — **absolute** simulated seconds;
* ``arrivals`` and ``proceed_time`` — **step-relative** seconds
  (seconds since ``step_start``), matching
  :class:`~repro.simulation.policies.WaitOutcome`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional, Tuple

from ..exceptions import ObservabilityError

#: Schema version stamped into every exported record; bump on breaking
#: changes so the loader can reject traces it cannot interpret.
TRACE_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class RoundTrace:
    """One simulated round, fully described.

    Decode-side fields (``decoder_scheme``, ``num_searches``,
    ``num_recovered``, ``num_partitions``) are ``None`` for rounds the
    master never decoded (e.g. pure timing experiments).
    """

    step: int
    scheme: str
    step_start: float
    step_end: float
    #: worker → step-relative arrival time (seconds since step_start).
    arrivals: Mapping[int, float]
    accepted_workers: Tuple[int, ...]
    #: Human-readable wait-policy decision, e.g. ``"wait-for-k(k=12)"``.
    policy: str
    #: Step-relative time at which the master moved on.
    proceed_time: float
    wasted_compute: float = 0.0
    decoder_scheme: Optional[str] = None
    num_searches: Optional[int] = None
    num_recovered: Optional[int] = None
    num_partitions: Optional[int] = None
    extras: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.step < 0:
            raise ObservabilityError(f"step must be >= 0, got {self.step}")
        if self.step_end < self.step_start:
            raise ObservabilityError(
                f"step {self.step}: step_end {self.step_end} precedes "
                f"step_start {self.step_start}"
            )

    # ------------------------------------------------------------------
    @property
    def step_time(self) -> float:
        """Wall-clock (simulated) duration of the round."""
        return self.step_end - self.step_start

    @property
    def num_arrived(self) -> int:
        return len(self.arrivals)

    @property
    def num_accepted(self) -> int:
        return len(self.accepted_workers)

    @property
    def recovery_fraction(self) -> Optional[float]:
        """``|I| / n`` when the round was decoded, else ``None``."""
        if self.num_recovered is None or not self.num_partitions:
            return None
        return self.num_recovered / self.num_partitions

    def with_decode(
        self,
        decoder_scheme: str,
        num_searches: int,
        num_recovered: int,
        num_partitions: int,
    ) -> "RoundTrace":
        """A copy enriched with the decode outcome for this round."""
        if num_partitions <= 0:
            raise ObservabilityError(
                f"num_partitions must be positive, got {num_partitions}"
            )
        if not 0 <= num_recovered <= num_partitions:
            raise ObservabilityError(
                f"num_recovered {num_recovered} outside "
                f"[0, {num_partitions}]"
            )
        return replace(
            self,
            decoder_scheme=decoder_scheme,
            num_searches=num_searches,
            num_recovered=num_recovered,
            num_partitions=num_partitions,
        )

    # ------------------------------------------------------------------
    # Serialisation — round-trips exactly: json floats use repr, which
    # is lossless for binary64, so re-aggregated traces reproduce live
    # statistics bit-for-bit.
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready dict (inverse of :meth:`from_dict`)."""
        return {
            "v": TRACE_SCHEMA_VERSION,
            "step": self.step,
            "scheme": self.scheme,
            "step_start": self.step_start,
            "step_end": self.step_end,
            # JSON object keys are strings; from_dict restores ints.
            "arrivals": {str(w): t for w, t in self.arrivals.items()},
            "accepted_workers": list(self.accepted_workers),
            "policy": self.policy,
            "proceed_time": self.proceed_time,
            "wasted_compute": self.wasted_compute,
            "decoder_scheme": self.decoder_scheme,
            "num_searches": self.num_searches,
            "num_recovered": self.num_recovered,
            "num_partitions": self.num_partitions,
            "extras": dict(self.extras),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RoundTrace":
        version = payload.get("v")
        if version != TRACE_SCHEMA_VERSION:
            raise ObservabilityError(
                f"unsupported trace schema version {version!r} "
                f"(this build reads v{TRACE_SCHEMA_VERSION})"
            )
        try:
            return cls(
                step=int(payload["step"]),
                scheme=str(payload["scheme"]),
                step_start=float(payload["step_start"]),
                step_end=float(payload["step_end"]),
                arrivals={
                    int(w): float(t)
                    for w, t in payload["arrivals"].items()
                },
                accepted_workers=tuple(
                    int(w) for w in payload["accepted_workers"]
                ),
                policy=str(payload["policy"]),
                proceed_time=float(payload["proceed_time"]),
                wasted_compute=float(payload.get("wasted_compute", 0.0)),
                decoder_scheme=payload.get("decoder_scheme"),
                num_searches=payload.get("num_searches"),
                num_recovered=payload.get("num_recovered"),
                num_partitions=payload.get("num_partitions"),
                extras=dict(payload.get("extras", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ObservabilityError(
                f"malformed trace record: {exc}"
            ) from exc
