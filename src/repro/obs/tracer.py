"""The active half of the observability layer: :class:`RoundTracer`.

A tracer is handed to the :class:`~repro.simulation.ClusterSimulator`
(and, transitively, trainers and experiment runners).  The simulator
records the timing half of each round; whoever decodes the round —
trainer, experiment, CLI — enriches the same trace with the decode
outcome.  The tracer also feeds a :class:`~repro.obs.registry.MetricsRegistry`
so headline distributions (step time, recovery, search counts) are
available without touching the raw event stream.

The default everywhere is *no tracer* (``None``), which costs one
``is None`` check per round.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from ..exceptions import ObservabilityError
from .events import RoundTrace
from .registry import MetricsRegistry

# WaitOutcome is only needed for type checking; import lazily to keep
# obs importable without the simulation package (and cycle-free).
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..simulation.policies import WaitOutcome


class RoundTracer:
    """Collects one :class:`RoundTrace` per simulated round.

    Parameters
    ----------
    registry:
        Metrics sink for aggregate distributions; a fresh
        :class:`MetricsRegistry` when omitted.
    scheme:
        Initial context label stamped on recorded rounds; usually set
        (and re-set) via :meth:`set_context` as runs switch schemes.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        scheme: str = "",
    ):
        self._registry = registry if registry is not None else MetricsRegistry()
        self._scheme = scheme
        self._traces: List[RoundTrace] = []
        # Index of the most recent trace per (scheme, step), so decode
        # enrichment is O(1) even on long runs.
        self._latest: Dict[tuple[str, int], int] = {}

    # ------------------------------------------------------------------
    @property
    def registry(self) -> MetricsRegistry:
        return self._registry

    @property
    def scheme(self) -> str:
        return self._scheme

    @property
    def traces(self) -> List[RoundTrace]:
        return list(self._traces)

    def __len__(self) -> int:
        return len(self._traces)

    def set_context(self, scheme: str) -> None:
        """Label subsequently recorded rounds with ``scheme``."""
        self._scheme = scheme

    def clear(self) -> None:
        """Drop all recorded traces (metrics are left untouched)."""
        self._traces = []
        self._latest = {}

    # ------------------------------------------------------------------
    def record_round(
        self,
        step: int,
        arrivals: Mapping[int, float],
        outcome: "WaitOutcome",
        policy: str,
        step_start: float,
        step_end: float,
        wasted_compute: float = 0.0,
    ) -> RoundTrace:
        """Record the simulator-side facts of one round.

        ``arrivals`` and ``outcome.proceed_time`` are step-relative
        seconds (the simulator's convention); ``step_start`` /
        ``step_end`` are absolute.
        """
        trace = RoundTrace(
            step=step,
            scheme=self._scheme,
            step_start=step_start,
            step_end=step_end,
            arrivals=dict(arrivals),
            accepted_workers=tuple(sorted(outcome.accepted_workers)),
            policy=policy,
            proceed_time=outcome.proceed_time,
            wasted_compute=wasted_compute,
        )
        self._latest[(self._scheme, step)] = len(self._traces)
        self._traces.append(trace)

        reg = self._registry
        reg.counter("round.count").inc()
        reg.histogram("round.step_time").observe(trace.step_time)
        reg.histogram("round.accepted").observe(trace.num_accepted)
        reg.histogram("round.wasted_compute").observe(wasted_compute)
        reg.gauge("round.clock").set(step_end)
        return trace

    def record_decode(
        self,
        step: int,
        decoder_scheme: str,
        num_searches: int,
        num_recovered: int,
        num_partitions: int,
    ) -> RoundTrace:
        """Attach the decode outcome to the round recorded for ``step``
        under the current scheme context."""
        key = (self._scheme, step)
        idx = self._latest.get(key)
        if idx is None:
            raise ObservabilityError(
                f"no recorded round for scheme={self._scheme!r} "
                f"step={step}; record_round must precede record_decode"
            )
        enriched = self._traces[idx].with_decode(
            decoder_scheme=decoder_scheme,
            num_searches=num_searches,
            num_recovered=num_recovered,
            num_partitions=num_partitions,
        )
        self._traces[idx] = enriched

        reg = self._registry
        reg.counter("decode.count").inc()
        reg.histogram("decode.num_searches").observe(num_searches)
        reg.histogram("decode.recovery_fraction").observe(
            num_recovered / num_partitions
        )
        return enriched

    # ------------------------------------------------------------------
    def export_jsonl(self, path) -> int:
        """Write all recorded traces to ``path`` (one JSON per line).

        Returns the number of records written.  Convenience wrapper
        around :func:`repro.obs.jsonl.write_traces`.
        """
        from .jsonl import write_traces

        return write_traces(path, self._traces)


def null_tracer() -> Optional[RoundTracer]:
    """The disabled-tracing sentinel; spelled out for readability.

    Instrumented call sites take ``tracer: RoundTracer | None`` and skip
    all recording when it is ``None`` — the zero-cost default.
    """
    return None
