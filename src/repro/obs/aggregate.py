"""Record-level aggregation helpers.

Folded in from the pre-observability ``repro.simulation.metrics``
module (which now re-exports these names for compatibility).  The
summary statistics are computed through :class:`MetricsRegistry`
instruments so they share one implementation with live-run metrics:
``StepStatistics.from_records`` is exactly a histogram of the per-step
clock increments plus two means, and reading it back through the
registry keeps the numbers identical to what a tracer-instrumented run
would report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..types import StepRecord
from .registry import MetricsRegistry


@dataclass(frozen=True)
class StepStatistics:
    """Summary statistics over a sequence of step records."""

    count: int
    mean_step_time: float
    p50_step_time: float
    p95_step_time: float
    mean_recovery_fraction: float
    mean_available: float
    total_time: float

    @classmethod
    def from_records(cls, records: Sequence[StepRecord]) -> "StepStatistics":
        """Aggregate ``records`` (per-step clock increments) exactly.

        Implemented over a private :class:`MetricsRegistry` sized to the
        record count, so every observation is retained and the quantiles
        are exact (no reservoir sampling).
        """
        if not records:
            raise ValueError("no step records to summarise")
        registry = MetricsRegistry()
        # Step times are the per-step increments of the simulated clock.
        times = registry.histogram("step_time", max_samples=len(records))
        recovery = registry.histogram("recovery", max_samples=len(records))
        available = registry.histogram("available", max_samples=len(records))
        for r in records:
            times.observe(r.wait_time)
            recovery.observe(r.recovery_fraction)
            available.observe(r.num_available)
        return cls(
            count=times.count,
            mean_step_time=float(times.mean),
            p50_step_time=times.p50,
            p95_step_time=times.p95,
            mean_recovery_fraction=float(recovery.mean),
            mean_available=float(available.mean),
            total_time=float(times.total),
        )


def steps_to_threshold(
    losses: Iterable[float], threshold: float
) -> int | None:
    """First 1-based step index whose loss is ≤ ``threshold``; ``None``
    when the run never got there."""
    for idx, loss in enumerate(losses, start=1):
        if loss <= threshold:
            return idx
    return None


def moving_average(values: Sequence[float], window: int) -> np.ndarray:
    """Simple trailing moving average (shorter windows at the start)."""
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    arr = np.asarray(values, dtype=float)
    out = np.empty_like(arr)
    csum = np.cumsum(arr)
    for i in range(len(arr)):
        lo = max(0, i - window + 1)
        total = csum[i] - (csum[lo - 1] if lo > 0 else 0.0)
        out[i] = total / (i - lo + 1)
    return out
