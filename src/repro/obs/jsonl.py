"""JSONL persistence for round traces.

One JSON object per line, each a :meth:`RoundTrace.to_dict` payload
carrying its own schema version.  Python's ``json`` serialises floats
via ``repr``, which round-trips binary64 exactly — so statistics
computed from a loaded trace match the live run bit-for-bit.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Union

from ..exceptions import ObservabilityError
from .events import RoundTrace

PathLike = Union[str, Path]


def write_traces(path: PathLike, traces: Iterable[RoundTrace]) -> int:
    """Write ``traces`` to ``path`` as JSONL; returns the record count."""
    path = Path(path)
    count = 0
    try:
        with path.open("w", encoding="utf-8") as fh:
            for trace in traces:
                fh.write(json.dumps(trace.to_dict(), separators=(",", ":")))
                fh.write("\n")
                count += 1
    except OSError as exc:
        raise ObservabilityError(f"cannot write trace file: {exc}") from exc
    return count


def read_traces(path: PathLike) -> List[RoundTrace]:
    """Load every trace from a JSONL file written by :func:`write_traces`.

    Blank lines are skipped; malformed lines raise
    :class:`~repro.exceptions.ObservabilityError` with the line number.
    """
    path = Path(path)
    if not path.exists():
        raise ObservabilityError(f"trace file not found: {path}")
    traces: List[RoundTrace] = []
    try:
        fh = path.open("r", encoding="utf-8")
    except OSError as exc:
        raise ObservabilityError(f"cannot read trace file: {exc}") from exc
    with fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ObservabilityError(
                    f"{path}:{lineno}: invalid JSON: {exc}"
                ) from exc
            try:
                traces.append(RoundTrace.from_dict(payload))
            except ObservabilityError as exc:
                raise ObservabilityError(f"{path}:{lineno}: {exc}") from exc
    return traces
