"""JSONL persistence for round traces.

One JSON object per line, each a :meth:`RoundTrace.to_dict` payload
carrying its own schema version.  Python's ``json`` serialises floats
via ``repr``, which round-trips binary64 exactly — so statistics
computed from a loaded trace match the live run bit-for-bit.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Union

from ..exceptions import ObservabilityError
from .events import RoundTrace

PathLike = Union[str, Path]


def write_traces(path: PathLike, traces: Iterable[RoundTrace]) -> int:
    """Write ``traces`` to ``path`` as JSONL; returns the record count."""
    path = Path(path)
    count = 0
    try:
        with path.open("w", encoding="utf-8") as fh:
            for trace in traces:
                fh.write(json.dumps(trace.to_dict(), separators=(",", ":")))
                fh.write("\n")
                count += 1
    except OSError as exc:
        raise ObservabilityError(f"cannot write trace file: {exc}") from exc
    return count


class TraceStreamWriter:
    """Append round traces to a JSONL file as they happen.

    :func:`write_traces` is a batch writer — nothing is on disk until
    the run ends.  A stream writer keeps the file live instead: every
    :meth:`append` writes one line and flushes, so an external reader
    (``repro jobs``, ``repro trace summarize``, ``tail -f``) sees each
    round the moment it completes.  The on-disk format is identical to
    :func:`write_traces`, hence losslessly re-aggregatable with
    :func:`read_traces` + :func:`~repro.obs.aggregate_traces` at any
    point mid-run.

    Usable as a context manager; :meth:`close` is idempotent.

    ``append=True`` resumes an existing stream instead of truncating
    it — the checkpoint-restore path: the caller first trims the file
    to the restored round count (:func:`truncate_traces`) and then
    keeps streaming, so a resumed job's trace is indistinguishable
    from an uninterrupted one.
    """

    def __init__(self, path: PathLike, append: bool = False):
        self._path = Path(path)
        try:
            self._fh = self._path.open(
                "a" if append else "w", encoding="utf-8"
            )
        except OSError as exc:
            raise ObservabilityError(
                f"cannot open trace stream: {exc}"
            ) from exc
        self._count = 0

    @property
    def path(self) -> Path:
        return self._path

    @property
    def count(self) -> int:
        """Number of traces written so far."""
        return self._count

    def append(self, trace: RoundTrace) -> None:
        """Write one trace as a JSONL line and flush it to disk."""
        if self._fh is None:
            raise ObservabilityError(
                f"trace stream {self._path} is closed"
            )
        try:
            self._fh.write(
                json.dumps(trace.to_dict(), separators=(",", ":"))
            )
            self._fh.write("\n")
            self._fh.flush()
        except OSError as exc:
            raise ObservabilityError(
                f"cannot write trace stream: {exc}"
            ) from exc
        self._count += 1

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "TraceStreamWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def truncate_traces(path: PathLike, count: int) -> int:
    """Trim a JSONL trace file to its first ``count`` lines.

    The checkpoint-restore primitive: a job resumed from round ``k``
    rewinds its trace stream to exactly ``k`` lines (dropping any
    rounds streamed after the snapshot was taken — e.g. by a
    coordinator killed between checkpoint and crash) before appending.
    A missing file with ``count == 0`` is fine (nothing streamed yet).
    Returns the number of lines kept.
    """
    if count < 0:
        raise ObservabilityError(
            f"cannot keep a negative trace count ({count})"
        )
    path = Path(path)
    if not path.exists():
        if count == 0:
            return 0
        raise ObservabilityError(f"trace file not found: {path}")
    try:
        lines = path.read_text(encoding="utf-8").splitlines(keepends=True)
    except OSError as exc:
        raise ObservabilityError(f"cannot read trace file: {exc}") from exc
    if len(lines) < count:
        raise ObservabilityError(
            f"trace file {path} holds {len(lines)} lines; cannot keep "
            f"{count}"
        )
    if len(lines) > count:
        try:
            path.write_text("".join(lines[:count]), encoding="utf-8")
        except OSError as exc:
            raise ObservabilityError(
                f"cannot rewrite trace file: {exc}"
            ) from exc
    return count


def read_traces(path: PathLike) -> List[RoundTrace]:
    """Load every trace from a JSONL file written by :func:`write_traces`.

    Blank lines are skipped; malformed lines raise
    :class:`~repro.exceptions.ObservabilityError` with the line number.
    """
    path = Path(path)
    if not path.exists():
        raise ObservabilityError(f"trace file not found: {path}")
    traces: List[RoundTrace] = []
    try:
        fh = path.open("r", encoding="utf-8")
    except OSError as exc:
        raise ObservabilityError(f"cannot read trace file: {exc}") from exc
    with fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ObservabilityError(
                    f"{path}:{lineno}: invalid JSON: {exc}"
                ) from exc
            try:
                traces.append(RoundTrace.from_dict(payload))
            except ObservabilityError as exc:
                raise ObservabilityError(f"{path}:{lineno}: {exc}") from exc
    return traces
