"""Shared value types used across the library.

These are deliberately plain frozen dataclasses: they cross module
boundaries (core → simulation → training → analysis) and serve as the
stable contract between the decoding layer and everything built on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Mapping, Tuple


@dataclass(frozen=True)
class DecodeResult:
    """Outcome of one decoding round at the master.

    Attributes
    ----------
    selected_workers:
        The pairwise non-conflicting workers whose coded gradients are
        added up (an independent set of the conflict graph ``G[W']``).
    recovered_partitions:
        The set ``I`` of dataset-partition indices whose gradients appear
        in ``ĝ = Σ_{i∈I} g_i``.  Always the disjoint union of the
        selected workers' partition sets.
    available_workers:
        The workers ``W'`` the master heard from this round.
    num_searches:
        How many greedy searches (start vertices) the decoder performed;
        useful for validating the O(|W'|) complexity claims.
    """

    selected_workers: FrozenSet[int]
    recovered_partitions: FrozenSet[int]
    available_workers: FrozenSet[int]
    num_searches: int = 1

    @property
    def num_recovered(self) -> int:
        """``|I|`` — the number of recovered partitions."""
        return len(self.recovered_partitions)

    @property
    def recovery_fraction(self) -> float:
        """``|I| / n`` is not computable without ``n``; callers divide."""
        raise AttributeError(
            "recovery_fraction needs the total partition count; "
            "use result.num_recovered / placement.num_partitions"
        )


@dataclass(frozen=True)
class StepRecord:
    """Metrics for a single simulated training step."""

    step: int
    sim_time: float
    wait_time: float
    num_available: int
    num_recovered: int
    recovery_fraction: float
    loss: float
    grad_norm: float = 0.0
    extras: Mapping[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class AsyncUpdateRecord:
    """One asynchronous master update."""

    update_index: int
    sim_time: float
    worker: int
    staleness: int
    loss: float


@dataclass(frozen=True)
class AsyncSummary:
    """Aggregate outcome of an asynchronous run."""

    num_updates: int
    total_sim_time: float
    final_loss: float
    mean_staleness: float
    max_staleness: int
    loss_curve: tuple

    def describe(self) -> str:
        """One-line human-readable summary of the run."""
        return (
            f"async-sgd: {self.num_updates} updates, "
            f"{self.total_sim_time:.2f}s simulated; mean staleness "
            f"{self.mean_staleness:.2f} (max {self.max_staleness}), "
            f"final loss {self.final_loss:.4f}"
        )


@dataclass(frozen=True)
class TrainingSummary:
    """Aggregate outcome of a simulated training run."""

    scheme: str
    num_steps: int
    total_sim_time: float
    final_loss: float
    reached_threshold: bool
    avg_step_time: float
    avg_recovery_fraction: float
    loss_curve: Tuple[float, ...]
    time_curve: Tuple[float, ...]

    def describe(self) -> str:
        """One-line human-readable summary used by example scripts."""
        status = "converged" if self.reached_threshold else "budget exhausted"
        return (
            f"{self.scheme}: {self.num_steps} steps, "
            f"{self.total_sim_time:.2f}s simulated ({status}); "
            f"avg step {self.avg_step_time:.3f}s, "
            f"avg recovery {100 * self.avg_recovery_fraction:.1f}%, "
            f"final loss {self.final_loss:.4f}"
        )
