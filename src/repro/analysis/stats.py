"""Multi-trial statistics for experiment reporting.

The paper averages 10 cloud trials per point (Sec. VIII-C).  This
module provides the aggregation the harnesses use when trial counts
matter: means with confidence intervals (Student-t via scipy when
available, normal approximation otherwise) and paired scheme
comparisons (the right test when every scheme replays the same delay
traces).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..exceptions import ConfigurationError

try:  # scipy is a dev dependency; fall back gracefully without it.
    from scipy import stats as _scipy_stats
except ImportError:  # pragma: no cover - exercised only without scipy
    _scipy_stats = None


@dataclass(frozen=True)
class TrialSummary:
    """Mean ± confidence interval over independent trials."""

    count: int
    mean: float
    std: float
    ci_low: float
    ci_high: float
    confidence: float

    def format(self, digits: int = 3) -> str:
        """Render as ``mean ± half-width``."""
        half = (self.ci_high - self.ci_low) / 2
        return f"{self.mean:.{digits}g} ± {half:.{digits}g}"


def _t_critical(df: int, confidence: float) -> float:
    if _scipy_stats is not None:
        return float(_scipy_stats.t.ppf(0.5 + confidence / 2, df))
    # Normal approximation is adequate for df ≥ 30; below that it
    # understates the interval slightly — documented fallback.
    z_table = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}
    return z_table.get(round(confidence, 2), 1.9600)


def summarize_trials(
    values: Sequence[float], confidence: float = 0.95
) -> TrialSummary:
    """Mean and Student-t confidence interval of trial outcomes."""
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(
            f"confidence must be in (0, 1), got {confidence}"
        )
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ConfigurationError("no trial values to summarise")
    mean = float(arr.mean())
    if arr.size == 1:
        return TrialSummary(1, mean, 0.0, mean, mean, confidence)
    std = float(arr.std(ddof=1))
    half = _t_critical(arr.size - 1, confidence) * std / math.sqrt(arr.size)
    return TrialSummary(
        count=arr.size,
        mean=mean,
        std=std,
        ci_low=mean - half,
        ci_high=mean + half,
        confidence=confidence,
    )


@dataclass(frozen=True)
class PairedComparison:
    """Paired-trial comparison of two schemes on shared traces."""

    mean_difference: float  # mean(b − a): positive means b is larger
    ci_low: float
    ci_high: float
    p_value: float | None  # None without scipy

    @property
    def significant(self) -> bool:
        """CI excludes zero (two-sided, at the chosen confidence)."""
        return self.ci_low > 0 or self.ci_high < 0


def paired_comparison(
    scheme_a: Sequence[float],
    scheme_b: Sequence[float],
    confidence: float = 0.95,
) -> PairedComparison:
    """Paired difference ``b − a`` per trial, with CI and t-test.

    Pairing removes trace-to-trace variance, which dominates straggler
    experiments — the reason every harness replays shared traces.
    """
    a = np.asarray(list(scheme_a), dtype=float)
    b = np.asarray(list(scheme_b), dtype=float)
    if a.size != b.size:
        raise ConfigurationError(
            "paired comparison needs equal trial counts, "
            f"got {a.size} and {b.size}"
        )
    if a.size < 2:
        raise ConfigurationError("need at least 2 paired trials")
    diff = b - a
    summary = summarize_trials(diff.tolist(), confidence)
    p_value = None
    if _scipy_stats is not None:
        if np.allclose(diff, diff[0]):
            p_value = 0.0 if diff[0] != 0 else 1.0
        else:
            p_value = float(_scipy_stats.ttest_rel(b, a).pvalue)
    return PairedComparison(
        mean_difference=summary.mean,
        ci_low=summary.ci_low,
        ci_high=summary.ci_high,
        p_value=p_value,
    )


def bootstrap_ci(
    values: Sequence[float],
    statistic=np.mean,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile-bootstrap CI for an arbitrary statistic.

    Used for quantities with awkward distributions (p95 step time,
    steps-to-threshold) where normality is a bad fit.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ConfigurationError("no values to bootstrap")
    if resamples <= 0:
        raise ConfigurationError(f"resamples must be positive, got {resamples}")
    rng = np.random.default_rng(seed)
    stats = np.array([
        statistic(arr[rng.integers(arr.size, size=arr.size)])
        for _ in range(resamples)
    ])
    alpha = (1.0 - confidence) / 2
    return (
        float(np.quantile(stats, alpha)),
        float(np.quantile(stats, 1.0 - alpha)),
    )
