"""Monte-Carlo recovery statistics (Figs. 12a, 13a).

Given a placement and its decoder, these helpers measure how many
gradients the master recovers as a function of the number of available
workers ``w``, plus the fairness diagnostics the paper's Assumption 2
relies on (every partition equally likely to appear in ``ĝ``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..core.batch import BatchDecodeResult
from ..core.decoders import Decoder, decoder_for
from ..core.placement import Placement
from ..exceptions import ConfigurationError


@dataclass(frozen=True)
class RecoveryStats:
    """Recovery distribution for one (placement, w) point."""

    num_workers: int
    wait_for: int
    trials: int
    mean_recovered: float
    min_recovered: int
    max_recovered: int
    mean_fraction: float
    partition_frequency: np.ndarray  # P(partition ∈ I), shape (n,)

    def describe(self) -> str:
        """One-line human-readable summary of the stats."""
        return (
            f"w={self.wait_for}: recovered {self.mean_recovered:.2f}/"
            f"{self.num_workers} partitions on average "
            f"({100 * self.mean_fraction:.1f}%), "
            f"range [{self.min_recovered}, {self.max_recovered}]"
        )


def _stack_results(masks, results, num_partitions) -> BatchDecodeResult:
    """Looped decode results as the batch's column-oriented arrays."""
    trials = masks.shape[0]
    selected = np.zeros_like(masks)
    recovered = np.zeros((trials, num_partitions), dtype=bool)
    searches = np.empty(trials, dtype=np.intp)
    for t, res in enumerate(results):
        selected[t, list(res.selected_workers)] = True
        recovered[t, list(res.recovered_partitions)] = True
        searches[t] = res.num_searches
    return BatchDecodeResult(
        available=masks,
        selected=selected,
        recovered=recovered,
        num_searches=searches,
    )


def monte_carlo_recovery(
    placement: Placement,
    wait_for: int,
    trials: int = 2000,
    seed: int = 0,
    decoder: Decoder | None = None,
) -> RecoveryStats:
    """Sample uniformly random available sets of size ``w`` and decode.

    Models homogeneous i.i.d. stragglers: each step the ``w`` fastest
    workers are a uniform random subset.
    """
    n = placement.num_workers
    if not 1 <= wait_for <= n:
        raise ConfigurationError(f"need 1 <= w <= n, got w={wait_for}, n={n}")
    if trials <= 0:
        raise ConfigurationError(f"trials must be positive, got {trials}")
    rng = np.random.default_rng(seed)
    masks = np.zeros((trials, n), dtype=bool)
    if decoder is not None:
        # The decoder owns its generator, so every mask can be drawn up
        # front (identical ``choice`` stream) and the whole batch
        # decoded through the vectorized kernels — the decoder's
        # fairness draws land in trial order either way.
        for t in range(trials):
            masks[t, rng.choice(n, size=wait_for, replace=False)] = True
        batch = decoder.decode_batch(masks)
    else:
        # Default decoder shares ``rng`` with the mask draws; the
        # historical stream interleaves choice/decode per trial, so
        # batching the masks would reorder it and change recorded
        # results (golden-pinned).  Keep the interleaved loop here.
        dec = decoder_for(placement, rng=rng)
        results = []
        for t in range(trials):
            available = rng.choice(n, size=wait_for, replace=False)
            masks[t, available] = True
            results.append(dec.decode(available.tolist()))
        batch = _stack_results(masks, results, placement.num_partitions)
    arr = batch.num_recovered
    freq = batch.recovered.sum(axis=0).astype(float)
    return RecoveryStats(
        num_workers=n,
        wait_for=wait_for,
        trials=trials,
        mean_recovered=float(arr.mean()),
        min_recovered=int(arr.min()),
        max_recovered=int(arr.max()),
        mean_fraction=float(arr.mean() / n),
        partition_frequency=freq / trials,
    )


def recovery_curve(
    placement: Placement,
    trials: int = 2000,
    seed: int = 0,
) -> Dict[int, RecoveryStats]:
    """Recovery stats for every ``w`` in ``1..n`` (a Fig. 12(a) series)."""
    return {
        w: monte_carlo_recovery(placement, w, trials=trials, seed=seed + w)
        for w in range(1, placement.num_workers + 1)
    }


def fairness_gap(stats: RecoveryStats) -> float:
    """Max deviation of per-partition inclusion probability from uniform.

    Under Assumption 2 every partition appears in ``I`` with equal
    probability; this returns ``max_p |P(p ∈ I) − mean|``, which should
    shrink as ``1/√trials``.
    """
    freq = stats.partition_frequency
    return float(np.abs(freq - freq.mean()).max())
