"""Monte-Carlo recovery statistics (Figs. 12a, 13a).

Given a placement and its decoder, these helpers measure how many
gradients the master recovers as a function of the number of available
workers ``w``, plus the fairness diagnostics the paper's Assumption 2
relies on (every partition equally likely to appear in ``ĝ``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..core.decoders import Decoder, decoder_for
from ..core.placement import Placement
from ..exceptions import ConfigurationError


@dataclass(frozen=True)
class RecoveryStats:
    """Recovery distribution for one (placement, w) point."""

    num_workers: int
    wait_for: int
    trials: int
    mean_recovered: float
    min_recovered: int
    max_recovered: int
    mean_fraction: float
    partition_frequency: np.ndarray  # P(partition ∈ I), shape (n,)

    def describe(self) -> str:
        """One-line human-readable summary of the stats."""
        return (
            f"w={self.wait_for}: recovered {self.mean_recovered:.2f}/"
            f"{self.num_workers} partitions on average "
            f"({100 * self.mean_fraction:.1f}%), "
            f"range [{self.min_recovered}, {self.max_recovered}]"
        )


def monte_carlo_recovery(
    placement: Placement,
    wait_for: int,
    trials: int = 2000,
    seed: int = 0,
    decoder: Decoder | None = None,
) -> RecoveryStats:
    """Sample uniformly random available sets of size ``w`` and decode.

    Models homogeneous i.i.d. stragglers: each step the ``w`` fastest
    workers are a uniform random subset.
    """
    n = placement.num_workers
    if not 1 <= wait_for <= n:
        raise ConfigurationError(f"need 1 <= w <= n, got w={wait_for}, n={n}")
    if trials <= 0:
        raise ConfigurationError(f"trials must be positive, got {trials}")
    rng = np.random.default_rng(seed)
    dec = decoder if decoder is not None else decoder_for(placement, rng=rng)

    counts: List[int] = []
    freq = np.zeros(n)
    for _ in range(trials):
        available = rng.choice(n, size=wait_for, replace=False)
        result = dec.decode(available.tolist())
        counts.append(result.num_recovered)
        for p in result.recovered_partitions:
            freq[p] += 1
    arr = np.asarray(counts)
    return RecoveryStats(
        num_workers=n,
        wait_for=wait_for,
        trials=trials,
        mean_recovered=float(arr.mean()),
        min_recovered=int(arr.min()),
        max_recovered=int(arr.max()),
        mean_fraction=float(arr.mean() / n),
        partition_frequency=freq / trials,
    )


def recovery_curve(
    placement: Placement,
    trials: int = 2000,
    seed: int = 0,
) -> Dict[int, RecoveryStats]:
    """Recovery stats for every ``w`` in ``1..n`` (a Fig. 12(a) series)."""
    return {
        w: monte_carlo_recovery(placement, w, trials=trials, seed=seed + w)
        for w in range(1, placement.num_workers + 1)
    }


def fairness_gap(stats: RecoveryStats) -> float:
    """Max deviation of per-partition inclusion probability from uniform.

    Under Assumption 2 every partition appears in ``I`` with equal
    probability; this returns ``max_p |P(p ∈ I) − mean|``, which should
    shrink as ``1/√trials``.
    """
    freq = stats.partition_frequency
    return float(np.abs(freq - freq.mean()).max())
