"""Empirical verification of the paper's theory (Sec. VII).

These helpers exhaustively or statistically check the theorems against
constructed instances; the test suite calls them, and the ablation
benches report them as tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterator, Tuple

import numpy as np

from ..core.bounds import alpha_lower_bound, alpha_upper_bound
from ..core.conflict import conflict_graph
from ..core.placement import Placement
from ..exceptions import ConfigurationError
from ..graphs.independent_set import independence_number


@dataclass(frozen=True)
class BoundCheck:
    """Result of checking Theorems 10/11 on one available set."""

    available: Tuple[int, ...]
    alpha: int
    lower: int
    upper: int

    @property
    def holds(self) -> bool:
        return self.lower <= self.alpha <= self.upper


def check_bounds_exhaustive(
    placement: Placement, w: int
) -> Iterator[BoundCheck]:
    """Theorems 10/11 for *every* size-``w`` available set (small ``n``)."""
    n = placement.num_workers
    c = placement.partitions_per_worker
    if not 1 <= w <= n:
        raise ConfigurationError(f"need 1 <= w <= n, got w={w}, n={n}")
    graph = conflict_graph(placement)
    lo = alpha_lower_bound(n, c, w)
    hi = alpha_upper_bound(n, c, w)
    for subset in combinations(range(n), w):
        alpha = independence_number(graph.subgraph(subset))
        yield BoundCheck(available=subset, alpha=alpha, lower=lo, upper=hi)


def check_bounds_sampled(
    placement: Placement, w: int, trials: int, seed: int = 0
) -> Iterator[BoundCheck]:
    """Theorems 10/11 on random size-``w`` available sets (large ``n``)."""
    n = placement.num_workers
    c = placement.partitions_per_worker
    if not 1 <= w <= n:
        raise ConfigurationError(f"need 1 <= w <= n, got w={w}, n={n}")
    rng = np.random.default_rng(seed)
    graph = conflict_graph(placement)
    lo = alpha_lower_bound(n, c, w)
    hi = alpha_upper_bound(n, c, w)
    for _ in range(trials):
        subset = tuple(sorted(rng.choice(n, size=w, replace=False).tolist()))
        alpha = independence_number(graph.subgraph(subset))
        yield BoundCheck(available=subset, alpha=alpha, lower=lo, upper=hi)


def worst_case_alpha(placement: Placement, w: int) -> int:
    """``min_{|W'|=w} α(G[W'])`` by exhaustive search (small ``n``).

    Should equal Theorem 10's bound for FR and CR (the bound is tight:
    pack the available workers into as few groups / as tight an arc as
    possible).
    """
    return min(check.alpha for check in check_bounds_exhaustive(placement, w))


def best_case_alpha(placement: Placement, w: int) -> int:
    """``max_{|W'|=w} α(G[W'])`` by exhaustive search (small ``n``)."""
    return max(check.alpha for check in check_bounds_exhaustive(placement, w))


def expected_alpha(
    placement: Placement, w: int, trials: int = 2000, seed: int = 0
) -> float:
    """Monte-Carlo estimate of ``E[α(G[W'])]`` under uniform ``W'``."""
    checks = check_bounds_sampled(placement, w, trials, seed)
    return float(np.mean([c.alpha for c in checks]))
