"""Empirical validation of the Theorem 12 convergence bound.

Theorem 12 bounds each step's expected loss decrease in terms of the
Lipschitz constant ``L`` of the gradient, the second-moment bound
``σ²``, and the decoded sample count.  This module estimates those
constants empirically for a given model/dataset and checks the bound
against an actual training run — the theory/practice bridge the paper
sketches but does not plot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from typing import TYPE_CHECKING

from ..core.bounds import DescentBound
from ..exceptions import ConfigurationError

if TYPE_CHECKING:  # imported for annotations only — avoids a circular
    # import (training → core.advisor → analysis → this module).
    from ..training.datasets import Dataset
    from ..training.models import Model


def estimate_lipschitz(
    model: "Model",
    dataset: "Dataset",
    probes: int = 40,
    radius: float = 0.5,
    seed: int = 0,
) -> float:
    """Empirical ``L``: max ratio ``‖∇f(β₁) − ∇f(β₂)‖ / ‖β₁ − β₂‖``
    over random parameter pairs near the current iterate.

    A lower bound on the true constant (sampling can only miss the
    max), which is the right direction for *testing* the bound — see
    tests for how it is inflated before use.
    """
    if probes <= 0 or radius <= 0:
        raise ConfigurationError(
            f"need probes > 0 and radius > 0, got {probes}, {radius}"
        )
    rng = np.random.default_rng(seed)
    base = model.get_parameters()
    best = 0.0
    for _ in range(probes):
        p1 = base + radius * rng.normal(size=base.size)
        p2 = base + radius * rng.normal(size=base.size)
        model.set_parameters(p1)
        g1 = model.gradient(dataset.features, dataset.labels)
        model.set_parameters(p2)
        g2 = model.gradient(dataset.features, dataset.labels)
        denom = float(np.linalg.norm(p1 - p2))
        if denom > 1e-12:
            best = max(best, float(np.linalg.norm(g1 - g2)) / denom)
    model.set_parameters(base)
    return best


def estimate_sigma_squared(
    model: "Model",
    dataset: "Dataset",
    batch_size: int,
    probes: int = 60,
    seed: int = 0,
) -> float:
    """Empirical ``σ²``: max over sampled mini-batches of ``‖g_B‖²``
    at the current parameters (Assumption 3's second-moment bound)."""
    if probes <= 0 or batch_size <= 0:
        raise ConfigurationError(
            f"need probes > 0 and batch_size > 0, got {probes}, {batch_size}"
        )
    rng = np.random.default_rng(seed)
    worst = 0.0
    for _ in range(probes):
        idx = rng.integers(dataset.num_samples, size=batch_size)
        grad = model.gradient(dataset.features[idx], dataset.labels[idx])
        worst = max(worst, float(np.dot(grad, grad)))
    return worst


@dataclass(frozen=True)
class BoundValidation:
    """Outcome of checking Theorem 12 along a training trajectory."""

    steps_checked: int
    violations: int
    mean_slack: float

    @property
    def holds(self) -> bool:
        return self.violations == 0


def validate_descent_bound(
    losses: Sequence[float],
    grad_norms: Sequence[float],
    decoded_samples: Sequence[float],
    bound: DescentBound,
    learning_rate: float,
) -> BoundValidation:
    """Check ``loss[t+1] ≤`` Theorem 12's bound for every recorded step.

    ``decoded_samples`` is ``|D_d^{(t)}|`` normalised the same way the
    update was (here: the mean-gradient convention, i.e. 1.0).  The
    check uses realised losses as a proxy for expectations, so rare
    single-step violations are possible under heavy batch noise;
    aggregate behaviour is what the test asserts.
    """
    if not (len(losses) == len(grad_norms) + 1 == len(decoded_samples) + 1):
        raise ConfigurationError(
            "need len(losses) == len(grad_norms)+1 == len(decoded_samples)+1"
        )
    violations = 0
    slacks = []
    for t, (g, d) in enumerate(zip(grad_norms, decoded_samples)):
        predicted = bound.expected_decrease(
            loss=losses[t],
            grad_norm_squared=g * g,
            learning_rate=learning_rate,
            decoded_samples=d,
        )
        slack = predicted - losses[t + 1]
        slacks.append(slack)
        if slack < 0:
            violations += 1
    return BoundValidation(
        steps_checked=len(slacks),
        violations=violations,
        mean_slack=float(np.mean(slacks)) if slacks else 0.0,
    )
