"""Variance of the unbiased gradient estimator.

The paper's convergence story (Sec. VII-B, Assumption 3) runs through
the second moment of the decoded gradient: recovering more partitions
per step means averaging more terms, hence lower estimator variance,
hence faster convergence at the same learning rate — the mechanism
behind Fig. 12(b) and Fig. 13(b).

This module computes that variance *exactly* for a placement and a set
of per-partition gradients: over uniform size-``w`` availability, the
unbiased estimate is ``(n/|I|)·Σ_{p∈I} g_p`` with ``I`` the decoded
recovery set, and we enumerate (or sample) the availability subsets to
get ``E[ĝ]`` and ``tr Cov(ĝ)`` directly.  It quantifies, in one number
per ``(placement, w)``, how much IS-GC's extra recovery buys over
IS-SGD.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb
from typing import List, Mapping

import numpy as np

from ..core.batch import enumerate_masks, partition_matrix
from ..core.conflict import conflict_graph
from ..core.decoders import decoder_for
from ..core.placement import Placement
from ..exceptions import ConfigurationError
from ..graphs.independent_set import all_maximum_independent_sets


@dataclass(frozen=True)
class EstimatorMoments:
    """First and second moments of the unbiased decoded gradient."""

    mean: np.ndarray
    total_variance: float  # tr Cov(ĝ)
    bias_norm: float  # ‖E[ĝ] − Σ_p g_p‖

    @property
    def is_unbiased(self) -> bool:
        return self.bias_norm < 1e-8


def estimator_moments(
    placement: Placement,
    wait_for: int,
    partition_gradients: Mapping[int, np.ndarray],
    exact_limit: int = 50_000,
    trials: int = 4000,
    seed: int = 0,
) -> EstimatorMoments:
    """Moments of ``ĝ = (n/|I|)·Σ_{p∈I} g_p`` under uniform ``W'``.

    Exact path (``C(n, w)`` affordable): enumerate every availability
    subset *and* every maximum independent set of its induced conflict
    graph, weighting MIS choices uniformly — the fair-decoder model, in
    which the estimator is exactly unbiased for the symmetric FR/CR/HR
    placements (per-partition coefficients are equal by symmetry and
    sum to ``n``).  Monte-Carlo path otherwise, using the scheme
    decoder's own randomized tie-breaking.
    """
    n = placement.num_workers
    if not 1 <= wait_for <= n:
        raise ConfigurationError(f"invalid w = {wait_for} for n = {n}")
    missing = [p for p in range(n) if p not in partition_gradients]
    if missing:
        raise ConfigurationError(f"missing gradients for partitions {missing}")
    grads = {p: np.asarray(g, dtype=float) for p, g in partition_gradients.items()}
    # (num_partitions, d) stack so recovery indicators turn gradient
    # sums into one matrix product.
    grad_mat = np.stack([grads[p] for p in range(n)])
    full = grad_mat.sum(axis=0)
    rng = np.random.default_rng(seed)
    pmat = partition_matrix(placement)

    if comb(n, wait_for) <= exact_limit:
        # Exact path, in the batch representation: every size-w mask as
        # one row of a boolean array (combinations order — the same
        # enumeration the closed-form cross-checks use), every maximum
        # independent set of each induced subgraph as one selection
        # row, weighted uniformly within its mask.
        masks = enumerate_masks(n, wait_for)
        graph = conflict_graph(placement)
        num_subsets = masks.shape[0]
        sel_rows: List[np.ndarray] = []
        weights_list: List[float] = []
        for row in masks:
            subset = frozenset(np.flatnonzero(row).tolist())
            optima = all_maximum_independent_sets(graph.subgraph(subset))
            for mis in optima:
                indicator = np.zeros(n, dtype=bool)
                indicator[[int(v) for v in mis]] = True
                sel_rows.append(indicator)
                weights_list.append(1.0 / (num_subsets * len(optima)))
        selected = np.stack(sel_rows)
        recovered = (selected.astype(np.intp) @ pmat.astype(np.intp)) > 0
        w_arr = np.asarray(weights_list)
    else:
        # Monte-Carlo path: draw every mask, then decode the whole
        # batch through the vectorized kernel at once.
        decoder = decoder_for(placement, rng=rng)
        masks = np.zeros((trials, n), dtype=bool)
        for t in range(trials):
            masks[t, rng.choice(n, size=wait_for, replace=False)] = True
        batch = decoder.decode_batch(masks)
        recovered = batch.recovered
        w_arr = np.full(recovered.shape[0], 1.0 / trials)

    num_recovered = recovered.sum(axis=1)
    stacked = (n / num_recovered)[:, None] * (recovered @ grad_mat)
    mean = (stacked * w_arr[:, None]).sum(axis=0)
    centered = stacked - mean
    total_var = float(
        ((centered * centered).sum(axis=1) * w_arr).sum()
    )
    return EstimatorMoments(
        mean=mean,
        total_variance=total_var,
        bias_norm=float(np.linalg.norm(mean - full)),
    )


def variance_reduction_vs_issgd(
    placement: Placement,
    wait_for: int,
    partition_gradients: Mapping[int, np.ndarray],
    seed: int = 0,
) -> float:
    """``Var_IS-SGD / Var_IS-GC`` at the same ``w`` (>1 ⇒ IS-GC wins).

    IS-SGD at ``w`` recovers exactly the ``w`` available partitions;
    modelled here as the same estimator on the c=1 cyclic placement.
    """
    from ..core.scheme import make_placement

    n = placement.num_workers
    isgc = estimator_moments(placement, wait_for, partition_gradients, seed=seed)
    issgd = estimator_moments(
        make_placement("cr", num_workers=n, partitions_per_worker=1),
        wait_for, partition_gradients, seed=seed,
    )
    if isgc.total_variance == 0.0:
        return float("inf") if issgd.total_variance > 0 else 1.0
    return issgd.total_variance / isgc.total_variance
