"""Plain-text tables and series for experiment output.

The benchmark harness regenerates the paper's figures as printed
tables; this module owns the formatting so every bench looks the same.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Mapping, Sequence

from ..exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.summary import SchemeAggregate


@dataclass
class Table:
    """A titled column-aligned table (with an optional footer line)."""

    title: str
    columns: Sequence[str]
    rows: List[Sequence[object]] = field(default_factory=list)
    footer: str = ""

    def add_row(self, *values: object) -> None:
        """Append one row; must match the column count."""
        if len(values) != len(self.columns):
            raise ConfigurationError(
                f"row has {len(values)} cells, table has "
                f"{len(self.columns)} columns"
            )
        self.rows.append(values)

    def render(self) -> str:
        """Render the table as column-aligned plain text."""
        def fmt(cell: object) -> str:
            if isinstance(cell, float):
                return f"{cell:.4g}"
            return str(cell)

        header = [str(c) for c in self.columns]
        body = [[fmt(c) for c in row] for row in self.rows]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        sep = "-+-".join("-" * w for w in widths)
        lines = [self.title, "=" * len(self.title)]
        lines.append(" | ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append(sep)
        for row in body:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        if self.footer:
            lines.append(sep)
            lines.append(self.footer)
        return "\n".join(lines)

    def show(self) -> None:
        """Print the rendered table with surrounding blank lines."""
        print()
        print(self.render())
        print()


@dataclass(frozen=True)
class Series:
    """A named (x, y) series — one line of a paper figure."""

    name: str
    x: Sequence[float]
    y: Sequence[float]

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ConfigurationError(
                f"series {self.name!r}: {len(self.x)} x-values vs "
                f"{len(self.y)} y-values"
            )


def format_cache_stats(snapshot: Mapping[str, float]) -> str:
    """Render a :meth:`DecodeCache.snapshot` mapping as one line."""
    lookups = int(snapshot.get("hits", 0) + snapshot.get("misses", 0))
    return (
        f"decode cache: {int(snapshot.get('hits', 0))} hits / "
        f"{lookups} lookups "
        f"({100 * snapshot.get('hit_rate', 0.0):.1f}% hit rate), "
        f"{int(snapshot.get('size', 0))}/{int(snapshot.get('maxsize', 0))} "
        f"entries, {int(snapshot.get('evictions', 0))} evictions"
    )


def trace_summary_table(
    aggregates: Mapping[str, "SchemeAggregate"],
    title: str = "Round-trace summary",
    cache: object = None,
) -> Table:
    """Tabulate per-scheme aggregates of an exported round trace.

    Input is the mapping produced by
    :func:`repro.obs.summary.aggregate_traces`; undecoded schemes show
    ``-`` in the recovery/search columns.  ``cache`` — either a
    :class:`~repro.parallel.DecodeCache` or its :meth:`snapshot`
    mapping — adds the decode-cache hit rate as the table footer.
    """
    if not aggregates:
        raise ConfigurationError("need at least one scheme aggregate")

    def opt(value: object, fmt: str) -> str:
        return format(value, fmt) if value is not None else "-"

    table = Table(
        title=title,
        columns=[
            "scheme", "rounds", "mean step (s)", "p50 (s)", "p95 (s)",
            "p99 (s)", "mean accepted", "recovery", "mean searches",
            "wasted compute (s)",
        ],
    )
    for agg in aggregates.values():
        table.add_row(
            agg.scheme,
            agg.rounds,
            agg.mean_step_time,
            agg.p50_step_time,
            agg.p95_step_time,
            agg.p99_step_time,
            agg.mean_accepted,
            opt(agg.mean_recovery_fraction, ".1%"),
            opt(agg.mean_num_searches, ".2f"),
            agg.total_wasted_compute,
        )
    if cache is not None:
        snapshot = cache.snapshot() if hasattr(cache, "snapshot") else cache
        table.footer = format_cache_stats(snapshot)
    return table


def series_table(title: str, x_label: str, series: Sequence[Series]) -> Table:
    """Tabulate several series over a shared x-axis."""
    if not series:
        raise ConfigurationError("need at least one series")
    base_x = list(series[0].x)
    for s in series:
        if list(s.x) != base_x:
            raise ConfigurationError(
                f"series {s.name!r} has a different x-axis"
            )
    table = Table(title=title, columns=[x_label, *(s.name for s in series)])
    for i, x in enumerate(base_x):
        table.add_row(x, *(s.y[i] for s in series))
    return table
