"""Closed-form and exact recovery distributions.

Monte-Carlo recovery estimates (:mod:`repro.analysis.recovery`) are
convenient but noisy; this module provides the exact counterparts used
to validate them and to generate smooth theory curves:

* :func:`expected_alpha_fr` — a closed form for FR.  With ``W'``
  uniform over size-``w`` subsets, ``α`` is the number of *non-empty
  groups*, an occupancy statistic:

  ``E[α] = (n/c) · (1 − C(n−c, w) / C(n, w))``

* :func:`alpha_distribution_fr` — the full pmf of ``α`` for FR by
  inclusion–exclusion over groups.

* :func:`alpha_distribution_exact` — the pmf for *any* placement by
  exhaustive enumeration of the ``C(n, w)`` subsets (practical for
  ``n ≲ 20``), using the exact MIS solver.

Every function is cross-validated against the others and against the
Monte-Carlo estimator in ``tests/test_closed_form.py``.
"""

from __future__ import annotations

from itertools import combinations
from math import comb
from typing import Dict

from ..core.conflict import conflict_graph
from ..core.placement import Placement
from ..exceptions import ConfigurationError
from ..graphs.independent_set import independence_number


def _validate(n: int, c: int, w: int) -> None:
    if n <= 0 or not 1 <= c <= n:
        raise ConfigurationError(f"invalid (n, c) = ({n}, {c})")
    if not 1 <= w <= n:
        raise ConfigurationError(f"invalid w = {w} for n = {n}")


def expected_alpha_fr(n: int, c: int, w: int) -> float:
    """``E[α(G[W'])]`` for FR(n, c) under uniform size-``w`` subsets.

    Each of the ``n/c`` groups is empty with probability
    ``C(n−c, w) / C(n, w)`` (all ``w`` picks avoid its ``c`` workers),
    and ``α`` counts non-empty groups, so linearity of expectation gives
    the closed form directly.
    """
    _validate(n, c, w)
    if n % c != 0:
        raise ConfigurationError(f"FR requires c | n, got n={n}, c={c}")
    groups = n // c
    if w > n - c:
        p_empty = 0.0
    else:
        p_empty = comb(n - c, w) / comb(n, w)
    return groups * (1.0 - p_empty)


def alpha_distribution_fr(n: int, c: int, w: int) -> Dict[int, float]:
    """The pmf ``P(α = k)`` for FR(n, c) under uniform size-``w`` subsets.

    ``P(exactly k groups non-empty) = C(G, k) · N(k) / C(n, w)`` where
    ``N(k)`` counts size-``w`` subsets of ``k·c`` workers that touch all
    ``k`` groups — inclusion–exclusion:

    ``N(k) = Σ_j (−1)^j C(k, j) C((k−j)·c, w)``.
    """
    _validate(n, c, w)
    if n % c != 0:
        raise ConfigurationError(f"FR requires c | n, got n={n}, c={c}")
    groups = n // c
    total = comb(n, w)
    pmf: Dict[int, float] = {}
    for k in range(1, groups + 1):
        surjective = 0
        for j in range(k + 1):
            avail = (k - j) * c
            if avail >= w:
                surjective += (-1) ** j * comb(k, j) * comb(avail, w)
        if surjective:
            pmf[k] = comb(groups, k) * surjective / total
    return pmf


def alpha_distribution_exact(
    placement: Placement, w: int
) -> Dict[int, float]:
    """Exact pmf of ``α(G[W'])`` by enumerating all size-``w`` subsets.

    Cost is ``C(n, w)`` MIS computations — fine for the paper-scale
    placements (``n ≤ 16``-ish); raise the Monte-Carlo estimator for
    bigger clusters.
    """
    n = placement.num_workers
    _validate(n, placement.partitions_per_worker, w)
    if comb(n, w) > 200_000:
        raise ConfigurationError(
            f"C({n}, {w}) = {comb(n, w)} subsets is too many to "
            "enumerate; use monte_carlo_recovery instead"
        )
    graph = conflict_graph(placement)
    counts: Dict[int, int] = {}
    total = 0
    for subset in combinations(range(n), w):
        alpha = independence_number(graph.subgraph(subset))
        counts[alpha] = counts.get(alpha, 0) + 1
        total += 1
    return {k: v / total for k, v in sorted(counts.items())}


def expected_alpha_exact(placement: Placement, w: int) -> float:
    """Exact ``E[α(G[W'])]`` via :func:`alpha_distribution_exact`."""
    pmf = alpha_distribution_exact(placement, w)
    return sum(k * p for k, p in pmf.items())


def expected_recovered_exact(placement: Placement, w: int) -> float:
    """Exact expected number of recovered partitions, ``E[α] · c``."""
    return expected_alpha_exact(placement, w) * placement.partitions_per_worker
