"""Analysis: recovery statistics, theory verification, reporting."""

from .recovery import (
    RecoveryStats,
    fairness_gap,
    monte_carlo_recovery,
    recovery_curve,
)
from .theory import (
    BoundCheck,
    best_case_alpha,
    check_bounds_exhaustive,
    check_bounds_sampled,
    expected_alpha,
    worst_case_alpha,
)
from .reporting import Series, Table, series_table
from .closed_form import (
    alpha_distribution_exact,
    alpha_distribution_fr,
    expected_alpha_exact,
    expected_alpha_fr,
    expected_recovered_exact,
)
from .plotting import ascii_plot, downsample, loss_curve_panel, sparkline
from .stats import (
    PairedComparison,
    TrialSummary,
    bootstrap_ci,
    paired_comparison,
    summarize_trials,
)
from .variance import (
    EstimatorMoments,
    estimator_moments,
    variance_reduction_vs_issgd,
)
from .convergence_theory import (
    BoundValidation,
    estimate_lipschitz,
    estimate_sigma_squared,
    validate_descent_bound,
)

__all__ = [
    "RecoveryStats",
    "monte_carlo_recovery",
    "recovery_curve",
    "fairness_gap",
    "BoundCheck",
    "check_bounds_exhaustive",
    "check_bounds_sampled",
    "worst_case_alpha",
    "best_case_alpha",
    "expected_alpha",
    "Series",
    "Table",
    "series_table",
    "expected_alpha_fr",
    "alpha_distribution_fr",
    "alpha_distribution_exact",
    "expected_alpha_exact",
    "expected_recovered_exact",
    "sparkline",
    "downsample",
    "ascii_plot",
    "loss_curve_panel",
    "estimate_lipschitz",
    "estimate_sigma_squared",
    "BoundValidation",
    "validate_descent_bound",
    "TrialSummary",
    "summarize_trials",
    "PairedComparison",
    "paired_comparison",
    "bootstrap_ci",
    "EstimatorMoments",
    "estimator_moments",
    "variance_reduction_vs_issgd",
]
