"""ASCII plotting for terminal-friendly experiment output.

No matplotlib in the dependency set — loss curves and recovery sweeps
render as Unicode sparklines and simple line plots, which is all the
examples and bench summaries need.
"""

from __future__ import annotations

from typing import List, Sequence

from ..exceptions import ConfigurationError
from .reporting import Series

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """A one-line sparkline: ``sparkline([1,5,2]) → '▁█▃'``."""
    if not values:
        raise ConfigurationError("cannot sparkline an empty sequence")
    lo = min(values)
    hi = max(values)
    if hi == lo:
        return _SPARK_LEVELS[0] * len(values)
    span = hi - lo
    out = []
    for v in values:
        idx = int((v - lo) / span * (len(_SPARK_LEVELS) - 1))
        out.append(_SPARK_LEVELS[idx])
    return "".join(out)


def downsample(values: Sequence[float], width: int) -> List[float]:
    """Average-pool ``values`` down to at most ``width`` points."""
    if width <= 0:
        raise ConfigurationError(f"width must be positive, got {width}")
    vals = list(values)
    if len(vals) <= width:
        return vals
    out: List[float] = []
    step = len(vals) / width
    for i in range(width):
        lo = int(i * step)
        hi = max(lo + 1, int((i + 1) * step))
        chunk = vals[lo:hi]
        out.append(sum(chunk) / len(chunk))
    return out


def ascii_plot(
    series: Sequence[Series], width: int = 70, height: int = 12
) -> str:
    """A multi-series ASCII line plot with a y-axis.

    Each series is drawn with its own marker (``*``, ``o``, ``+``, …)
    and listed in a legend below the axes.
    """
    if not series:
        raise ConfigurationError("need at least one series to plot")
    if width <= 0 or height <= 1:
        raise ConfigurationError(
            f"need width > 0 and height > 1, got {width}×{height}"
        )
    markers = "*o+x#@%&"
    sampled = [downsample(list(s.y), width) for s in series]
    all_vals = [v for ys in sampled for v in ys]
    lo, hi = min(all_vals), max(all_vals)
    span = (hi - lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for s_idx, ys in enumerate(sampled):
        marker = markers[s_idx % len(markers)]
        for x, v in enumerate(ys):
            row = int((hi - v) / span * (height - 1))
            grid[row][x] = marker

    lines = []
    for r, row in enumerate(grid):
        level = hi - r / (height - 1) * span
        lines.append(f"{level:>10.4g} |{''.join(row)}")
    lines.append(" " * 11 + "+" + "-" * width)
    legend = "   ".join(
        f"{markers[i % len(markers)]} {s.name}" for i, s in enumerate(series)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def loss_curve_panel(
    name_to_losses: dict[str, Sequence[float]], width: int = 60
) -> str:
    """Sparkline panel: one labelled row per loss curve."""
    if not name_to_losses:
        raise ConfigurationError("no curves to draw")
    label_width = max(len(name) for name in name_to_losses)
    lines = []
    for name, losses in name_to_losses.items():
        spark = sparkline(downsample(list(losses), width))
        final = losses[-1] if len(losses) else float("nan")
        lines.append(f"{name.ljust(label_width)}  {spark}  (final {final:.4g})")
    return "\n".join(lines)
