"""Typed exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures without masking programming errors
(``TypeError``/``ValueError`` raised by NumPy, etc. still propagate as-is
unless they stem from invalid *library* configuration, in which case they
are translated into one of the classes below).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """Invalid parameters for a placement, code, or experiment.

    Raised eagerly at construction time (never mid-training) so that a
    misconfigured run fails fast.
    """


class PlacementError(ConfigurationError):
    """Invalid placement parameters (e.g. FR with ``c`` not dividing ``n``)."""


class DecodeError(ReproError):
    """The master could not decode anything from the available workers."""


class CodingError(ReproError):
    """Failure while encoding or decoding gradient payloads."""


class SimulationError(ReproError):
    """Inconsistent state inside the discrete-event cluster simulator."""


class TrainingError(ReproError):
    """Failure inside the distributed-training driver."""


class ObservabilityError(ReproError):
    """Invalid use of the metrics/tracing layer, or a malformed trace."""


class ServeError(ReproError):
    """Invalid use of the multi-job coordinator (:mod:`repro.serve`).

    Admission rejections, submissions to a stopped coordinator, and
    malformed mailbox payloads all raise this; per-job *outcomes*
    (failure, cancellation) surface as the dedicated
    :class:`repro.serve.JobFailedError` / :class:`repro.serve.JobCancelledError`
    subclasses when a client awaits the job's result.
    """


class AdmissionError(ServeError):
    """A structurally valid submission was refused at admission control.

    Carries the structured context the coordinator publishes to
    ``rejected/`` so clients can make an informed retry decision
    instead of string-matching the message.

    Attributes
    ----------
    reason:
        Machine-readable cause, e.g. ``"queue_limit"``.
    queue_depth:
        Non-terminal jobs the coordinator held at rejection time.
    queue_limit:
        The coordinator's admission bound.
    retry_hint:
        Human-readable guidance (when resubmission can succeed).
    """

    def __init__(
        self,
        message: str,
        *,
        reason: str = "queue_limit",
        queue_depth: int | None = None,
        queue_limit: int | None = None,
        retry_hint: str = "",
    ):
        super().__init__(message)
        self.reason = reason
        self.queue_depth = queue_depth
        self.queue_limit = queue_limit
        self.retry_hint = retry_hint

    def details(self) -> dict:
        """The structured rejection payload (JSON-ready)."""
        payload: dict = {"reason": self.reason}
        if self.queue_depth is not None:
            payload["queue_depth"] = self.queue_depth
        if self.queue_limit is not None:
            payload["queue_limit"] = self.queue_limit
        if self.retry_hint:
            payload["retry_hint"] = self.retry_hint
        return payload


class SubmissionRejectedError(ServeError):
    """A mailbox submission landed in ``rejected/``.

    Raised by :meth:`repro.serve.CoordinatorClient.wait` (and by
    ``submit`` on a job id that was already rejected); carries the
    rejection record so callers can read ``reason``/``retry_hint``
    without re-opening the mailbox.
    """

    def __init__(self, message: str, *, record: dict | None = None):
        super().__init__(message)
        self.record = record if record is not None else {}

    @property
    def reason(self) -> str:
        """The machine-readable rejection reason (may be empty)."""
        return str(self.record.get("reason", ""))

    @property
    def retry_hint(self) -> str:
        """Guidance on whether/when resubmission can succeed."""
        return str(self.record.get("retry_hint", ""))
