"""Typed exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures without masking programming errors
(``TypeError``/``ValueError`` raised by NumPy, etc. still propagate as-is
unless they stem from invalid *library* configuration, in which case they
are translated into one of the classes below).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """Invalid parameters for a placement, code, or experiment.

    Raised eagerly at construction time (never mid-training) so that a
    misconfigured run fails fast.
    """


class PlacementError(ConfigurationError):
    """Invalid placement parameters (e.g. FR with ``c`` not dividing ``n``)."""


class DecodeError(ReproError):
    """The master could not decode anything from the available workers."""


class CodingError(ReproError):
    """Failure while encoding or decoding gradient payloads."""


class SimulationError(ReproError):
    """Inconsistent state inside the discrete-event cluster simulator."""


class TrainingError(ReproError):
    """Failure inside the distributed-training driver."""


class ObservabilityError(ReproError):
    """Invalid use of the metrics/tracing layer, or a malformed trace."""


class ServeError(ReproError):
    """Invalid use of the multi-job coordinator (:mod:`repro.serve`).

    Admission rejections, submissions to a stopped coordinator, and
    malformed mailbox payloads all raise this; per-job *outcomes*
    (failure, cancellation) surface as the dedicated
    :class:`repro.serve.JobFailedError` / :class:`repro.serve.JobCancelledError`
    subclasses when a client awaits the job's result.
    """
