"""Command-line interface.

Exposes the library's main entry points without writing Python::

    python -m repro placement --scheme cr -n 8 -c 2
    python -m repro decode    --scheme cr -n 8 -c 2 --available 0,2,5
    python -m repro recovery  --scheme fr -n 8 -c 2 --trials 2000
    python -m repro bounds    -n 8 -c 2
    python -m repro placements
    python -m repro placements hr -n 12 -c 3 --param c1=2 --param c2=1 --param num_groups=3
    python -m repro environments
    python -m repro environments pareto --param alpha=2.5 --param scale=0.5
    python -m repro experiment fig13
    python -m repro experiment fig11 --jobs 8
    python -m repro run       experiment.json
    python -m repro run       experiment.json --sweep wait_for=2,3,4 --jobs 4
    python -m repro trace record --out run.jsonl
    python -m repro trace summarize run.jsonl
    python -m repro check     src tests examples

``repro check`` exits 0 when clean, 1 when it reports findings, and 2
on usage errors (unknown rule id, missing path) — the same convention
the other subcommands follow for invalid configurations.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from .analysis.recovery import monte_carlo_recovery
from .analysis.reporting import Table
from .core.bounds import alpha_lower_bound, alpha_upper_bound
from .core.conflict import conflict_graph
from .core.decoders import decoder_for
from .core.placement import Placement
from .core.scheme import make_placement
from .exceptions import ReproError


def _build_placement(args: argparse.Namespace) -> Placement:
    # Every CLI placement goes through the placement registry, the same
    # construction path specs and library code use (REG001/REG004).
    if args.scheme == "hr":
        if args.g is None or args.c1 is None:
            raise ReproError("HR needs --g and --c1 (c2 = c - c1)")
        return make_placement(
            "hr", num_workers=args.n, c1=args.c1, c2=args.c - args.c1,
            num_groups=args.g,
        )
    return make_placement(
        args.scheme, num_workers=args.n, partitions_per_worker=args.c
    )


def _add_placement_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scheme", choices=("fr", "cr", "hr"), required=True,
        help="placement family",
    )
    parser.add_argument("-n", type=int, required=True, help="number of workers")
    parser.add_argument("-c", type=int, required=True, help="partitions per worker")
    parser.add_argument("--g", type=int, default=None, help="HR: number of groups")
    parser.add_argument("--c1", type=int, default=None, help="HR: upper-part rows")


def cmd_placement(args: argparse.Namespace) -> int:
    """Describe a placement and render its conflict graph."""
    from .graphs.render import adjacency_art, edge_list_art

    placement = _build_placement(args)
    print(placement.describe())
    graph = conflict_graph(placement)
    print(f"\nconflict graph ({graph.number_of_edges()} edges):")
    print(adjacency_art(graph))
    print()
    print(edge_list_art(graph))
    return 0


def cmd_decode(args: argparse.Namespace) -> int:
    """Decode one round for an explicit available-worker set."""
    placement = _build_placement(args)
    available = [int(tok) for tok in args.available.split(",") if tok]
    decoder = decoder_for(placement, rng=np.random.default_rng(args.seed))
    result = decoder.decode(available)
    print(f"available workers : {sorted(result.available_workers)}")
    print(f"selected workers  : {sorted(result.selected_workers)}")
    print(f"recovered         : {sorted(result.recovered_partitions)}")
    print(
        f"recovery          : {result.num_recovered}/{placement.num_partitions} "
        f"partitions ({100 * result.num_recovered / placement.num_partitions:.1f}%)"
    )
    return 0


def cmd_recovery(args: argparse.Namespace) -> int:
    """Print the Monte-Carlo recovery curve for a placement."""
    placement = _build_placement(args)
    table = Table(
        title=f"Recovery curve — {type(placement).__name__}"
        f"(n={args.n}, c={args.c}), {args.trials} trials per w",
        columns=["w", "mean recovered", "% of gradients", "min", "max"],
    )
    for w in range(1, args.n + 1):
        stats = monte_carlo_recovery(
            placement, w, trials=args.trials, seed=args.seed
        )
        table.add_row(
            w, round(stats.mean_recovered, 3),
            f"{100 * stats.mean_fraction:.1f}%",
            stats.min_recovered, stats.max_recovered,
        )
    table.show()
    return 0


def cmd_bounds(args: argparse.Namespace) -> int:
    """Print the Theorem 10/11 bound table for (n, c)."""
    table = Table(
        title=f"Theorem 10/11 bounds on α(G[W']) — n={args.n}, c={args.c}",
        columns=["w", "lower (Thm 10)", "upper (Thm 11)"],
    )
    for w in range(1, args.n + 1):
        table.add_row(
            w,
            alpha_lower_bound(args.n, args.c, w),
            alpha_upper_bound(args.n, args.c, w),
        )
    table.show()
    return 0


def cmd_placements(args: argparse.Namespace) -> int:
    """List registered placement families, or describe one of them."""
    from .core.scheme import (
        PLACEMENT_REGISTRY, registered_placements, spec_placement_scheme,
    )

    if args.family is None:
        table = Table(
            title="Registered placement families",
            columns=["family", "aliases", "summary", "paper"],
        )
        for name in registered_placements():
            cls = PLACEMENT_REGISTRY[name]
            table.add_row(
                name,
                ", ".join(cls.aliases) if cls.aliases else "-",
                cls.summary,
                cls.paper,
            )
        table.show()
        return 0

    params = {}
    for clause in args.param or []:
        key, sep, value = clause.partition("=")
        if not sep or not value:
            raise ReproError(f"--param needs key=value, got {clause!r}")
        params[key.strip()] = _parse_sweep_value(value.strip())
    if args.n is None:
        raise ReproError(
            f"describing family {args.family!r} needs -n (number of workers)"
        )
    scheme = spec_placement_scheme(
        args.family,
        num_workers=args.n,
        partitions_per_worker=args.c,
        **params,
    )
    print(scheme.describe())
    placement = scheme.construct()
    graph = scheme.conflict_graph()
    print(f"fingerprint    : {scheme.fingerprint()}")
    print(f"conflict edges : {graph.number_of_edges()}")
    table = Table(
        title=f"recovery bounds (Thm 10/11) — {placement.num_workers} workers",
        columns=["w", "lower", "upper"],
    )
    for w in range(1, placement.num_workers + 1):
        lo, hi = scheme.recovery_bounds(w)
        table.add_row(w, lo, hi)
    table.show()
    return 0


def cmd_advise(args: argparse.Namespace) -> int:
    """Rank all candidate placements for (n, c, w)."""
    from .core.advisor import rank_placements

    ranking = rank_placements(
        args.n, args.c, args.w, trials=args.trials, seed=args.seed
    )
    table = Table(
        title=f"Placement ranking for n={args.n}, c={args.c}, w={args.w}",
        columns=["rank", "placement", "E[recovered partitions]", "method"],
    )
    for idx, score in enumerate(ranking, start=1):
        table.add_row(
            idx, score.label, round(score.expected_recovered, 4),
            "exact" if score.exact else "monte-carlo",
        )
    table.show()
    print(f"recommended: {ranking[0].label}")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    """Run a short simulated training job and print its summary."""
    from .analysis.plotting import downsample, sparkline
    from .engine.spec import make_strategy
    from .env import make_delay_model
    from .simulation.cluster import ClusterSimulator
    from .training.datasets import (
        build_batch_streams, make_classification, partition_dataset,
    )
    from .training.models import SoftmaxRegressionModel
    from .training.optimizers import SGD
    from .training.trainer import DistributedTrainer

    placement = _build_placement(args)
    n = placement.num_workers
    dataset = make_classification(
        1024, 12, num_classes=3, separation=2.0, seed=args.seed
    )
    streams = build_batch_streams(
        partition_dataset(dataset, n, seed=args.seed + 1),
        batch_size=32, seed=args.seed + 2,
    )
    # Built through the scheme registry so CLI, specs and library code
    # share one construction path (what `repro check` REG001 enforces).
    if args.c == 1:
        strategy = make_strategy("is-sgd", num_workers=n, wait_for=args.w)
    else:
        scheme_params = {}
        if args.scheme == "hr":
            scheme_params = {
                "c1": args.c1, "c2": args.c - args.c1,
                "num_groups": args.g,
            }
        strategy = make_strategy(
            f"is-gc-{args.scheme}",
            num_workers=n,
            partitions_per_worker=args.c,
            wait_for=args.w,
            rng=np.random.default_rng(args.seed),
            **scheme_params,
        )
    # Delay models are built through the environment registry — the
    # same construction path specs and library code use (REG005); the
    # default is the historical exponential with --delay as its mean.
    delay_params = _parse_model_params(args.delay_param, flag="--delay-param")
    if args.delay_kind in ("exponential", "exp"):
        delay_params.setdefault("mean", args.delay)
    cluster = ClusterSimulator(
        n, placement.partitions_per_worker,
        delay_model=make_delay_model(args.delay_kind, **delay_params),
        rng=np.random.default_rng(args.seed + 3),
    )
    trainer = DistributedTrainer(
        SoftmaxRegressionModel(12, 3, seed=0), streams, strategy,
        cluster, SGD(args.lr), eval_data=dataset,
    )
    summary = trainer.run(max_steps=args.steps)
    print(summary.describe())
    print("loss: " + sparkline(downsample(list(summary.loss_curve), 60)))
    return 0


def _parse_sweep_value(token: str):
    """``--sweep`` tokens: int if possible, else float, else string."""
    for caster in (int, float):
        try:
            return caster(token)
        except ValueError:
            continue
    return token


def _parse_param_value(token: str):
    """Model-parameter values: JSON when it parses (``[0,1]``, ``0.5``,
    ``null``), else a comma token list, else the sweep scalar rules."""
    import json

    try:
        return json.loads(token)
    except ValueError:
        pass
    if "," in token:
        return [_parse_sweep_value(t) for t in token.split(",") if t]
    return _parse_sweep_value(token)


def _parse_model_params(
    clauses: Optional[List[str]], *, flag: str = "--param"
) -> dict:
    """``KEY=VALUE`` clauses → a model-parameter dict."""
    params = {}
    for clause in clauses or []:
        key, sep, value = clause.partition("=")
        if not sep or not value:
            raise ReproError(f"{flag} needs key=value, got {clause!r}")
        params[key.strip()] = _parse_param_value(value.strip())
    return params


def cmd_environments(args: argparse.Namespace) -> int:
    """List registered environment models, or describe one kind."""
    import inspect

    from .env import (
        ENV_REGISTRY,
        LAYERS,
        make_model,
        model_fingerprint,
        resolve_model,
        spec_of,
    )

    if args.kind is None:
        table = Table(
            title="Registered environment models",
            columns=["layer", "kind", "aliases", "summary", "paper"],
        )
        for layer in LAYERS:
            for kind in sorted(ENV_REGISTRY[layer]):
                family = ENV_REGISTRY[layer][kind]
                table.add_row(
                    layer,
                    kind,
                    ", ".join(family.aliases) if family.aliases else "-",
                    family.summary,
                    family.paper,
                )
        table.show()
        return 0

    matches = []
    for layer in (args.layer,) if args.layer else LAYERS:
        try:
            matches.append(resolve_model(layer, args.kind))
        except ReproError as exc:
            if args.layer:
                raise ReproError(str(exc)) from exc
    if not matches:
        import difflib

        known = sorted(
            {k for layer in LAYERS for k in ENV_REGISTRY[layer]}
            | {
                alias
                for layer in LAYERS
                for fam in ENV_REGISTRY[layer].values()
                for alias in fam.aliases
            }
        )
        close = difflib.get_close_matches(args.kind, known, n=1)
        hint = f" — did you mean {close[0]!r}?" if close else ""
        raise ReproError(
            f"unknown environment model {args.kind!r} in any layer{hint}; "
            "run `repro environments` for the catalogue"
        )
    for family in matches:
        alias_note = (
            f" (aliases: {', '.join(family.aliases)})" if family.aliases else ""
        )
        print(f"[{family.layer}] {family.kind}{alias_note}")
        if family.summary:
            print(f"  {family.summary}")
        if family.paper:
            print(f"  paper: {family.paper}")
        rendered = [
            name if default is inspect.Parameter.empty
            else f"{name}={default!r}"
            for name, default in family.parameters().items()
        ]
        print(f"  params: {', '.join(rendered) if rendered else '(none)'}")
        if family.nested:
            print(
                f"  nested sub-model params: {', '.join(family.nested)}"
            )
    if args.param:
        if len(matches) > 1:
            raise ReproError(
                f"kind {args.kind!r} exists in several layers "
                f"({', '.join(f.layer for f in matches)}); pass --layer "
                "to build it"
            )
        family = matches[0]
        model = make_model(
            family.layer, family.kind, **_parse_model_params(args.param)
        )
        print(f"  spec        : {spec_of(model)}")
        print(f"  fingerprint : {model_fingerprint(model)}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    """Run a declarative :class:`ExperimentSpec` from a JSON/TOML file.

    With ``--sweep field=v1,v2`` (repeatable) the spec becomes the base
    of a grid sweep over those fields; ``--jobs N`` fans the grid out
    over a process pool with bit-for-bit identical results.
    """
    from .analysis.plotting import downsample, sparkline
    from .engine.spec import ExperimentSpec, run_spec

    spec = ExperimentSpec.load(args.spec)
    if args.sweep:
        from .experiments.runner import executor_for_jobs
        from .experiments.sweep import Sweep

        axes = {}
        for clause in args.sweep:
            name, sep, values = clause.partition("=")
            if not sep or not values:
                raise ReproError(
                    f"--sweep needs field=v1,v2,... , got {clause!r}"
                )
            axes[name.strip()] = [
                _parse_sweep_value(tok) for tok in values.split(",") if tok
            ]
        sweep = Sweep.over_spec(f"{spec.name} sweep", spec, axes)
        result = sweep.run(executor=executor_for_jobs(args.jobs))
        names = list(axes)
        table = Table(
            title=f"{spec.name} — sweep over {', '.join(names)} "
                  f"[{result.executor} executor, {result.elapsed:.2f}s]",
            columns=[*names, "steps", "sim time (s)", "final loss"],
        )
        for point in result:
            if point.ok:
                s = point.value
                cells = [
                    s.num_steps if hasattr(s, "num_steps") else s.num_updates,
                    round(s.total_sim_time, 3),
                    round(s.final_loss, 4),
                ]
            else:
                cells = [f"error: {point.error_summary}", "-", "-"]
            table.add_row(*(point.params[k] for k in names), *cells)
        table.show()
        return 0 if result.ok else 1
    summary = run_spec(spec)
    backend = "async-arrivals" if spec.rule == "async" else spec.backend
    print(f"{spec.name} [{spec.scheme} / {backend} / {spec.rule}]")
    print(summary.describe())
    if getattr(summary, "loss_curve", None):
        print("loss: " + sparkline(downsample(list(summary.loss_curve), 60)))
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    """Run one of the paper experiments end to end."""
    from .experiments.runner import main as runner_main

    argv = [args.figure]
    if args.jobs is not None:
        argv += ["--jobs", str(args.jobs)]
    runner_main(argv)
    return 0


def cmd_trace_record(args: argparse.Namespace) -> int:
    """Run a traced fig11-style condition and export JSONL."""
    from .experiments.config import Fig11Config
    from .experiments.fig11 import run_traced_fig11

    cfg = Fig11Config(
        num_workers=args.n,
        num_steps=args.steps,
        expected_delays=(args.delay,),
        num_delayed_options=(args.delayed if args.delayed is not None
                             else args.n // 2,),
        wait_values=(args.w,),
    )
    points, tracer = run_traced_fig11(cfg, out_path=args.out)
    print(f"recorded {len(tracer)} rounds over {len(points)} schemes "
          f"-> {args.out}")
    for p in points:
        print(f"  {p.scheme:<16} avg step {p.avg_step_time:.4f}s")
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    """Run the static-analysis pass; exit 0 clean / 1 findings / 2 usage."""
    import json as _json

    from .staticcheck import (
        AnalysisCache, render_catalogue, render_json, render_text,
        run_check,
    )
    from .staticcheck.baseline import (
        DEFAULT_BASELINE_PATH, apply_baseline, load_baseline,
        write_baseline,
    )
    from .staticcheck.report import (
        catalogue_json, catalogue_markdown, render_stats,
    )
    from .staticcheck.sarif import render_sarif

    if args.list_rules:
        if args.format == "json":
            print(_json.dumps(catalogue_json(), indent=2))
        elif args.format == "markdown":
            print(catalogue_markdown())
        else:
            print(render_catalogue())
        return 0
    select = args.select.split(",") if args.select else None
    cache = AnalysisCache(args.cache_path) if args.cache else None
    result = run_check(args.paths, select=select, cache=cache)

    if args.fix or args.fix_suppress:
        result = _apply_autofixes(args, result, select, cache)

    if args.write_baseline is not None:
        baseline_path = args.write_baseline or DEFAULT_BASELINE_PATH
        write_baseline(baseline_path, result.findings)
        print(
            f"froze {len(result.findings)} finding"
            f"{'s' if len(result.findings) != 1 else ''} "
            f"into {baseline_path}"
        )
        return 0

    suppressed = stale = 0
    if args.baseline is not None:
        baseline_path = args.baseline or DEFAULT_BASELINE_PATH
        split = apply_baseline(
            result.findings, load_baseline(baseline_path)
        )
        result.findings = split.new
        suppressed, stale = len(split.suppressed), len(split.stale)

    if args.format == "json":
        print(render_json(result))
    elif args.format == "sarif":
        print(render_sarif(result))
    elif args.format == "markdown":
        raise ValueError(
            "--format markdown is only valid with --list-rules"
        )
    else:
        print(render_text(result))
        if suppressed or stale:
            print(
                f"baseline: {suppressed} finding"
                f"{'s' if suppressed != 1 else ''} frozen"
                + (f", {stale} stale entries" if stale else "")
            )
    if args.stats:
        print(render_stats(result), file=sys.stderr)
    return 0 if result.ok else 1


def _apply_autofixes(args, result, select, cache):
    """``repro check --fix``: rewrite what is mechanical, re-check."""
    from pathlib import Path

    from .staticcheck import run_check
    from .staticcheck.autofix import apply_fixes

    suppress = (
        {s.strip().upper() for s in args.fix_suppress.split(",")}
        if args.fix_suppress else set()
    )
    sources = {}
    for finding in result.findings:
        path = Path(finding.path)
        if finding.path not in sources and path.is_file():
            sources[finding.path] = path.read_text(encoding="utf-8")
    fixed = apply_fixes(result.findings, sources, suppress=suppress)
    for path in sorted(fixed.changed_paths):
        Path(path).write_text(sources[path], encoding="utf-8")
    total = sum(fixed.fixed.values())
    if total:
        breakdown = ", ".join(
            f"{rule} x{count}"
            for rule, count in sorted(fixed.fixed.items())
        )
        print(
            f"fixed {total} finding{'s' if total != 1 else ''} "
            f"({breakdown}) in {len(fixed.changed_paths)} files",
            file=sys.stderr,
        )
        return run_check(args.paths, select=select, cache=cache)
    return result


def cmd_trace_summarize(args: argparse.Namespace) -> int:
    """Re-aggregate an exported JSONL trace and print the summary."""
    from .analysis.reporting import trace_summary_table
    from .obs import aggregate_traces, read_traces

    traces = read_traces(args.path)
    aggregates = aggregate_traces(traces)
    table = trace_summary_table(
        aggregates, title=f"Round-trace summary — {args.path}"
    )
    table.show()
    print(f"{len(traces)} rounds, {len(aggregates)} schemes")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for every subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="IS-GC (ICDCS 2023) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("placement", help="describe a placement")
    _add_placement_args(p)
    p.set_defaults(func=cmd_placement)

    p = sub.add_parser("decode", help="decode one round")
    _add_placement_args(p)
    p.add_argument(
        "--available", required=True,
        help="comma-separated available worker ids, e.g. 0,2,5",
    )
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_decode)

    p = sub.add_parser("recovery", help="Monte-Carlo recovery curve")
    _add_placement_args(p)
    p.add_argument("--trials", type=int, default=2000)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_recovery)

    p = sub.add_parser("bounds", help="Theorem 10/11 bound table")
    p.add_argument("-n", type=int, required=True)
    p.add_argument("-c", type=int, required=True)
    p.set_defaults(func=cmd_bounds)

    p = sub.add_parser(
        "placements",
        help="list registered placement families / describe one",
    )
    p.add_argument(
        "family", nargs="?", default=None,
        help="family name to describe (omit to list all families)",
    )
    p.add_argument("-n", type=int, default=None, help="number of workers")
    p.add_argument(
        "-c", type=int, default=None, help="partitions per worker"
    )
    p.add_argument(
        "--param", action="append", default=None, metavar="KEY=VALUE",
        help="extra family parameter (repeatable), e.g. --param c1=2",
    )
    p.set_defaults(func=cmd_placements)

    p = sub.add_parser(
        "environments",
        help="list registered environment models "
             "(delay/failure/compute/network/contention) / describe one",
    )
    p.add_argument(
        "kind", nargs="?", default=None,
        help="model kind to describe (omit to list the catalogue)",
    )
    p.add_argument(
        "--layer",
        choices=("delay", "failure", "compute", "network", "contention"),
        default=None,
        help="restrict the kind lookup to one layer",
    )
    p.add_argument(
        "--param", action="append", default=None, metavar="KEY=VALUE",
        help="build the model with these parameters and print its "
             "canonical spec + fingerprint (repeatable)",
    )
    p.set_defaults(func=cmd_environments)

    p = sub.add_parser("advise", help="rank placements for (n, c, w)")
    p.add_argument("-n", type=int, required=True)
    p.add_argument("-c", type=int, required=True)
    p.add_argument("-w", type=int, required=True)
    p.add_argument("--trials", type=int, default=2000)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_advise)

    p = sub.add_parser("simulate", help="quick simulated training run")
    _add_placement_args(p)
    p.add_argument("-w", type=int, required=True, help="workers to wait for")
    p.add_argument("--steps", type=int, default=100)
    p.add_argument("--delay", type=float, default=1.0,
                   help="mean exponential straggler delay (s); shorthand "
                        "for --delay-param mean=... with the default kind")
    p.add_argument("--delay-kind", default="exponential",
                   help="delay model kind from the environment registry "
                        "(see `repro environments`)")
    p.add_argument("--delay-param", action="append", default=None,
                   metavar="KEY=VALUE",
                   help="delay model parameter (repeatable), e.g. "
                        "--delay-kind pareto --delay-param alpha=2.5 "
                        "--delay-param scale=0.5")
    p.add_argument("--lr", type=float, default=0.3)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser(
        "run", help="run a declarative experiment spec (.json/.toml)"
    )
    p.add_argument("spec", help="path to an ExperimentSpec file")
    p.add_argument(
        "--sweep", action="append", default=None, metavar="FIELD=V1,V2",
        help="sweep a spec field over values (repeatable); grid points "
             "run under the sweep executor",
    )
    p.add_argument(
        "--jobs", type=int, default=None,
        help="process-pool workers for --sweep grids (default: serial; "
             "results are identical either way)",
    )
    p.set_defaults(func=cmd_run)

    p = sub.add_parser(
        "check",
        help="static analysis: determinism, time units, registries, "
             "spec feasibility",
    )
    p.add_argument(
        "paths", nargs="*", default=["src", "tests", "examples"],
        help="files/directories to check (default: src tests examples)",
    )
    p.add_argument(
        "--format", choices=("text", "json", "sarif", "markdown"),
        default="text",
        help="report format (sarif for code scanning; markdown only "
             "with --list-rules)",
    )
    p.add_argument(
        "--select", default=None,
        help="comma-separated rule ids or family prefixes to run "
             "(e.g. FLOW,DET,REG005; default: all)",
    )
    p.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit (honours --format "
             "json/markdown)",
    )
    p.add_argument(
        "--stats", action="store_true",
        help="print slowest rules/files and cache traffic to stderr",
    )
    p.add_argument(
        "--cache", action="store_true",
        help="use the incremental analysis cache (see --cache-path)",
    )
    p.add_argument(
        "--cache-path", default=".repro-check-cache.json",
        help="incremental cache location (default: "
             ".repro-check-cache.json)",
    )
    p.add_argument(
        "--baseline", nargs="?", const="", default=None,
        metavar="PATH",
        help="subtract baseline-frozen findings; fail only on new ones "
             "(default path: .repro-check-baseline.json)",
    )
    p.add_argument(
        "--write-baseline", nargs="?", const="", default=None,
        metavar="PATH",
        help="freeze the current findings into a baseline file and "
             "exit 0",
    )
    p.add_argument(
        "--fix", action="store_true",
        help="apply mechanical autofixes (seeded default_rng in docs, "
             "sorted(set(...)), unambiguous registry rewrites), then "
             "re-check",
    )
    p.add_argument(
        "--fix-suppress", default=None, metavar="RULES",
        help="insert '# repro: noqa[RULE]' on lines flagged by the "
             "given comma-separated rules (freeze deliberate "
             "exceptions)",
    )
    p.set_defaults(func=cmd_check)

    p = sub.add_parser("experiment", help="run a paper experiment")
    p.add_argument(
        "figure", choices=("fig11", "fig12", "fig13", "extra", "all"),
    )
    p.add_argument(
        "--jobs", type=int, default=None,
        help="process-pool workers for the figure grid (default: serial; "
             "results are identical either way)",
    )
    p.set_defaults(func=cmd_experiment)

    p = sub.add_parser("trace", help="record / summarize round traces")
    trace_sub = p.add_subparsers(dest="trace_command", required=True)

    pr = trace_sub.add_parser(
        "record", help="run a traced fig11-style condition, export JSONL"
    )
    pr.add_argument("--out", required=True, help="output JSONL path")
    pr.add_argument("-n", type=int, default=8, help="number of workers")
    pr.add_argument("-w", type=int, default=4, help="IS wait count")
    pr.add_argument("--steps", type=int, default=50)
    pr.add_argument("--delay", type=float, default=1.5,
                    help="mean exponential straggler delay (s)")
    pr.add_argument("--delayed", type=int, default=None,
                    help="number of delayed workers (default n/2)")
    pr.set_defaults(func=cmd_trace_record)

    ps = trace_sub.add_parser(
        "summarize", help="re-aggregate an exported JSONL trace"
    )
    ps.add_argument("path", help="JSONL trace file")
    ps.set_defaults(func=cmd_trace_summarize)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
