"""Graph substrate: lightweight graphs, circulant constructors, MIS solvers."""

from .graph import Graph
from .circulant import circulant_graph, circular_distance, is_circulant_with_offsets
from .render import adjacency_art, degree_histogram, edge_list_art
from .independent_set import (
    all_maximum_independent_sets,
    greedy_independent_set,
    independence_number,
    maximum_independent_set,
)

__all__ = [
    "Graph",
    "circulant_graph",
    "circular_distance",
    "is_circulant_with_offsets",
    "greedy_independent_set",
    "maximum_independent_set",
    "independence_number",
    "all_maximum_independent_sets",
    "adjacency_art",
    "edge_list_art",
    "degree_histogram",
]
