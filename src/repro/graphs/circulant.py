"""Circulant graphs.

Theorem 1 of the paper proves that the conflict graph of cyclic
repetition ``CR(n, c)`` is the circulant graph ``C_n^{1..c-1}``: vertices
``0..n-1`` arranged on a circle, with an edge between ``x`` and ``y``
whenever their circular distance is one of the given offsets.
"""

from __future__ import annotations

from collections.abc import Iterable

from .graph import Graph


def circular_distance(x: int, y: int, n: int) -> int:
    """Minimal clockwise/counterclockwise distance between ``x`` and ``y``.

    This is the paper's ``d(x, y) = min(|x - y|, n - |x - y|)`` with
    0-indexed vertices on a circle of ``n`` positions.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    diff = abs(x - y) % n
    return min(diff, n - diff)


def circulant_graph(n: int, offsets: Iterable[int]) -> Graph:
    """Build the circulant graph ``C_n^{offsets}`` on vertices ``0..n-1``.

    ``offsets`` are interpreted modulo ``n``; an offset of ``0`` (or a
    multiple of ``n``) is rejected because it would create self-loops.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    normalized: set[int] = set()
    for off in offsets:
        off_mod = off % n
        if off_mod == 0:
            raise ValueError(f"offset {off} is 0 mod n={n} (self-loop)")
        normalized.add(min(off_mod, n - off_mod))
    g = Graph(vertices=range(n))
    for v in range(n):
        for off in normalized:
            g.add_edge(v, (v + off) % n)
    return g


def is_circulant_with_offsets(g: Graph, n: int, offsets: Iterable[int]) -> bool:
    """Check whether ``g`` equals ``C_n^{offsets}`` on vertices ``0..n-1``.

    Used by tests to validate Theorem 1 against ground-truth conflict
    graphs built directly from partition placements.
    """
    if g.vertices != frozenset(range(n)):
        return False
    return g == circulant_graph(n, offsets)
