"""ASCII rendering of conflict graphs.

Small conflict graphs (one vertex per worker) are best understood
visually; this renders them as an adjacency matrix plus a circular
edge list, which is what the CLI's ``placement`` command prints.
"""

from __future__ import annotations

from ..exceptions import ConfigurationError
from .graph import Graph


def adjacency_art(graph: Graph) -> str:
    """An adjacency-matrix picture with worker labels.

    ``#`` marks a conflict, ``.`` no conflict, ``\\`` the diagonal.
    Only defined for integer-labelled graphs (worker indices).
    """
    vertices = sorted(graph.vertices)
    if not vertices:
        raise ConfigurationError("cannot render an empty graph")
    if not all(isinstance(v, int) for v in vertices):
        raise ConfigurationError("adjacency art needs integer vertices")
    width = len(str(vertices[-1]))
    header = " " * (width + 1) + " ".join(
        str(v).rjust(width) for v in vertices
    )
    lines = [header]
    for u in vertices:
        cells = []
        for v in vertices:
            if u == v:
                cells.append("\\".rjust(width))
            elif graph.has_edge(u, v):
                cells.append("#".rjust(width))
            else:
                cells.append(".".rjust(width))
        lines.append(str(u).rjust(width) + " " + " ".join(cells))
    return "\n".join(lines)


def edge_list_art(graph: Graph) -> str:
    """One line per vertex: ``W3 -- W1 W2`` style conflict lists."""
    vertices = sorted(graph.vertices, key=repr)
    if not vertices:
        raise ConfigurationError("cannot render an empty graph")
    lines = []
    for v in vertices:
        neighbors = sorted(graph.neighbors(v), key=repr)
        if neighbors:
            right = " ".join(f"W{u}" for u in neighbors)
        else:
            right = "(no conflicts)"
        lines.append(f"W{v} -- {right}")
    return "\n".join(lines)


def degree_histogram(graph: Graph) -> str:
    """``degree: count`` summary, one line per occurring degree."""
    if not graph.vertices:
        raise ConfigurationError("cannot summarise an empty graph")
    counts: dict[int, int] = {}
    for v in graph.vertices:
        d = graph.degree(v)
        counts[d] = counts.get(d, 0) + 1
    return "\n".join(
        f"degree {d}: {counts[d]} worker(s)" for d in sorted(counts)
    )
