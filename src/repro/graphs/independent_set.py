"""Independent-set algorithms.

Decoding IS-GC is a maximum-independent-set (MIS) problem on the induced
conflict graph ``G[W']`` (Sec. V-A of the paper).  The scheme-specific
linear-time decoders live in :mod:`repro.core`; this module provides

* an exact branch-and-bound MIS used as the reference ("ground truth")
  in tests and as the decoder for arbitrary placements, and
* a generic greedy MIS used for comparisons and as a fallback.

MIS is NP-hard in general, but conflict graphs have one vertex per
*worker*, so ``n`` is tens at most and the exact solver is plenty fast.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from typing import FrozenSet, List, Set

from .graph import Graph

Vertex = Hashable


def greedy_independent_set(
    graph: Graph, order: Iterable[Vertex] | None = None
) -> FrozenSet[Vertex]:
    """Greedy maximal independent set.

    Vertices are considered in ``order`` (default: ascending degree, the
    classic heuristic); each vertex is added if it conflicts with nothing
    chosen so far.  The result is *maximal* (cannot be extended) but not
    necessarily *maximum*.
    """
    if order is None:
        order = sorted(graph.vertices, key=lambda v: (graph.degree(v), repr(v)))
    chosen: Set[Vertex] = set()
    blocked: Set[Vertex] = set()
    for v in order:
        if v in blocked or v in chosen:
            continue
        chosen.add(v)
        blocked |= graph.neighbors(v)
    return frozenset(chosen)


def maximum_independent_set(graph: Graph) -> FrozenSet[Vertex]:
    """Exact maximum independent set via branch and bound.

    Branches on a highest-degree vertex (either exclude it or include it
    and discard its neighbourhood), pruning when the remaining vertex
    count cannot beat the incumbent.  Exponential worst case, perfectly
    fine for worker-scale graphs (``n`` ≲ 60 in every experiment).
    """
    vertices = sorted(graph.vertices, key=repr)
    best: List[FrozenSet[Vertex]] = [greedy_independent_set(graph)]

    def branch(candidates: Set[Vertex], chosen: Set[Vertex]) -> None:
        if len(chosen) + len(candidates) <= len(best[0]):
            return  # cannot improve on the incumbent
        if not candidates:
            if len(chosen) > len(best[0]):
                best[0] = frozenset(chosen)
            return
        # Pick the candidate with the most candidate-neighbours: deciding
        # it prunes the search space fastest.
        pivot = max(
            candidates,
            key=lambda v: (len(graph.neighbors(v) & candidates), repr(v)),
        )
        # Branch 1: include pivot.
        branch(candidates - graph.neighbors(pivot) - {pivot}, chosen | {pivot})
        # Branch 2: exclude pivot.
        branch(candidates - {pivot}, chosen)

    branch(set(vertices), set())
    return best[0]


def independence_number(graph: Graph) -> int:
    """``α(G)``: the size of a maximum independent set of ``graph``."""
    return len(maximum_independent_set(graph))


def all_maximum_independent_sets(graph: Graph) -> List[FrozenSet[Vertex]]:
    """Enumerate *all* maximum independent sets (small graphs only).

    Used by fairness tests: the paper requires every partition to have an
    equal chance of appearing in the decoded gradient, which we validate
    against the full optimum set family.
    """
    alpha = independence_number(graph)
    results: List[FrozenSet[Vertex]] = []
    vertices = sorted(graph.vertices, key=repr)

    def extend(idx: int, chosen: Set[Vertex], blocked: Set[Vertex]) -> None:
        if len(chosen) == alpha:
            results.append(frozenset(chosen))
            return
        remaining = len(vertices) - idx
        if len(chosen) + remaining < alpha:
            return
        if idx == len(vertices):
            return
        v = vertices[idx]
        if v not in blocked:
            extend(idx + 1, chosen | {v}, blocked | graph.neighbors(v))
        extend(idx + 1, chosen, blocked)

    extend(0, set(), set())
    return results
