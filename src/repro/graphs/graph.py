"""A small, dependency-free undirected graph.

The conflict graphs in the paper are tiny (one vertex per worker), so this
module favours clarity and exact semantics over asymptotic cleverness.
Vertices are arbitrary hashable objects; in practice they are worker
indices ``0..n-1``.

The class intentionally mirrors a small subset of the :mod:`networkx`
API (``add_edge``, ``neighbors``, ``subgraph``) so tests can cross-check
against networkx without adapters.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from typing import Dict, FrozenSet, Set, Tuple

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]


class Graph:
    """An undirected simple graph (no self-loops, no parallel edges)."""

    def __init__(self, vertices: Iterable[Vertex] = (), edges: Iterable[Edge] = ()):
        self._adj: Dict[Vertex, Set[Vertex]] = {}
        for v in vertices:
            self.add_vertex(v)
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_vertex(self, v: Vertex) -> None:
        """Add ``v`` if not already present."""
        self._adj.setdefault(v, set())

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        """Add the undirected edge ``{u, v}``, creating endpoints as needed.

        Self-loops are rejected because a conflict graph never contains
        them (a worker trivially "conflicts" with itself but that carries
        no information for decoding).
        """
        if u == v:
            raise ValueError(f"self-loops are not allowed (vertex {u!r})")
        self.add_vertex(u)
        self.add_vertex(v)
        self._adj[u].add(v)
        self._adj[v].add(u)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def vertices(self) -> FrozenSet[Vertex]:
        return frozenset(self._adj)

    @property
    def edges(self) -> FrozenSet[FrozenSet[Vertex]]:
        """Edges as frozensets, suitable for set-algebra comparisons."""
        out: Set[FrozenSet[Vertex]] = set()
        for u, nbrs in self._adj.items():
            for v in nbrs:
                out.add(frozenset((u, v)))
        return frozenset(out)

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """True iff the undirected edge ``{u, v}`` exists."""
        return u in self._adj and v in self._adj[u]

    def neighbors(self, v: Vertex) -> FrozenSet[Vertex]:
        """The adjacency set of ``v``."""
        return frozenset(self._adj[v])

    def degree(self, v: Vertex) -> int:
        """Number of neighbours of ``v``."""
        return len(self._adj[v])

    def number_of_vertices(self) -> int:
        """Vertex count."""
        return len(self._adj)

    def number_of_edges(self) -> int:
        """Edge count (undirected, no duplicates)."""
        return len(self.edges)

    def __contains__(self, v: Vertex) -> bool:
        return v in self._adj

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._adj)

    def __len__(self) -> int:
        return len(self._adj)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self.vertices == other.vertices and self.edges == other.edges

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Graph(|V|={self.number_of_vertices()}, "
            f"|E|={self.number_of_edges()})"
        )

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def subgraph(self, keep: Iterable[Vertex]) -> "Graph":
        """Return the induced subgraph on ``keep`` (paper notation ``G[W']``)."""
        keep_set = set(keep)
        missing = keep_set - set(self._adj)
        if missing:
            raise KeyError(f"vertices not in graph: {sorted(missing, key=repr)}")
        sub = Graph(vertices=keep_set)
        for u in keep_set:
            for v in self._adj[u]:
                if v in keep_set:
                    sub.add_edge(u, v)
        return sub

    def complement(self) -> "Graph":
        """Return the complement graph (used by clique-based cross-checks)."""
        verts = sorted(self._adj, key=repr)
        comp = Graph(vertices=verts)
        for i, u in enumerate(verts):
            for v in verts[i + 1:]:
                if v not in self._adj[u]:
                    comp.add_edge(u, v)
        return comp

    def is_independent_set(self, candidate: Iterable[Vertex]) -> bool:
        """True iff no two vertices of ``candidate`` are adjacent."""
        cand = list(candidate)
        cand_set = set(cand)
        if len(cand) != len(cand_set):
            return False
        for u in cand_set:
            if u not in self._adj:
                return False
            if self._adj[u] & cand_set:
                return False
        return True

    def is_clique(self, candidate: Iterable[Vertex]) -> bool:
        """True iff every pair of vertices in ``candidate`` is adjacent."""
        cand = sorted(set(candidate), key=repr)
        for i, u in enumerate(cand):
            for v in cand[i + 1:]:
                if not self.has_edge(u, v):
                    return False
        return True

    def connected_components(self) -> list[FrozenSet[Vertex]]:
        """Connected components, each returned as a frozenset of vertices."""
        seen: Set[Vertex] = set()
        components: list[FrozenSet[Vertex]] = []
        for root in self._adj:
            if root in seen:
                continue
            stack = [root]
            comp: Set[Vertex] = set()
            while stack:
                v = stack.pop()
                if v in comp:
                    continue
                comp.add(v)
                stack.extend(self._adj[v] - comp)
            seen |= comp
            components.append(frozenset(comp))
        return components
