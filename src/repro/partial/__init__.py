"""Multi-message partial-gradient uploads (refs [19]-[21])."""

from .multimessage import (
    DeadlineComparison,
    MessageArrival,
    MultiMessageRound,
    collect_by_deadline,
    collect_first_k_messages,
    recovery_vs_deadline,
)

__all__ = [
    "MessageArrival",
    "MultiMessageRound",
    "collect_by_deadline",
    "collect_first_k_messages",
    "DeadlineComparison",
    "recovery_vs_deadline",
]
