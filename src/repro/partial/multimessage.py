"""Multi-message gradient uploads — utilizing stragglers' partial work.

The paper's related work ([19]-[21], Ozfatura et al.) observes that a
coded scheme wastes whatever a straggler *did* compute: an IS-GC worker
uploads one summed payload only after finishing all ``c`` partitions.
The multi-message alternative uploads each partition's gradient as soon
as it is computed, so a slow worker still contributes its early
partitions.

This module implements the uncoded multi-message variant at round
level:

* :class:`MultiMessageRound` — simulates per-message arrival times:
  worker ``i``'s ``j``-th message (its ``j``-th stored partition) lands
  at ``start + delay_i + base + (j+1)·per_partition + (j+1)·upload``
  (computation and uploads are serialized per worker);
* collectors turn an arrival stream into a recovered partition set:
  :func:`collect_by_deadline` and :func:`collect_first_k_messages`;
* :func:`recovery_vs_deadline` — the head-to-head with IS-GC: at each
  deadline, how many *distinct* partitions does each approach recover?

Trade-off to expect: multi-message recovers earlier (partial work
counts) but ships up to ``c×`` the bytes; IS-GC sends one payload per
worker but only after the full local computation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Tuple

import numpy as np

from ..core.decoders import decoder_for
from ..core.placement import Placement
from ..env import make_compute_model, make_delay_model, make_network_model
from ..exceptions import ConfigurationError, SimulationError
from ..simulation.cluster import ComputeModel
from ..simulation.network import NetworkModel
from ..straggler.models import DelayModel


@dataclass(frozen=True)
class MessageArrival:
    """One per-partition upload landing at the master."""

    worker: int
    partition: int
    time: float


class MultiMessageRound:
    """Simulates one round of per-partition uploads."""

    def __init__(
        self,
        placement: Placement,
        compute: ComputeModel | None = None,
        network: NetworkModel | None = None,
        delay_model: DelayModel | None = None,
        gradient_elements: int = 10_000,
        rng: np.random.Generator | None = None,
    ):
        if not isinstance(placement, Placement):
            from ..core.scheme import as_placement

            placement = as_placement(placement)
        self._placement = placement
        self._compute = compute if compute is not None else make_compute_model()
        self._network = network if network is not None else make_network_model()
        self._delays = delay_model if delay_model is not None else make_delay_model("none")
        self._elements = gradient_elements
        # Entropy-seeded fallback is the documented default: callers
        # wanting replay inject a seeded Generator.
        self._rng = rng if rng is not None else np.random.default_rng()  # repro: noqa[DET003]

    @property
    def placement(self) -> Placement:
        return self._placement

    def messages_per_round(self) -> int:
        """Total messages per round: one per (worker, partition)."""
        return self._placement.num_workers * self._placement.partitions_per_worker

    def bytes_multiplier(self) -> int:
        """Upload volume vs IS-GC: one full vector per partition."""
        return self._placement.partitions_per_worker

    def simulate(self, step: int) -> List[MessageArrival]:
        """All message arrivals for one round, sorted by time."""
        upload_t = self._network.transfer_time(self._elements)
        arrivals: List[MessageArrival] = []
        for worker in range(self._placement.num_workers):
            straggle = self._delays.sample(worker, step, self._rng)
            base = self._compute.base + straggle
            for j, partition in enumerate(self._placement.partitions_of(worker)):
                compute_done = base + (j + 1) * self._compute.per_partition
                # Uploads are serialized behind the computation.
                landed = compute_done + (j + 1) * upload_t
                arrivals.append(
                    MessageArrival(worker=worker, partition=partition, time=landed)
                )
        arrivals.sort(key=lambda m: (m.time, m.worker, m.partition))
        return arrivals


def collect_by_deadline(
    arrivals: Sequence[MessageArrival], deadline: float
) -> Tuple[FrozenSet[int], float]:
    """Distinct partitions from messages landing by ``deadline``.

    If nothing lands in time the master waits for the first message
    (it can never proceed empty-handed), mirroring
    :class:`~repro.simulation.DeadlinePolicy`.
    """
    if not arrivals:
        raise SimulationError("no arrivals to collect")
    if deadline < 0:
        raise ConfigurationError(f"deadline must be >= 0, got {deadline}")
    within = [m for m in arrivals if m.time <= deadline]
    if not within:
        first = arrivals[0]
        return frozenset({first.partition}), first.time
    recovered = frozenset(m.partition for m in within)
    return recovered, deadline


def collect_first_k_messages(
    arrivals: Sequence[MessageArrival], k: int
) -> Tuple[FrozenSet[int], float]:
    """Distinct partitions among the first ``k`` messages."""
    if not arrivals:
        raise SimulationError("no arrivals to collect")
    if not 1 <= k <= len(arrivals):
        raise ConfigurationError(
            f"need 1 <= k <= {len(arrivals)}, got {k}"
        )
    taken = arrivals[:k]
    return frozenset(m.partition for m in taken), taken[-1].time


@dataclass(frozen=True)
class DeadlineComparison:
    """Recovery at one deadline: multi-message vs coded IS-GC."""

    deadline: float
    multimessage_recovered: float
    isgc_recovered: float


def recovery_vs_deadline(
    placement: Placement,
    deadlines: Sequence[float],
    trials: int = 300,
    compute: ComputeModel | None = None,
    network: NetworkModel | None = None,
    delay_model: DelayModel | None = None,
    gradient_elements: int = 10_000,
    seed: int = 0,
) -> List[DeadlineComparison]:
    """Mean distinct-partition recovery vs deadline for both approaches.

    IS-GC side: worker ``i``'s single payload lands at
    ``delay_i + base + c·per_partition + upload``; the master decodes
    the conflict graph over the workers that made the deadline.
    Multi-message side: per-partition arrivals, distinct-union
    collection.  Both replay identical straggler draws.
    """
    if not deadlines:
        raise ConfigurationError("need at least one deadline")
    compute = compute if compute is not None else make_compute_model()
    network = network if network is not None else make_network_model()
    delay_model = delay_model if delay_model is not None else make_delay_model("none")

    c = placement.partitions_per_worker
    n = placement.num_workers
    upload_t = network.transfer_time(gradient_elements)
    decoder = decoder_for(placement, rng=np.random.default_rng(seed + 1))
    round_sim = MultiMessageRound(
        placement, compute=compute, network=network,
        delay_model=delay_model, gradient_elements=gradient_elements,
        rng=np.random.default_rng(seed),
    )
    # Separate RNG streams would desynchronise the straggler draws, so
    # delays are drawn once per trial and shared by both sides.
    rng = np.random.default_rng(seed)

    sums = {d: [0.0, 0.0] for d in deadlines}
    for trial in range(trials):
        straggles = {
            w: delay_model.sample(w, trial, rng) for w in range(n)
        }

        mm_arrivals: List[MessageArrival] = []
        isgc_arrival_time: Dict[int, float] = {}
        for worker in range(n):
            base = compute.base + straggles[worker]
            for j, partition in enumerate(placement.partitions_of(worker)):
                landed = base + (j + 1) * compute.per_partition + (j + 1) * upload_t
                mm_arrivals.append(MessageArrival(worker, partition, landed))
            isgc_arrival_time[worker] = (
                base + c * compute.per_partition + upload_t
            )
        mm_arrivals.sort(key=lambda m: (m.time, m.worker, m.partition))

        for deadline in deadlines:
            recovered_mm, _ = collect_by_deadline(mm_arrivals, deadline)
            sums[deadline][0] += len(recovered_mm)

            available = [
                w for w, t in isgc_arrival_time.items() if t <= deadline
            ]
            if available:
                sums[deadline][1] += decoder.decode(available).num_recovered
    return [
        DeadlineComparison(
            deadline=d,
            multimessage_recovered=sums[d][0] / trials,
            isgc_recovered=sums[d][1] / trials,
        )
        for d in deadlines
    ]
