"""Model evaluation utilities.

The paper reports training loss; downstream users also want accuracy
and calibration-style summaries.  These helpers work on any model
exposing ``predict`` and the flat-parameter interface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..exceptions import TrainingError
from .datasets import Dataset
from .models import Model


@dataclass(frozen=True)
class EvaluationReport:
    """Loss + accuracy (+ per-class accuracy for classifiers)."""

    loss: float
    accuracy: float | None
    per_class_accuracy: Dict[int, float]

    def describe(self) -> str:
        """One-line loss/accuracy summary."""
        if self.accuracy is None:
            return f"loss {self.loss:.4f}"
        return f"loss {self.loss:.4f}, accuracy {100 * self.accuracy:.1f}%"


def held_out_loss(
    model: Model,
    eval_data: Dataset | None,
    fallback_losses: "tuple[float, ...] | list[float] | None" = (),
) -> float:
    """The loss every training loop reports for one step.

    The paper evaluates on a fixed held-out batch so scheme comparisons
    are exact; when no ``eval_data`` is given the mean of this step's
    *pre-update* partition batch losses stands in, and when the caller
    has no batch losses either (the actor path, local-update rounds)
    the loss is NaN rather than a misleading number.

    Historically each trainer inlined its own variant of this — the
    async trainer even evaluated a single *post-update* batch loss as
    its fallback.  Centralising the rule here makes every loop use the
    same eval batch and the same reduction.
    """
    if eval_data is not None:
        return float(model.loss(eval_data.features, eval_data.labels))
    if fallback_losses is not None and len(fallback_losses) > 0:
        return float(np.mean(fallback_losses))
    return float("nan")


def evaluate(model: Model, dataset: Dataset) -> EvaluationReport:
    """Loss (all models) plus accuracy when the model can classify."""
    if dataset.num_samples == 0:
        raise TrainingError("cannot evaluate on an empty dataset")
    loss = model.loss(dataset.features, dataset.labels)

    predict = getattr(model, "predict", None)
    if predict is None:
        return EvaluationReport(loss=loss, accuracy=None, per_class_accuracy={})
    predictions = np.asarray(predict(dataset.features))
    labels = np.asarray(dataset.labels)
    if not np.issubdtype(labels.dtype, np.integer):
        # Regression-style labels: accuracy is meaningless.
        return EvaluationReport(loss=loss, accuracy=None, per_class_accuracy={})

    accuracy = float(np.mean(predictions == labels))
    per_class: Dict[int, float] = {}
    for cls in np.unique(labels):
        mask = labels == cls
        per_class[int(cls)] = float(np.mean(predictions[mask] == cls))
    return EvaluationReport(
        loss=loss, accuracy=accuracy, per_class_accuracy=per_class
    )


def accuracy_curve(
    model: Model,
    parameter_snapshots: list[np.ndarray],
    dataset: Dataset,
) -> list[float]:
    """Accuracy at each parameter snapshot (restores the model after)."""
    if not parameter_snapshots:
        raise TrainingError("no parameter snapshots given")
    original = model.get_parameters()
    curve = []
    try:
        for params in parameter_snapshots:
            model.set_parameters(params)
            report = evaluate(model, dataset)
            if report.accuracy is None:
                raise TrainingError(
                    "accuracy_curve needs a classifier with integer labels"
                )
            curve.append(report.accuracy)
    finally:
        model.set_parameters(original)
    return curve
