"""Training strategies: the schemes compared in the paper.

A strategy bundles (placement, wait policy, encode, decode) behind one
interface so the trainer — and the experiment harnesses — can swap
schemes freely:

* :class:`SyncSGDStrategy` — ``c = 1``, wait for all ``n`` workers.
* :class:`ISSGDStrategy` — ``c = 1``, wait for the ``w`` fastest
  workers, ignore the rest (k-sync / fastest-k SGD).
* :class:`ClassicGCStrategy` — gradient coding with exact recovery;
  must wait for ``n - c + 1`` workers.
* :class:`ISGCStrategy` — the paper's contribution: summation coding
  over any placement, wait for any ``w`` workers, decode the maximal
  partial sum via the scheme's conflict-graph decoder.

The decode contract returns the *sum* of recovered per-partition
gradients plus the recovered set; the trainer divides by the count so
every scheme performs an unbiased mean-gradient update (Assumption 2).
"""

from __future__ import annotations

import abc
from typing import Dict, FrozenSet, Iterable, Mapping, Tuple

import numpy as np

from ..codes.gc_scheme import ClassicGradientCode
from ..core.coding import SummationCode
from ..core.scheme import make_placement
from ..core.decoders import Decoder, decoder_for
from ..core.placement import Placement
from ..exceptions import ConfigurationError
from ..parallel.cache import DecodeCache
from ..simulation.policies import WaitForAll, WaitForK, WaitPolicy
from ..types import DecodeResult

GradientMap = Mapping[int, np.ndarray]


class TrainingStrategy(abc.ABC):
    """One straggler-mitigation scheme, end to end."""

    name: str = "abstract"

    def __init__(self, placement: Placement, policy: WaitPolicy):
        self._placement = placement
        self._policy = policy

    @property
    def placement(self) -> Placement:
        return self._placement

    @property
    def policy(self) -> WaitPolicy:
        return self._policy

    @abc.abstractmethod
    def encode(self, partition_gradients: GradientMap) -> Dict[int, np.ndarray]:
        """Worker payloads from per-partition gradients."""

    def encode_worker_payload(
        self, worker: int, partition_gradients: GradientMap
    ) -> np.ndarray:
        """One worker's payload from *its own* partition gradients.

        Used by the actor runtime, where each worker computes only the
        gradients of the partitions it stores.  The default encodes just
        that worker; code-backed strategies override for efficiency.
        """
        return self.encode(dict(partition_gradients))[worker]

    @abc.abstractmethod
    def decode(
        self,
        available_workers: Iterable[int],
        payloads: GradientMap,
    ) -> Tuple[np.ndarray, FrozenSet[int]]:
        """(sum of recovered per-partition gradients, recovered set)."""

    def describe(self) -> str:
        """Short human-readable identification of the scheme."""
        return (
            f"{self.name} (n={self._placement.num_workers}, "
            f"c={self._placement.partitions_per_worker})"
        )


class SyncSGDStrategy(TrainingStrategy):
    """Synchronous SGD: one partition per worker, wait for everyone."""

    name = "sync-sgd"

    def __init__(self, num_workers: int):
        placement = make_placement(
            "cr", num_workers=num_workers, partitions_per_worker=1
        )
        super().__init__(placement, WaitForAll(num_workers))

    def encode(self, partition_gradients: GradientMap) -> Dict[int, np.ndarray]:
        # c = 1: worker i's payload is exactly partition i's gradient.
        return {
            w: np.asarray(partition_gradients[w], dtype=float)
            for w in range(self._placement.num_workers)
        }

    def encode_worker_payload(self, worker, partition_gradients):
        return np.asarray(partition_gradients[worker], dtype=float)

    def decode(self, available_workers, payloads):
        workers = sorted(available_workers)
        n = self._placement.num_workers
        if len(workers) != n:
            raise ConfigurationError(
                f"sync SGD requires all {n} workers, got {len(workers)}"
            )
        total = sum(np.asarray(payloads[w], dtype=float) for w in workers)
        return total, frozenset(range(n))


class ISSGDStrategy(TrainingStrategy):
    """Ignore-straggler SGD: sum whatever the ``w`` fastest sent."""

    name = "is-sgd"

    def __init__(self, num_workers: int, wait_for: int, policy: WaitPolicy | None = None):
        if not 1 <= wait_for <= num_workers:
            raise ConfigurationError(
                f"need 1 <= w <= n, got w={wait_for}, n={num_workers}"
            )
        placement = make_placement(
            "cr", num_workers=num_workers, partitions_per_worker=1
        )
        super().__init__(placement, policy or WaitForK(wait_for))
        self._w = wait_for

    @property
    def wait_for(self) -> int:
        return self._w

    def encode(self, partition_gradients: GradientMap) -> Dict[int, np.ndarray]:
        return {
            w: np.asarray(partition_gradients[w], dtype=float)
            for w in range(self._placement.num_workers)
        }

    def encode_worker_payload(self, worker, partition_gradients):
        return np.asarray(partition_gradients[worker], dtype=float)

    def decode(self, available_workers, payloads):
        workers = sorted(available_workers)
        total = sum(np.asarray(payloads[w], dtype=float) for w in workers)
        return total, frozenset(workers)


class ClassicGCStrategy(TrainingStrategy):
    """Classic gradient coding: exact recovery from ``n - c + 1`` workers."""

    name = "gc"

    def __init__(
        self,
        placement: Placement,
        rng: np.random.Generator | None = None,
    ):
        self._code = ClassicGradientCode(placement, rng=rng)
        super().__init__(placement, WaitForK(self._code.required_workers))

    @property
    def code(self) -> ClassicGradientCode:
        return self._code

    def encode(self, partition_gradients: GradientMap) -> Dict[int, np.ndarray]:
        return self._code.encode(partition_gradients)

    def encode_worker_payload(self, worker, partition_gradients):
        return self._code.encode_worker(worker, partition_gradients)

    def decode(self, available_workers, payloads):
        total = self._code.decode(available_workers, payloads)
        n = self._placement.num_workers
        return total, frozenset(range(n))


class ISGCStrategy(TrainingStrategy):
    """IS-GC: summation code + conflict-graph decoding, arbitrary ``w``."""

    name = "is-gc"

    def __init__(
        self,
        placement: Placement,
        wait_for: int,
        rng: np.random.Generator | None = None,
        decoder: Decoder | None = None,
        policy: WaitPolicy | None = None,
        cache: "DecodeCache | None" = None,
    ):
        n = placement.num_workers
        if not 1 <= wait_for <= n:
            raise ConfigurationError(
                f"need 1 <= w <= n, got w={wait_for}, n={n}"
            )
        super().__init__(placement, policy or WaitForK(wait_for))
        self._w = wait_for
        self._code = SummationCode(placement)
        self._decoder = decoder or decoder_for(placement, rng=rng, cache=cache)
        if decoder is not None and cache is not None:
            decoder.attach_cache(cache)
        self.name = f"is-gc-{placement.scheme}"
        #: The most recent DecodeResult, for observability (trainers
        #: read num_searches / recovered counts from here).
        self.last_decode: DecodeResult | None = None

    @property
    def wait_for(self) -> int:
        return self._w

    @property
    def decoder(self) -> Decoder:
        return self._decoder

    @property
    def decode_cache(self) -> "DecodeCache | None":
        """The decoder's :class:`DecodeCache`, if one is attached."""
        return self._decoder.cache

    def encode(self, partition_gradients: GradientMap) -> Dict[int, np.ndarray]:
        return self._code.encode(partition_gradients)

    def encode_worker_payload(self, worker, partition_gradients):
        return self._code.encode_worker(worker, partition_gradients)

    def decode(self, available_workers, payloads):
        decision = self._decoder.decode(available_workers)
        self.last_decode = decision
        total = self._code.decode_sum(decision, payloads)
        return total, decision.recovered_partitions
