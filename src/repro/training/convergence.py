"""Convergence tracking utilities."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..exceptions import ConfigurationError


class LossTracker:
    """Tracks a loss curve and decides when training is "done".

    ``threshold`` — training stops once the (optionally smoothed) loss
    drops to or below it, the paper's stopping rule ("train the model
    until the training loss reaches a given threshold").
    """

    def __init__(
        self,
        threshold: Optional[float] = None,
        smoothing_window: int = 1,
    ):
        if smoothing_window <= 0:
            raise ConfigurationError(
                f"smoothing_window must be positive, got {smoothing_window}"
            )
        self._threshold = threshold
        self._window = smoothing_window
        self._losses: List[float] = []

    @property
    def losses(self) -> List[float]:
        return list(self._losses)

    @property
    def threshold(self) -> Optional[float]:
        return self._threshold

    @property
    def window(self) -> int:
        return self._window

    @property
    def num_steps(self) -> int:
        return len(self._losses)

    def load_losses(self, losses) -> None:
        """Replace the recorded curve (checkpoint restore)."""
        self._losses = [float(v) for v in losses]

    def record(self, loss: float) -> None:
        """Append one loss value; rejects NaN/inf (divergence)."""
        if not np.isfinite(loss):
            raise ConfigurationError(
                f"non-finite loss {loss} at step {len(self._losses)}: "
                "training diverged (lower the learning rate)"
            )
        self._losses.append(float(loss))

    def smoothed_loss(self) -> float:
        """Mean loss over the trailing smoothing window."""
        if not self._losses:
            raise ConfigurationError("no losses recorded yet")
        tail = self._losses[-self._window:]
        return float(np.mean(tail))

    def reached_threshold(self) -> bool:
        """Whether the smoothed loss is at or below the threshold."""
        if self._threshold is None or not self._losses:
            return False
        return self.smoothed_loss() <= self._threshold

    def best_loss(self) -> float:
        """The minimum loss recorded so far."""
        if not self._losses:
            raise ConfigurationError("no losses recorded yet")
        return float(min(self._losses))

    def steps_to_threshold(self) -> Optional[int]:
        """1-based first step whose smoothed loss hit the threshold."""
        if self._threshold is None:
            return None
        for i in range(len(self._losses)):
            lo = max(0, i - self._window + 1)
            if float(np.mean(self._losses[lo:i + 1])) <= self._threshold:
                return i + 1
        return None
