"""Asynchronous SGD — the other end of the paper's design space.

Sec. I positions IS-GC between two extremes: synchronous SGD (wait for
everyone; exact but slow under stragglers) and *asynchronous* SGD
(apply each worker's gradient the moment it arrives; never waits, but
suffers stale gradients and high variance, "worse performance
guarantees … because of the high variance in the gradients" [3], [4]).

This module implements the asynchronous extreme on the same
discrete-event substrate so all three regimes can be compared under
identical delay traces:

* each worker loops independently: fetch parameters → compute the
  gradient of its own partition's current mini-batch → upload;
* the master applies every arriving gradient immediately
  (``β ← β − η·g``), tagging it with its *staleness* — how many master
  updates happened since the worker fetched;
* per-update records mirror :class:`~repro.types.StepRecord` so the
  analysis layer works unchanged.

The event loop lives in :meth:`~repro.engine.core.RoundEngine.run_updates`
over an :class:`~repro.engine.backends.AsyncArrivalBackend`; this class
is a compatibility shim.  One deliberate behaviour fix rode along with
the refactor: when no ``eval_data`` is given, the reported loss is now
the *pre-update* batch loss (matching every synchronous loop) instead
of the historical post-update re-evaluation of the same batch.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..engine.backends import AsyncArrivalBackend
from ..engine.core import RoundEngine
from ..engine.rules import AsyncUpdate
from ..exceptions import TrainingError
from ..obs.registry import MetricsRegistry
from ..simulation.network import NetworkModel
from ..simulation.cluster import ComputeModel
from ..straggler.models import DelayModel
from ..types import AsyncSummary, AsyncUpdateRecord
from .datasets import BatchStream, Dataset
from .models import Model
from .optimizers import SGD

__all__ = ["AsyncSGDTrainer", "AsyncSummary", "AsyncUpdateRecord"]


class AsyncSGDTrainer:
    """Event-driven asynchronous SGD over one partition per worker."""

    def __init__(
        self,
        model: Model,
        streams: Sequence[BatchStream],
        optimizer: SGD,
        compute: ComputeModel | None = None,
        network: NetworkModel | None = None,
        delay_model: DelayModel | None = None,
        eval_data: Dataset | None = None,
        rng: np.random.Generator | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        if not streams:
            raise TrainingError("need at least one batch stream")
        self._model = model
        # Async has no synchronous rounds, so it feeds the metrics
        # registry directly instead of a RoundTracer (no-op by default).
        self._engine = RoundEngine(
            model=model,
            streams=streams,
            strategy=_OnePartitionPerWorker(len(streams)),
            backend=AsyncArrivalBackend(
                compute=compute,
                network=network,
                delay_model=delay_model,
                rng=rng,
                metrics=metrics,
            ),
            rule=AsyncUpdate(optimizer),
            eval_data=eval_data,
        )

    @property
    def engine(self) -> RoundEngine:
        """The underlying round engine."""
        return self._engine

    @property
    def records(self) -> List[AsyncUpdateRecord]:
        return list(self._engine.async_records)

    # ------------------------------------------------------------------
    def run(self, max_updates: int) -> AsyncSummary:
        """Simulate until the master has applied ``max_updates``."""
        return self._engine.run_updates(max_updates)


class _OnePartitionPerWorker:
    """Minimal strategy stand-in for the async path.

    The async extreme has no coding: worker ``i`` holds partition ``i``
    and nothing is ever encoded or decoded.  The engine only reads
    ``placement.num_partitions`` at construction time.
    """

    name = "async-sgd"

    def __init__(self, num_workers: int):
        self.placement = _TrivialPlacement(num_workers)


class _TrivialPlacement:
    def __init__(self, num_workers: int):
        self.num_workers = num_workers
        self.num_partitions = num_workers
        self.partitions_per_worker = 1
        self.scheme = "async"
