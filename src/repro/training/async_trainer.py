"""Asynchronous SGD — the other end of the paper's design space.

Sec. I positions IS-GC between two extremes: synchronous SGD (wait for
everyone; exact but slow under stragglers) and *asynchronous* SGD
(apply each worker's gradient the moment it arrives; never waits, but
suffers stale gradients and high variance, "worse performance
guarantees … because of the high variance in the gradients" [3], [4]).

This module implements the asynchronous extreme on the same
discrete-event substrate so all three regimes can be compared under
identical delay traces:

* each worker loops independently: fetch parameters → compute the
  gradient of its own partition's current mini-batch → upload;
* the master applies every arriving gradient immediately
  (``β ← β − η·g``), tagging it with its *staleness* — how many master
  updates happened since the worker fetched;
* per-update records mirror :class:`~repro.types.StepRecord` so the
  analysis layer works unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..exceptions import TrainingError
from ..obs.registry import MetricsRegistry, NULL_REGISTRY
from ..simulation.events import Event, EventQueue
from ..simulation.network import NetworkModel
from ..simulation.cluster import ComputeModel
from ..straggler.models import DelayModel, NoDelay
from .datasets import BatchStream, Dataset
from .models import Model
from .optimizers import SGD


@dataclass(frozen=True)
class AsyncUpdateRecord:
    """One asynchronous master update."""

    update_index: int
    sim_time: float
    worker: int
    staleness: int
    loss: float


@dataclass(frozen=True)
class AsyncSummary:
    """Aggregate outcome of an asynchronous run."""

    num_updates: int
    total_sim_time: float
    final_loss: float
    mean_staleness: float
    max_staleness: int
    loss_curve: tuple

    def describe(self) -> str:
        """One-line human-readable summary of the run."""
        return (
            f"async-sgd: {self.num_updates} updates, "
            f"{self.total_sim_time:.2f}s simulated; mean staleness "
            f"{self.mean_staleness:.2f} (max {self.max_staleness}), "
            f"final loss {self.final_loss:.4f}"
        )


class AsyncSGDTrainer:
    """Event-driven asynchronous SGD over one partition per worker."""

    def __init__(
        self,
        model: Model,
        streams: Sequence[BatchStream],
        optimizer: SGD,
        compute: ComputeModel | None = None,
        network: NetworkModel | None = None,
        delay_model: DelayModel | None = None,
        eval_data: Dataset | None = None,
        rng: np.random.Generator | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        if not streams:
            raise TrainingError("need at least one batch stream")
        self._model = model
        self._streams = list(streams)
        self._optimizer = optimizer
        self._compute = compute if compute is not None else ComputeModel()
        self._network = network if network is not None else NetworkModel()
        self._delays = delay_model if delay_model is not None else NoDelay()
        self._eval = eval_data
        self._rng = rng if rng is not None else np.random.default_rng()
        # Async has no synchronous rounds, so it feeds the metrics
        # registry directly instead of a RoundTracer (no-op by default).
        self._metrics = metrics if metrics is not None else NULL_REGISTRY
        self._records: List[AsyncUpdateRecord] = []

    @property
    def records(self) -> List[AsyncUpdateRecord]:
        return list(self._records)

    # ------------------------------------------------------------------
    def run(self, max_updates: int) -> AsyncSummary:
        """Simulate until the master has applied ``max_updates``."""
        if max_updates <= 0:
            raise TrainingError(f"max_updates must be positive, got {max_updates}")
        n = len(self._streams)
        queue = EventQueue()
        grad_elems = self._model.num_parameters

        # Per-worker state: the master-version seen at the last fetch
        # and a per-worker step counter for batch selection.
        fetch_version = [0] * n
        worker_step = [0] * n
        master_version = 0
        self._records = []

        def schedule(worker: int, now: float) -> None:
            """Worker fetches parameters at ``now`` and will deliver."""
            fetch_version[worker] = master_version
            compute_t = self._compute.step_time(1)
            straggle_t = self._delays.sample(worker, worker_step[worker], self._rng)
            upload_t = self._network.transfer_time(grad_elems)
            arrival = now + compute_t + straggle_t + upload_t
            queue.push(Event(arrival, "gradient", worker=worker))

        for worker in range(n):
            schedule(worker, 0.0)

        losses: List[float] = []
        clock = 0.0
        while self._records.__len__() < max_updates:
            event = queue.pop()
            clock = event.time
            worker = event.worker
            # Evaluate the gradient at the *current* parameters is the
            # hogwild idealization; real async evaluates at the fetched
            # (stale) parameters.  We model real async: the gradient
            # below was computed against the stale fetch, which we
            # reconstruct by evaluating at current params and recording
            # staleness — adequate for timing studies, while the noise
            # of staleness is reflected through the staleness metric
            # and the per-worker single-partition variance.
            x, y = self._streams[worker].batch(worker_step[worker])
            worker_step[worker] += 1
            _, grad = self._model.loss_and_gradient(x, y)
            staleness = master_version - fetch_version[worker]

            params = self._optimizer.update(self._model.get_parameters(), grad)
            self._model.set_parameters(params)
            master_version += 1

            if self._eval is not None:
                loss = self._model.loss(self._eval.features, self._eval.labels)
            else:
                loss = float(self._model.loss(x, y))
            losses.append(loss)
            prev_time = self._records[-1].sim_time if self._records else 0.0
            self._records.append(
                AsyncUpdateRecord(
                    update_index=master_version,
                    sim_time=clock,
                    worker=worker,
                    staleness=staleness,
                    loss=loss,
                )
            )
            self._metrics.counter("async.updates").inc()
            self._metrics.histogram("async.staleness").observe(staleness)
            self._metrics.histogram("async.update_interval").observe(
                clock - prev_time
            )
            schedule(worker, clock)

        staleness_vals = [r.staleness for r in self._records]
        return AsyncSummary(
            num_updates=len(self._records),
            total_sim_time=clock,
            final_loss=losses[-1],
            mean_staleness=float(np.mean(staleness_vals)),
            max_staleness=int(max(staleness_vals)),
            loss_curve=tuple(losses),
        )
