"""Local-update SGD over coded placements.

Communication-reduction technique from the federated/local-SGD
literature: instead of uploading after every mini-batch, each partition
performs ``tau`` local SGD steps and the *parameter delta* is what gets
aggregated.  It composes with IS-GC because the per-partition local
trajectory is deterministic given the broadcast parameters and the
seeded batch stream — every replica of a partition computes the *same*
delta, so workers can upload the plain sum of their partitions' deltas
and the master decodes exactly as with gradients (the delta plays the
role of ``g_i``).

Cost/benefit: τ× fewer communication rounds (and τ× fewer straggler
waits) per epoch, against the client-drift of local updates.

The delta computation lives in
:class:`~repro.engine.rules.LocalUpdate`; this class is a compatibility
shim pairing it with the engine's flat backend.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..engine.backends import FlatBackend
from ..engine.core import RoundEngine
from ..engine.rules import LocalUpdate
from ..exceptions import TrainingError
from ..simulation.cluster import ClusterSimulator
from ..types import StepRecord, TrainingSummary
from .datasets import BatchStream, Dataset
from .models import Model
from .strategies import TrainingStrategy


class LocalUpdateTrainer:
    """IS-GC (or any strategy) over per-partition local-update deltas."""

    def __init__(
        self,
        model: Model,
        streams: Sequence[BatchStream],
        strategy: TrainingStrategy,
        cluster: ClusterSimulator,
        local_steps: int,
        local_lr: float,
        eval_data: Optional[Dataset] = None,
    ):
        n = strategy.placement.num_partitions
        if len(streams) != n:
            raise TrainingError(
                f"strategy expects {n} partitions, got {len(streams)} streams"
            )
        if local_steps <= 0:
            raise TrainingError(
                f"local_steps must be positive, got {local_steps}"
            )
        if local_lr <= 0:
            raise TrainingError(f"local_lr must be positive, got {local_lr}")
        self._model = model
        self._rule = LocalUpdate(local_steps, local_lr)
        self._engine = RoundEngine(
            model=model,
            streams=streams,
            strategy=strategy,
            backend=FlatBackend(cluster),
            rule=self._rule,
            eval_data=eval_data,
        )

    @property
    def engine(self) -> RoundEngine:
        """The underlying round engine."""
        return self._engine

    @property
    def local_steps(self) -> int:
        return self._rule.local_steps

    @property
    def records(self) -> List[StepRecord]:
        return list(self._engine.records)

    # ------------------------------------------------------------------
    def _partition_delta(
        self, pid: int, round_index: int, start: np.ndarray
    ) -> np.ndarray:
        """τ local SGD steps on partition ``pid``; returns −Δ."""
        return self._rule.partition_delta(self._engine, pid, round_index, start)

    def run(
        self,
        max_rounds: int,
        loss_threshold: Optional[float] = None,
    ) -> TrainingSummary:
        """Run ``max_rounds`` communication rounds of τ local steps."""
        if max_rounds <= 0:
            raise TrainingError(
                f"max_rounds must be positive, got {max_rounds}"
            )
        return self._engine.run(
            max_rounds, loss_threshold=loss_threshold, smoothing_window=3
        )
