"""Local-update SGD over coded placements.

Communication-reduction technique from the federated/local-SGD
literature: instead of uploading after every mini-batch, each partition
performs ``tau`` local SGD steps and the *parameter delta* is what gets
aggregated.  It composes with IS-GC because the per-partition local
trajectory is deterministic given the broadcast parameters and the
seeded batch stream — every replica of a partition computes the *same*
delta, so workers can upload the plain sum of their partitions' deltas
and the master decodes exactly as with gradients (the delta plays the
role of ``g_i``).

Cost/benefit: τ× fewer communication rounds (and τ× fewer straggler
waits) per epoch, against the client-drift of local updates.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..exceptions import TrainingError
from ..simulation.cluster import ClusterSimulator
from ..types import StepRecord, TrainingSummary
from .convergence import LossTracker
from .datasets import BatchStream, Dataset
from .models import Model
from .strategies import TrainingStrategy


class LocalUpdateTrainer:
    """IS-GC (or any strategy) over per-partition local-update deltas."""

    def __init__(
        self,
        model: Model,
        streams: Sequence[BatchStream],
        strategy: TrainingStrategy,
        cluster: ClusterSimulator,
        local_steps: int,
        local_lr: float,
        eval_data: Optional[Dataset] = None,
    ):
        n = strategy.placement.num_partitions
        if len(streams) != n:
            raise TrainingError(
                f"strategy expects {n} partitions, got {len(streams)} streams"
            )
        if local_steps <= 0:
            raise TrainingError(
                f"local_steps must be positive, got {local_steps}"
            )
        if local_lr <= 0:
            raise TrainingError(f"local_lr must be positive, got {local_lr}")
        self._model = model
        self._streams = list(streams)
        self._strategy = strategy
        self._cluster = cluster
        self._tau = local_steps
        self._lr = local_lr
        self._eval = eval_data
        self.records: List[StepRecord] = []

    @property
    def local_steps(self) -> int:
        return self._tau

    # ------------------------------------------------------------------
    def _partition_delta(
        self, pid: int, round_index: int, start: np.ndarray
    ) -> np.ndarray:
        """τ local SGD steps on partition ``pid``; returns −Δ.

        The sign convention matches gradients: the master *subtracts*
        the aggregated quantity scaled by its own step size of 1, so we
        return ``start − final`` ("the direction to move along").
        Batches are drawn at global steps ``round·τ .. round·τ+τ−1`` so
        every replica of the partition sees the identical sequence.
        """
        params = start.copy()
        for t in range(self._tau):
            self._model.set_parameters(params)
            x, y = self._streams[pid].batch(round_index * self._tau + t)
            _, grad = self._model.loss_and_gradient(x, y)
            params = params - self._lr * grad
        return start - params

    def run(
        self,
        max_rounds: int,
        loss_threshold: Optional[float] = None,
    ) -> TrainingSummary:
        """Run ``max_rounds`` communication rounds of τ local steps."""
        if max_rounds <= 0:
            raise TrainingError(f"max_rounds must be positive, got {max_rounds}")
        tracker = LossTracker(loss_threshold, smoothing_window=3)
        n = self._strategy.placement.num_partitions
        self.records = []

        for round_index in range(max_rounds):
            start = self._model.get_parameters()
            deltas: Dict[int, np.ndarray] = {
                pid: self._partition_delta(pid, round_index, start)
                for pid in range(n)
            }
            self._model.set_parameters(start)

            payloads = self._strategy.encode(deltas)
            round_result = self._cluster.run_round(
                round_index, self._strategy.policy
            )
            available = round_result.outcome.accepted_workers
            delta_sum, recovered = self._strategy.decode(available, payloads)
            if not recovered:
                raise TrainingError(f"round {round_index}: nothing recovered")
            mean_delta = delta_sum / len(recovered)
            self._model.set_parameters(start - mean_delta)

            if self._eval is not None:
                loss = self._model.loss(self._eval.features, self._eval.labels)
            else:
                loss = float("nan")
            tracker.record(loss)
            self.records.append(
                StepRecord(
                    step=round_index,
                    sim_time=self._cluster.clock,
                    wait_time=round_result.step_time,
                    num_available=len(available),
                    num_recovered=len(recovered),
                    recovery_fraction=len(recovered) / n,
                    loss=loss,
                )
            )
            if tracker.reached_threshold():
                break

        records = self.records
        losses = tuple(r.loss for r in records)
        total = records[-1].sim_time if records else 0.0
        return TrainingSummary(
            scheme=f"local-sgd(τ={self._tau})+{self._strategy.name}",
            num_steps=len(records),
            total_sim_time=total,
            final_loss=losses[-1] if losses else float("nan"),
            reached_threshold=tracker.reached_threshold(),
            avg_step_time=(total / len(records)) if records else 0.0,
            avg_recovery_fraction=float(
                np.mean([r.recovery_fraction for r in records])
            ) if records else 0.0,
            loss_curve=losses,
            time_curve=tuple(r.sim_time for r in records),
        )
