"""Loss functions with analytic gradients.

Each loss exposes ``value(pred, y)`` and ``grad(pred, y)`` (gradient
w.r.t. the prediction), letting models chain their own backward pass.
All values are means over the batch, matching the optimizer's
"gradient of the average loss" convention.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import TrainingError


def _check_batch(pred: np.ndarray, target: np.ndarray) -> None:
    if pred.shape[0] != target.shape[0]:
        raise TrainingError(
            f"prediction/target batch mismatch: {pred.shape[0]} vs "
            f"{target.shape[0]}"
        )
    if pred.shape[0] == 0:
        raise TrainingError("empty batch")


class MeanSquaredError:
    """``0.5 · mean((pred - y)²)`` — the 0.5 makes the gradient clean."""

    @staticmethod
    def value(pred: np.ndarray, target: np.ndarray) -> float:
        _check_batch(pred, target)
        diff = pred - target
        return float(0.5 * np.mean(diff * diff))

    @staticmethod
    def grad(pred: np.ndarray, target: np.ndarray) -> np.ndarray:
        _check_batch(pred, target)
        return (pred - target) / pred.shape[0]


class BinaryCrossEntropy:
    """Logistic loss on raw scores (sigmoid applied internally).

    Targets are 0/1; uses the numerically stable log-sum-exp form
    ``log(1 + exp(-s·t̃))`` with ``t̃ = 2t - 1``.
    """

    @staticmethod
    def value(scores: np.ndarray, target: np.ndarray) -> float:
        _check_batch(scores, target)
        signed = np.where(target > 0.5, 1.0, -1.0)
        margin = scores * signed
        # log(1 + exp(-m)) computed stably.
        loss = np.logaddexp(0.0, -margin)
        return float(loss.mean())

    @staticmethod
    def grad(scores: np.ndarray, target: np.ndarray) -> np.ndarray:
        _check_batch(scores, target)
        signed = np.where(target > 0.5, 1.0, -1.0)
        sigma = 1.0 / (1.0 + np.exp(scores * signed))
        return (-signed * sigma) / scores.shape[0]


class SoftmaxCrossEntropy:
    """Multi-class cross entropy on raw logits with integer targets."""

    @staticmethod
    def _probabilities(logits: np.ndarray) -> np.ndarray:
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)

    @classmethod
    def value(cls, logits: np.ndarray, target: np.ndarray) -> float:
        _check_batch(logits, target)
        probs = cls._probabilities(logits)
        idx = np.arange(logits.shape[0])
        picked = np.clip(probs[idx, target.astype(int)], 1e-12, None)
        return float(-np.log(picked).mean())

    @classmethod
    def grad(cls, logits: np.ndarray, target: np.ndarray) -> np.ndarray:
        _check_batch(logits, target)
        probs = cls._probabilities(logits)
        idx = np.arange(logits.shape[0])
        probs[idx, target.astype(int)] -= 1.0
        return probs / logits.shape[0]
