"""NumPy models with flat-parameter interfaces.

Every model exposes

* ``num_parameters`` and ``get_parameters() / set_parameters(vec)``
  over a single flat ``float64`` vector — the unit the coded-gradient
  pipeline ships around;
* ``loss(x, y)`` — mean loss on a batch;
* ``gradient(x, y)`` — flat gradient of the mean batch loss;
* ``loss_and_gradient(x, y)`` — both in one pass.

Gradients are analytic (no autograd) and are validated against finite
differences in the tests.
"""

from __future__ import annotations

import abc
from typing import Tuple

import numpy as np

from ..exceptions import TrainingError
from .losses import BinaryCrossEntropy, MeanSquaredError, SoftmaxCrossEntropy


class Model(abc.ABC):
    """Base class for flat-parameter models."""

    @property
    @abc.abstractmethod
    def num_parameters(self) -> int:
        ...

    @abc.abstractmethod
    def get_parameters(self) -> np.ndarray:
        """Copy of the flat parameter vector."""

    @abc.abstractmethod
    def set_parameters(self, flat: np.ndarray) -> None:
        """Install a flat parameter vector."""

    @abc.abstractmethod
    def loss_and_gradient(
        self, x: np.ndarray, y: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        """Mean batch loss and its flat gradient."""

    def loss(self, x: np.ndarray, y: np.ndarray) -> float:
        """Mean batch loss at the current parameters."""
        return self.loss_and_gradient(x, y)[0]

    def gradient(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Flat gradient of the mean batch loss."""
        return self.loss_and_gradient(x, y)[1]

    def _validate_flat(self, flat: np.ndarray) -> np.ndarray:
        arr = np.asarray(flat, dtype=float).ravel()
        if arr.size != self.num_parameters:
            raise TrainingError(
                f"parameter vector of size {arr.size} does not match "
                f"model size {self.num_parameters}"
            )
        return arr


class LinearRegressionModel(Model):
    """``pred = Xw + b`` under mean-squared error."""

    def __init__(self, num_features: int, seed: int = 0):
        if num_features <= 0:
            raise TrainingError(
                f"num_features must be positive, got {num_features}"
            )
        rng = np.random.default_rng(seed)
        self._w = rng.normal(scale=0.01, size=num_features)
        self._b = 0.0
        self._d = num_features

    @property
    def num_parameters(self) -> int:
        return self._d + 1

    def get_parameters(self) -> np.ndarray:
        return np.concatenate([self._w, [self._b]])

    def set_parameters(self, flat: np.ndarray) -> None:
        """Install a flat parameter vector."""
        arr = self._validate_flat(flat)
        self._w = arr[: self._d].copy()
        self._b = float(arr[self._d])

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Real-valued predictions ``Xw + b``."""
        return x @ self._w + self._b

    def loss_and_gradient(self, x, y):
        pred = self.predict(x)
        loss = MeanSquaredError.value(pred, y)
        dpred = MeanSquaredError.grad(pred, y)
        grad_w = x.T @ dpred
        grad_b = dpred.sum()
        return loss, np.concatenate([grad_w, [grad_b]])


class LogisticRegressionModel(Model):
    """Binary logistic regression on raw scores."""

    def __init__(self, num_features: int, seed: int = 0):
        if num_features <= 0:
            raise TrainingError(
                f"num_features must be positive, got {num_features}"
            )
        rng = np.random.default_rng(seed)
        self._w = rng.normal(scale=0.01, size=num_features)
        self._b = 0.0
        self._d = num_features

    @property
    def num_parameters(self) -> int:
        return self._d + 1

    def get_parameters(self) -> np.ndarray:
        return np.concatenate([self._w, [self._b]])

    def set_parameters(self, flat: np.ndarray) -> None:
        """Install a flat parameter vector."""
        arr = self._validate_flat(flat)
        self._w = arr[: self._d].copy()
        self._b = float(arr[self._d])

    def scores(self, x: np.ndarray) -> np.ndarray:
        """Raw (pre-sigmoid) decision scores."""
        return x @ self._w + self._b

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Hard 0/1 predictions."""
        return (self.scores(x) > 0).astype(np.int64)

    def loss_and_gradient(self, x, y):
        s = self.scores(x)
        loss = BinaryCrossEntropy.value(s, y)
        ds = BinaryCrossEntropy.grad(s, y)
        return loss, np.concatenate([x.T @ ds, [ds.sum()]])


class SoftmaxRegressionModel(Model):
    """Multinomial logistic regression (linear softmax classifier)."""

    def __init__(self, num_features: int, num_classes: int, seed: int = 0):
        if num_features <= 0 or num_classes < 2:
            raise TrainingError(
                "need num_features > 0 and num_classes >= 2, got "
                f"{num_features}, {num_classes}"
            )
        rng = np.random.default_rng(seed)
        self._w = rng.normal(scale=0.01, size=(num_features, num_classes))
        self._b = np.zeros(num_classes)
        self._d = num_features
        self._k = num_classes

    @property
    def num_parameters(self) -> int:
        return self._d * self._k + self._k

    def get_parameters(self) -> np.ndarray:
        return np.concatenate([self._w.ravel(), self._b])

    def set_parameters(self, flat: np.ndarray) -> None:
        """Install a flat parameter vector."""
        arr = self._validate_flat(flat)
        split = self._d * self._k
        self._w = arr[:split].reshape(self._d, self._k).copy()
        self._b = arr[split:].copy()

    def logits(self, x: np.ndarray) -> np.ndarray:
        """Raw class scores."""
        return x @ self._w + self._b

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Hard class predictions."""
        return self.logits(x).argmax(axis=1)

    def loss_and_gradient(self, x, y):
        z = self.logits(x)
        loss = SoftmaxCrossEntropy.value(z, y)
        dz = SoftmaxCrossEntropy.grad(z, y)
        grad_w = x.T @ dz
        grad_b = dz.sum(axis=0)
        return loss, np.concatenate([grad_w.ravel(), grad_b])


class MLPClassifier(Model):
    """One-hidden-layer ReLU network with a softmax head.

    The non-convex stand-in for the paper's ResNet-18: small enough for
    simulation-speed steps, expressive enough that recovered-gradient
    fraction visibly controls convergence speed.
    """

    def __init__(
        self,
        num_features: int,
        hidden_units: int,
        num_classes: int,
        seed: int = 0,
    ):
        if num_features <= 0 or hidden_units <= 0 or num_classes < 2:
            raise TrainingError(
                "need num_features > 0, hidden_units > 0, num_classes >= 2; "
                f"got {num_features}, {hidden_units}, {num_classes}"
            )
        rng = np.random.default_rng(seed)
        self._w1 = rng.normal(
            scale=np.sqrt(2.0 / num_features), size=(num_features, hidden_units)
        )
        self._b1 = np.zeros(hidden_units)
        self._w2 = rng.normal(
            scale=np.sqrt(2.0 / hidden_units), size=(hidden_units, num_classes)
        )
        self._b2 = np.zeros(num_classes)
        self._shapes = [
            self._w1.shape,
            self._b1.shape,
            self._w2.shape,
            self._b2.shape,
        ]

    @property
    def num_parameters(self) -> int:
        return sum(int(np.prod(s)) for s in self._shapes)

    def get_parameters(self) -> np.ndarray:
        return np.concatenate(
            [self._w1.ravel(), self._b1, self._w2.ravel(), self._b2]
        )

    def set_parameters(self, flat: np.ndarray) -> None:
        """Install a flat parameter vector."""
        arr = self._validate_flat(flat)
        offset = 0
        tensors = []
        for shape in self._shapes:
            size = int(np.prod(shape))
            tensors.append(arr[offset:offset + size].reshape(shape).copy())
            offset += size
        self._w1, self._b1, self._w2, self._b2 = tensors

    def logits(self, x: np.ndarray) -> np.ndarray:
        """Raw class scores."""
        hidden = np.maximum(x @ self._w1 + self._b1, 0.0)
        return hidden @ self._w2 + self._b2

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Hard class predictions."""
        return self.logits(x).argmax(axis=1)

    def loss_and_gradient(self, x, y):
        pre = x @ self._w1 + self._b1
        hidden = np.maximum(pre, 0.0)
        z = hidden @ self._w2 + self._b2
        loss = SoftmaxCrossEntropy.value(z, y)
        dz = SoftmaxCrossEntropy.grad(z, y)
        grad_w2 = hidden.T @ dz
        grad_b2 = dz.sum(axis=0)
        dhidden = dz @ self._w2.T
        dpre = dhidden * (pre > 0)
        grad_w1 = x.T @ dpre
        grad_b1 = dpre.sum(axis=0)
        return loss, np.concatenate(
            [grad_w1.ravel(), grad_b1, grad_w2.ravel(), grad_b2]
        )
