"""Gradient sparsification with error feedback.

A communication-efficiency technique orthogonal to Ye-Abbe block
coding: each worker uploads only the top-``k`` entries (by magnitude)
of its payload and keeps the rest in a local *error-feedback memory*
that is added back before the next compression (Stich et al.,
"Sparsified SGD with Memory").  Nothing is lost, only delayed.

It composes cleanly with IS-GC because compressed payloads are still
plain vectors (dense storage, mostly zeros here for simplicity): any
conflict-free subset still adds up, and the master's decode is
unchanged.  :class:`CompressedISGCStrategy` wires the compressor into
the IS-GC strategy; ``upload_fraction`` reports the bandwidth saved.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..core.decoders import Decoder
from ..core.placement import Placement
from ..exceptions import ConfigurationError
from ..simulation.policies import WaitPolicy
from .strategies import GradientMap, ISGCStrategy


class TopKCompressor:
    """Per-worker top-k sparsification with error-feedback memory."""

    def __init__(self, fraction: float):
        if not 0.0 < fraction <= 1.0:
            raise ConfigurationError(
                f"fraction must be in (0, 1], got {fraction}"
            )
        self._fraction = fraction
        self._memory: Dict[int, np.ndarray] = {}

    @property
    def fraction(self) -> float:
        return self._fraction

    def memory_of(self, worker: int) -> np.ndarray | None:
        """The worker's residual (a copy), or ``None`` before first use."""
        mem = self._memory.get(worker)
        return mem.copy() if mem is not None else None

    def keep_count(self, dim: int) -> int:
        """How many entries survive compression for a ``dim`` vector."""
        return max(1, int(round(self._fraction * dim)))

    def compress(self, worker: int, vector: np.ndarray) -> np.ndarray:
        """Return the sparse payload; stash the rest in memory.

        The error-feedback update: ``m ← m + v``; transmit ``top_k(m)``;
        ``m ← m − transmitted``.  Every coordinate is eventually sent.
        """
        vec = np.asarray(vector, dtype=float)
        memory = self._memory.get(worker)
        if memory is None:
            memory = np.zeros_like(vec)
        if memory.shape != vec.shape:
            raise ConfigurationError(
                f"worker {worker}: payload shape changed from "
                f"{memory.shape} to {vec.shape}"
            )
        accumulated = memory + vec
        k = self.keep_count(vec.size)
        if k >= vec.size:
            self._memory[worker] = np.zeros_like(vec)
            return accumulated
        # Indices of the k largest magnitudes.
        keep = np.argpartition(np.abs(accumulated), -k)[-k:]
        sent = np.zeros_like(accumulated)
        sent[keep] = accumulated[keep]
        self._memory[worker] = accumulated - sent
        return sent

    def reset(self) -> None:
        """Discard all error-feedback memory."""
        self._memory = {}


class CompressedISGCStrategy(ISGCStrategy):
    """IS-GC with top-k sparsified worker payloads."""

    def __init__(
        self,
        placement: Placement,
        wait_for: int,
        fraction: float,
        rng: np.random.Generator | None = None,
        decoder: Decoder | None = None,
        policy: WaitPolicy | None = None,
    ):
        super().__init__(
            placement, wait_for, rng=rng, decoder=decoder, policy=policy
        )
        self._compressor = TopKCompressor(fraction)
        self.name = f"{self.name}-top{int(round(100 * fraction))}%"

    @property
    def compressor(self) -> TopKCompressor:
        return self._compressor

    @property
    def upload_fraction(self) -> float:
        """Fraction of gradient entries actually shipped per upload."""
        return self._compressor.fraction

    def encode(self, partition_gradients: GradientMap) -> Dict[int, np.ndarray]:
        full = super().encode(partition_gradients)
        return {
            worker: self._compressor.compress(worker, payload)
            for worker, payload in full.items()
        }

    def encode_worker_payload(self, worker, partition_gradients):
        payload = super().encode_worker_payload(worker, partition_gradients)
        return self._compressor.compress(worker, payload)


def nonzero_fraction(payloads: Dict[int, np.ndarray]) -> float:
    """Mean fraction of non-zero entries across worker payloads."""
    if not payloads:
        raise ConfigurationError("no payloads to measure")
    fractions = [
        float(np.count_nonzero(p)) / p.size for p in payloads.values()
    ]
    return float(np.mean(fractions))
