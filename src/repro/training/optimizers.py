"""Optimizers and learning-rate schedules.

Matches the paper's setting (``torch.optim.SGD``): plain SGD with
optional momentum and weight decay, operating on flat parameter
vectors.  Schedules are plain callables ``step -> lr`` so experiments
can sweep them declaratively.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..exceptions import ConfigurationError

LRSchedule = Callable[[int], float]


def constant_lr(lr: float) -> LRSchedule:
    """A constant learning rate (the paper's setting)."""
    if lr <= 0:
        raise ConfigurationError(f"learning rate must be positive, got {lr}")
    return lambda step: lr


def step_decay(lr: float, factor: float, every: int) -> LRSchedule:
    """Multiply by ``factor`` every ``every`` steps."""
    if lr <= 0 or not 0 < factor <= 1 or every <= 0:
        raise ConfigurationError(
            f"invalid step decay: lr={lr}, factor={factor}, every={every}"
        )
    return lambda step: lr * factor ** (step // every)


def inverse_time_decay(lr: float, rate: float) -> LRSchedule:
    """``lr / (1 + rate · step)`` — the classic SGD schedule."""
    if lr <= 0 or rate < 0:
        raise ConfigurationError(
            f"invalid inverse-time decay: lr={lr}, rate={rate}"
        )
    return lambda step: lr / (1.0 + rate * step)


class SGD:
    """Stochastic gradient descent over a flat parameter vector."""

    def __init__(
        self,
        learning_rate: float | LRSchedule,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        if callable(learning_rate):
            self._schedule = learning_rate
        else:
            self._schedule = constant_lr(float(learning_rate))
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError(
                f"momentum must be in [0, 1), got {momentum}"
            )
        if weight_decay < 0.0:
            raise ConfigurationError(
                f"weight_decay must be >= 0, got {weight_decay}"
            )
        self._momentum = momentum
        self._weight_decay = weight_decay
        self._velocity: np.ndarray | None = None
        self._step = 0

    @property
    def step_count(self) -> int:
        return self._step

    def current_lr(self) -> float:
        """Learning rate the next update will use."""
        return self._schedule(self._step)

    def update(self, params: np.ndarray, gradient: np.ndarray) -> np.ndarray:
        """Return the new parameter vector; does not mutate inputs."""
        params = np.asarray(params, dtype=float)
        gradient = np.asarray(gradient, dtype=float)
        if params.shape != gradient.shape:
            raise ConfigurationError(
                f"shape mismatch: params {params.shape} vs gradient "
                f"{gradient.shape}"
            )
        if self._weight_decay:
            gradient = gradient + self._weight_decay * params
        lr = self._schedule(self._step)
        if self._momentum:
            if self._velocity is None:
                self._velocity = np.zeros_like(params)
            self._velocity = self._momentum * self._velocity + gradient
            direction = self._velocity
        else:
            direction = gradient
        self._step += 1
        return params - lr * direction

    def reset(self) -> None:
        """Clear momentum state and the step counter."""
        self._velocity = None
        self._step = 0

    def snapshot_state(self) -> dict:
        """JSON-safe mutable state (checkpointing)."""
        return {
            "step": self._step,
            "velocity": (
                None if self._velocity is None
                else [float(v) for v in self._velocity]
            ),
        }

    def restore_state(self, state) -> None:
        """Restore state captured by :meth:`snapshot_state`."""
        self._step = int(state["step"])
        velocity = state["velocity"]
        self._velocity = (
            None if velocity is None else np.asarray(velocity, dtype=float)
        )
