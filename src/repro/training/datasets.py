"""Synthetic datasets and dataset partitioning.

The paper trains ResNet-18 on CIFAR-10/ImageNet; per DESIGN.md we
substitute NumPy-friendly synthetic workloads that preserve what the
experiments measure (recovered-gradient fraction → convergence speed):

* :func:`make_regression` — noisy linear teacher (convex, analysable);
* :func:`make_classification` — Gaussian class blobs for logistic /
  softmax models;
* :func:`make_cifar_like` — random-feature "images" with a planted
  non-linear teacher, sized like small vision inputs, for the MLP.

Partitioning follows Sec. VIII-A's seed discipline: each partition owns
an independent seeded batch stream, so every scheme sees byte-identical
mini-batches for the same (partition, step) pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..exceptions import ConfigurationError


@dataclass(frozen=True)
class Dataset:
    """An in-memory supervised dataset."""

    features: np.ndarray  # shape (num_samples, num_features)
    labels: np.ndarray  # shape (num_samples,) or (num_samples, k)
    name: str = "dataset"

    def __post_init__(self) -> None:
        if self.features.ndim != 2:
            raise ConfigurationError(
                f"features must be 2-D, got shape {self.features.shape}"
            )
        if self.labels.shape[0] != self.features.shape[0]:
            raise ConfigurationError(
                f"features/labels row mismatch: {self.features.shape[0]} "
                f"vs {self.labels.shape[0]}"
            )

    @property
    def num_samples(self) -> int:
        return self.features.shape[0]

    @property
    def num_features(self) -> int:
        return self.features.shape[1]

    def subset(self, indices: np.ndarray) -> "Dataset":
        """A new dataset restricted to ``indices`` (rows copied by view)."""
        return Dataset(
            features=self.features[indices],
            labels=self.labels[indices],
            name=self.name,
        )


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------
def make_regression(
    num_samples: int,
    num_features: int,
    noise: float = 0.1,
    seed: int = 0,
) -> Dataset:
    """Noisy linear-teacher regression: ``y = Xβ* + ε``."""
    _check_sizes(num_samples, num_features)
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(num_samples, num_features))
    beta = rng.normal(size=num_features) / np.sqrt(num_features)
    y = x @ beta + noise * rng.normal(size=num_samples)
    return Dataset(features=x, labels=y, name="regression")


def make_classification(
    num_samples: int,
    num_features: int,
    num_classes: int = 2,
    separation: float = 2.0,
    seed: int = 0,
) -> Dataset:
    """Gaussian blobs: ``num_classes`` clusters with unit covariance."""
    _check_sizes(num_samples, num_features)
    if num_classes < 2:
        raise ConfigurationError(
            f"need at least 2 classes, got {num_classes}"
        )
    rng = np.random.default_rng(seed)
    centers = rng.normal(size=(num_classes, num_features)) * separation
    labels = rng.integers(num_classes, size=num_samples)
    x = centers[labels] + rng.normal(size=(num_samples, num_features))
    return Dataset(features=x, labels=labels.astype(np.int64), name="blobs")


def make_cifar_like(
    num_samples: int = 2048,
    side: int = 8,
    num_classes: int = 10,
    seed: int = 0,
) -> Dataset:
    """A CIFAR-10 stand-in: ``side × side × 3`` random images whose class
    is a planted non-linear function of random projections.

    Small enough for laptop-scale runs, non-linear enough that the MLP
    has something real to learn (training loss falls well below the
    trivial ``log(num_classes)``).
    """
    _check_sizes(num_samples, side)
    rng = np.random.default_rng(seed)
    dim = side * side * 3
    x = rng.normal(size=(num_samples, dim)).astype(np.float64)
    # Planted teacher: class = argmax over random ReLU features.
    w1 = rng.normal(size=(dim, 4 * num_classes)) / np.sqrt(dim)
    w2 = rng.normal(size=(4 * num_classes, num_classes))
    logits = np.maximum(x @ w1, 0.0) @ w2
    labels = logits.argmax(axis=1).astype(np.int64)
    return Dataset(features=x, labels=labels, name="cifar-like")


def _check_sizes(num_samples: int, num_features: int) -> None:
    if num_samples <= 0 or num_features <= 0:
        raise ConfigurationError(
            f"sizes must be positive, got samples={num_samples}, "
            f"features={num_features}"
        )


# ----------------------------------------------------------------------
# Partitioning & batch streams
# ----------------------------------------------------------------------
def partition_dataset(
    dataset: Dataset, num_partitions: int, seed: int = 0
) -> List[Dataset]:
    """Shuffle once, then split into ``num_partitions`` near-equal parts.

    Sizes differ by at most one sample; the shuffle keeps class balance
    statistical rather than positional.
    """
    if num_partitions <= 0:
        raise ConfigurationError(
            f"num_partitions must be positive, got {num_partitions}"
        )
    if num_partitions > dataset.num_samples:
        raise ConfigurationError(
            f"cannot split {dataset.num_samples} samples into "
            f"{num_partitions} partitions"
        )
    rng = np.random.default_rng(seed)
    order = rng.permutation(dataset.num_samples)
    chunks = np.array_split(order, num_partitions)
    return [dataset.subset(chunk) for chunk in chunks]


class BatchStream:
    """Reproducible mini-batch stream over one partition.

    Batches are sampled with replacement from a per-partition
    :class:`numpy.random.Generator` seeded by ``(seed, partition_id)``,
    so any two runs — regardless of scheme — draw identical batches for
    the same (partition, step).  This is the paper's "carefully control
    all random seeds" discipline (Sec. VIII-A).
    """

    def __init__(self, partition: Dataset, partition_id: int, batch_size: int, seed: int = 0):
        if batch_size <= 0:
            raise ConfigurationError(
                f"batch_size must be positive, got {batch_size}"
            )
        self._partition = partition
        self._batch_size = min(batch_size, partition.num_samples)
        self._seed = seed
        self._partition_id = partition_id

    @property
    def batch_size(self) -> int:
        return self._batch_size

    def batch(self, step: int) -> Tuple[np.ndarray, np.ndarray]:
        """The (features, labels) mini-batch for ``step``.

        Stateless by construction: a fresh generator is derived from
        ``(seed, partition_id, step)`` so batches can be re-materialised
        in any order.
        """
        rng = np.random.default_rng(
            (self._seed, self._partition_id, step)
        )
        idx = rng.integers(self._partition.num_samples, size=self._batch_size)
        return self._partition.features[idx], self._partition.labels[idx]


def build_batch_streams(
    partitions: List[Dataset], batch_size: int, seed: int = 0
) -> List[BatchStream]:
    """One stream per partition, sharing the master seed."""
    return [
        BatchStream(part, pid, batch_size, seed=seed)
        for pid, part in enumerate(partitions)
    ]
