"""Training substrate: datasets, models, optimizers, strategies, trainer."""

from .datasets import (
    BatchStream,
    Dataset,
    build_batch_streams,
    make_cifar_like,
    make_classification,
    make_regression,
    partition_dataset,
)
from .losses import BinaryCrossEntropy, MeanSquaredError, SoftmaxCrossEntropy
from .models import (
    LinearRegressionModel,
    LogisticRegressionModel,
    MLPClassifier,
    Model,
    SoftmaxRegressionModel,
)
from .optimizers import SGD, constant_lr, inverse_time_decay, step_decay
from .strategies import (
    ClassicGCStrategy,
    ISGCStrategy,
    ISSGDStrategy,
    SyncSGDStrategy,
    TrainingStrategy,
)
from .convergence import LossTracker
from .trainer import DistributedTrainer
from .async_trainer import AsyncSGDTrainer, AsyncSummary, AsyncUpdateRecord
from .evaluation import EvaluationReport, accuracy_curve, evaluate
from .conv import Conv2DClassifier
from .adaptive_trainer import AdaptivePlacementTrainer, MigrationEvent
from .compression import CompressedISGCStrategy, TopKCompressor, nonzero_fraction
from .local_sgd import LocalUpdateTrainer

__all__ = [
    "Dataset",
    "BatchStream",
    "build_batch_streams",
    "make_regression",
    "make_classification",
    "make_cifar_like",
    "partition_dataset",
    "MeanSquaredError",
    "BinaryCrossEntropy",
    "SoftmaxCrossEntropy",
    "Model",
    "LinearRegressionModel",
    "LogisticRegressionModel",
    "SoftmaxRegressionModel",
    "MLPClassifier",
    "SGD",
    "constant_lr",
    "step_decay",
    "inverse_time_decay",
    "TrainingStrategy",
    "SyncSGDStrategy",
    "ISSGDStrategy",
    "ClassicGCStrategy",
    "ISGCStrategy",
    "LossTracker",
    "DistributedTrainer",
    "AsyncSGDTrainer",
    "AsyncSummary",
    "AsyncUpdateRecord",
    "EvaluationReport",
    "evaluate",
    "accuracy_curve",
    "Conv2DClassifier",
    "AdaptivePlacementTrainer",
    "MigrationEvent",
    "TopKCompressor",
    "CompressedISGCStrategy",
    "nonzero_fraction",
    "LocalUpdateTrainer",
]
