"""The distributed-training driver.

:class:`DistributedTrainer` wires together a model, partitioned data,
a training strategy (scheme) and the cluster simulator, reproducing the
paper's loop (Sec. VIII-A):

1. per step, each partition yields a seeded mini-batch (identical
   across schemes) and its gradient is evaluated at the current
   parameters;
2. workers encode their partitions' gradients into one payload each;
3. the simulator produces arrival times; the strategy's wait policy
   picks the accepted workers ``W'``;
4. the strategy decodes ``W'`` into a recovered gradient sum and set
   ``I``;
5. the master performs an unbiased mean-gradient update
   (``ĝ / |I|``) and broadcasts the new parameters.

Everything is measured in simulated seconds; losses are evaluated on a
fixed held-out evaluation batch so scheme comparisons are exact.

The loop itself lives in :class:`~repro.engine.core.RoundEngine`; this
class is a compatibility shim pairing the engine's flat backend with
the sync update rule.  ``tests/golden`` pins its trajectories
bit-for-bit against the pre-engine implementation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

from ..engine.backends import FlatBackend
from ..engine.core import RoundEngine
from ..engine.rules import SyncUpdate
from ..exceptions import TrainingError
from ..simulation.cluster import ClusterSimulator
from ..types import StepRecord, TrainingSummary

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.tracer import RoundTracer
from .datasets import BatchStream, Dataset
from .models import Model
from .optimizers import SGD
from .strategies import TrainingStrategy


class DistributedTrainer:
    """Simulated distributed SGD under a chosen straggler scheme."""

    def __init__(
        self,
        model: Model,
        streams: Sequence[BatchStream],
        strategy: TrainingStrategy,
        cluster: ClusterSimulator,
        optimizer: SGD,
        eval_data: Dataset | None = None,
        recovery_scaled_lr: bool = False,
        tracer: "RoundTracer | None" = None,
    ):
        n = strategy.placement.num_partitions
        if len(streams) != n:
            raise TrainingError(
                f"strategy expects {n} partitions, got {len(streams)} "
                "batch streams"
            )
        if cluster.num_workers != strategy.placement.num_workers:
            raise TrainingError(
                f"cluster has {cluster.num_workers} workers but placement "
                f"expects {strategy.placement.num_workers}"
            )
        # Observability: the tracer rides on the cluster (which records
        # the timing half of each round); the engine adds the decode
        # half.  Passing one here attaches it to the cluster.
        if tracer is not None:
            cluster.tracer = tracer
            tracer.set_context(scheme=strategy.name)
        self._model = model
        self._cluster = cluster
        self._engine = RoundEngine(
            model=model,
            streams=streams,
            strategy=strategy,
            backend=FlatBackend(cluster),
            rule=SyncUpdate(optimizer, recovery_scaled_lr=recovery_scaled_lr),
            eval_data=eval_data,
        )

    @property
    def engine(self) -> RoundEngine:
        """The underlying round engine."""
        return self._engine

    @property
    def records(self) -> List[StepRecord]:
        return list(self._engine.records)

    @property
    def model(self) -> Model:
        return self._model

    # ------------------------------------------------------------------
    def run(
        self,
        max_steps: int,
        loss_threshold: Optional[float] = None,
        smoothing_window: int = 5,
    ) -> TrainingSummary:
        """Train until ``loss_threshold`` or ``max_steps``.

        Returns a :class:`~repro.types.TrainingSummary`; per-step detail
        stays available on :attr:`records`.
        """
        return self._engine.run(
            max_steps,
            loss_threshold=loss_threshold,
            smoothing_window=smoothing_window,
        )
