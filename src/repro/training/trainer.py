"""The distributed-training driver.

:class:`DistributedTrainer` wires together a model, partitioned data,
a training strategy (scheme) and the cluster simulator, reproducing the
paper's loop (Sec. VIII-A):

1. per step, each partition yields a seeded mini-batch (identical
   across schemes) and its gradient is evaluated at the current
   parameters;
2. workers encode their partitions' gradients into one payload each;
3. the simulator produces arrival times; the strategy's wait policy
   picks the accepted workers ``W'``;
4. the strategy decodes ``W'`` into a recovered gradient sum and set
   ``I``;
5. the master performs an unbiased mean-gradient update
   (``ĝ / |I|``) and broadcasts the new parameters.

Everything is measured in simulated seconds; losses are evaluated on a
fixed held-out evaluation batch so scheme comparisons are exact.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

import numpy as np

from ..exceptions import TrainingError
from ..simulation.cluster import ClusterSimulator
from ..types import StepRecord, TrainingSummary

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.tracer import RoundTracer
from .convergence import LossTracker
from .datasets import BatchStream, Dataset
from .models import Model
from .optimizers import SGD
from .strategies import TrainingStrategy


class DistributedTrainer:
    """Simulated distributed SGD under a chosen straggler scheme."""

    def __init__(
        self,
        model: Model,
        streams: Sequence[BatchStream],
        strategy: TrainingStrategy,
        cluster: ClusterSimulator,
        optimizer: SGD,
        eval_data: Dataset | None = None,
        recovery_scaled_lr: bool = False,
        tracer: "RoundTracer | None" = None,
    ):
        n = strategy.placement.num_partitions
        if len(streams) != n:
            raise TrainingError(
                f"strategy expects {n} partitions, got {len(streams)} "
                f"batch streams"
            )
        if cluster.num_workers != strategy.placement.num_workers:
            raise TrainingError(
                f"cluster has {cluster.num_workers} workers but placement "
                f"expects {strategy.placement.num_workers}"
            )
        self._model = model
        self._streams = list(streams)
        self._strategy = strategy
        self._cluster = cluster
        self._optimizer = optimizer
        self._eval = eval_data
        # Linear-scaling rule adapted to partial recovery: when fewer
        # partitions are recovered the gradient estimate is noisier, so
        # scale the step down by the recovered fraction (an extension;
        # off by default to match the paper's constant-η setting).
        self._recovery_scaled_lr = recovery_scaled_lr
        # Observability: the tracer rides on the cluster (which records
        # the timing half of each round); the trainer adds the decode
        # half.  Passing one here attaches it to the cluster.
        if tracer is not None:
            cluster.tracer = tracer
            tracer.set_context(scheme=strategy.name)
        self._tracer = cluster.tracer
        self._records: List[StepRecord] = []

    @property
    def records(self) -> List[StepRecord]:
        return list(self._records)

    @property
    def model(self) -> Model:
        return self._model

    # ------------------------------------------------------------------
    def run(
        self,
        max_steps: int,
        loss_threshold: Optional[float] = None,
        smoothing_window: int = 5,
    ) -> TrainingSummary:
        """Train until ``loss_threshold`` or ``max_steps``.

        Returns a :class:`~repro.types.TrainingSummary`; per-step detail
        stays available on :attr:`records`.
        """
        if max_steps <= 0:
            raise TrainingError(f"max_steps must be positive, got {max_steps}")
        tracker = LossTracker(loss_threshold, smoothing_window)
        n = self._strategy.placement.num_partitions
        self._records = []

        for step in range(max_steps):
            loss = self._run_step(step, n, tracker)
            if tracker.reached_threshold():
                break

        records = self._records
        losses = tuple(r.loss for r in records)
        times = tuple(r.sim_time for r in records)
        total_time = records[-1].sim_time if records else 0.0
        return TrainingSummary(
            scheme=self._strategy.name,
            num_steps=len(records),
            total_sim_time=total_time,
            final_loss=losses[-1] if losses else float("nan"),
            reached_threshold=tracker.reached_threshold(),
            avg_step_time=(total_time / len(records)) if records else 0.0,
            avg_recovery_fraction=float(
                np.mean([r.recovery_fraction for r in records])
            ) if records else 0.0,
            loss_curve=losses,
            time_curve=times,
        )

    # ------------------------------------------------------------------
    def _run_step(self, step: int, n: int, tracker: LossTracker) -> float:
        # 1. Per-partition gradients on this step's seeded batches.
        partition_gradients = {}
        batch_losses = []
        for pid in range(n):
            x, y = self._streams[pid].batch(step)
            loss, grad = self._model.loss_and_gradient(x, y)
            partition_gradients[pid] = grad
            batch_losses.append(loss)

        # 2. Encode and simulate the round.
        payloads = self._strategy.encode(partition_gradients)
        round_result = self._cluster.run_round(step, self._strategy.policy)
        available = round_result.outcome.accepted_workers

        # 3. Decode and update (unbiased mean over recovered partitions).
        grad_sum, recovered = self._strategy.decode(available, payloads)
        if not recovered:
            raise TrainingError(f"step {step}: nothing recovered")
        if self._tracer is not None:
            decision = getattr(self._strategy, "last_decode", None)
            self._tracer.record_decode(
                step,
                decoder_scheme=(
                    self._strategy.placement.scheme
                    if decision is not None else self._strategy.name
                ),
                num_searches=(
                    decision.num_searches if decision is not None else 1
                ),
                num_recovered=len(recovered),
                num_partitions=n,
            )
        mean_grad = grad_sum / len(recovered)
        if self._recovery_scaled_lr:
            mean_grad = mean_grad * (len(recovered) / n)
        params = self._optimizer.update(self._model.get_parameters(), mean_grad)
        self._model.set_parameters(params)

        # 4. Loss bookkeeping: evaluation batch if given, else the mean
        #    of this step's partition batch losses (pre-update).
        if self._eval is not None:
            loss = self._model.loss(self._eval.features, self._eval.labels)
        else:
            loss = float(np.mean(batch_losses))
        tracker.record(loss)

        grad_norm = float(np.linalg.norm(mean_grad))
        self._records.append(
            StepRecord(
                step=step,
                sim_time=self._cluster.clock,
                wait_time=round_result.step_time,
                num_available=len(available),
                num_recovered=len(recovered),
                recovery_fraction=len(recovered) / n,
                loss=loss,
                grad_norm=grad_norm,
            )
        )
        return loss
