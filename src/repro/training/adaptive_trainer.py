"""Online placement adaptation.

The paper fixes the placement before training; this extension closes
the loop at run time.  Every ``review_every`` steps the trainer:

1. measures the realised recovery fraction over the last window;
2. asks the advisor for the best placement at the observed wait count;
3. plans the partition copies needed to switch
   (:func:`~repro.core.migration.migration_plan`) and estimates the
   per-step saving from the recovery improvement;
4. migrates when the amortisation test passes — the simulated clock is
   charged the full migration cost, model and optimizer state carry
   over, and training resumes under the new placement's strategy.

Because partitions are only *re-replicated* (never re-split), batch
streams and per-partition gradients are unchanged across a migration —
the switch affects which payload each worker uploads, nothing else.

The review/migration logic lives in
:class:`~repro.engine.rules.AdaptiveMigration`; this class is a
compatibility shim pairing it with the engine's flat backend.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.tracer import RoundTracer

from ..core.placement import Placement
from ..engine.backends import FlatBackend
from ..engine.core import RoundEngine
from ..engine.rules import AdaptiveMigration, MigrationEvent
from ..exceptions import TrainingError
from ..simulation.cluster import ClusterSimulator
from ..simulation.network import NetworkModel
from ..types import StepRecord, TrainingSummary
from .datasets import BatchStream, Dataset
from .models import Model
from .optimizers import SGD
from .strategies import ISGCStrategy

__all__ = ["AdaptivePlacementTrainer", "MigrationEvent"]


class AdaptivePlacementTrainer:
    """IS-GC training that re-places partitions when it pays off."""

    def __init__(
        self,
        model: Model,
        streams: List[BatchStream],
        initial_placement: Placement,
        wait_for: int,
        cluster: ClusterSimulator,
        optimizer: SGD,
        eval_data: Optional[Dataset] = None,
        partition_bytes: float = 1e7,
        network: NetworkModel | None = None,
        review_every: int = 25,
        min_recovery_gain: float = 0.05,
        rng: np.random.Generator | None = None,
        tracer: "RoundTracer | None" = None,
    ):
        n = initial_placement.num_workers
        if len(streams) != n:
            raise TrainingError(
                f"expected {n} streams, got {len(streams)}"
            )
        if review_every <= 0:
            raise TrainingError(
                f"review_every must be positive, got {review_every}"
            )
        if not 0.0 <= min_recovery_gain <= 1.0:
            raise TrainingError(
                f"min_recovery_gain must be in [0, 1], got {min_recovery_gain}"
            )
        self._model = model
        # The strategy and the migration rule share one generator so a
        # migrated run consumes the same random stream as the pre-engine
        # implementation did.
        # Entropy-seeded fallback is the documented default: callers
        # wanting replay inject a seeded Generator.
        rng = rng if rng is not None else np.random.default_rng()  # repro: noqa[DET003]
        # Wraps the caller's Placement object with the shared generator;
        # the name-keyed registry cannot express either (see REG001).
        strategy = ISGCStrategy(  # repro: noqa[REG001]
            initial_placement, wait_for=wait_for, rng=rng
        )
        if tracer is not None:
            cluster.tracer = tracer
            tracer.set_context(scheme=strategy.name)
        self._rule = AdaptiveMigration(
            optimizer,
            wait_for=wait_for,
            partition_bytes=partition_bytes,
            network=network,
            review_every=review_every,
            min_recovery_gain=min_recovery_gain,
            rng=rng,
        )
        self._engine = RoundEngine(
            model=model,
            streams=streams,
            strategy=strategy,
            backend=FlatBackend(cluster),
            rule=self._rule,
            eval_data=eval_data,
        )

    # ------------------------------------------------------------------
    @property
    def engine(self) -> RoundEngine:
        """The underlying round engine."""
        return self._engine

    @property
    def placement(self) -> Placement:
        return self._engine.strategy.placement

    @property
    def records(self) -> List[StepRecord]:
        return list(self._engine.records)

    @property
    def migrations(self) -> List[MigrationEvent]:
        return list(self._rule.migrations)

    # ------------------------------------------------------------------
    def run(
        self,
        max_steps: int,
        loss_threshold: Optional[float] = None,
    ) -> TrainingSummary:
        """Train with periodic migration reviews; returns a summary."""
        return self._engine.run(
            max_steps, loss_threshold=loss_threshold, smoothing_window=5
        )
