"""Online placement adaptation.

The paper fixes the placement before training; this extension closes
the loop at run time.  Every ``review_every`` steps the trainer:

1. measures the realised recovery fraction over the last window;
2. asks the advisor for the best placement at the observed wait count;
3. plans the partition copies needed to switch
   (:func:`~repro.core.migration.migration_plan`) and estimates the
   per-step saving from the recovery improvement;
4. migrates when the amortisation test passes — the simulated clock is
   charged the full migration cost, model and optimizer state carry
   over, and training resumes under the new placement's strategy.

Because partitions are only *re-replicated* (never re-split), batch
streams and per-partition gradients are unchanged across a migration —
the switch affects which payload each worker uploads, nothing else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.tracer import RoundTracer

from ..core.advisor import evaluate_placement, rank_placements
from ..core.migration import migration_cost_seconds, migration_plan
from ..core.placement import Placement
from ..exceptions import TrainingError
from ..simulation.cluster import ClusterSimulator
from ..simulation.network import NetworkModel
from ..types import StepRecord, TrainingSummary
from .convergence import LossTracker
from .datasets import BatchStream, Dataset
from .models import Model
from .optimizers import SGD
from .strategies import ISGCStrategy


@dataclass(frozen=True)
class MigrationEvent:
    """A placement switch performed during training."""

    step: int
    sim_time: float
    from_label: str
    to_label: str
    partition_copies: int
    cost_seconds: float


class AdaptivePlacementTrainer:
    """IS-GC training that re-places partitions when it pays off."""

    def __init__(
        self,
        model: Model,
        streams: List[BatchStream],
        initial_placement: Placement,
        wait_for: int,
        cluster: ClusterSimulator,
        optimizer: SGD,
        eval_data: Optional[Dataset] = None,
        partition_bytes: float = 1e7,
        network: NetworkModel | None = None,
        review_every: int = 25,
        min_recovery_gain: float = 0.05,
        rng: np.random.Generator | None = None,
        tracer: "RoundTracer | None" = None,
    ):
        n = initial_placement.num_workers
        if len(streams) != n:
            raise TrainingError(
                f"expected {n} streams, got {len(streams)}"
            )
        if review_every <= 0:
            raise TrainingError(
                f"review_every must be positive, got {review_every}"
            )
        if not 0.0 <= min_recovery_gain <= 1.0:
            raise TrainingError(
                f"min_recovery_gain must be in [0, 1], got {min_recovery_gain}"
            )
        self._model = model
        self._streams = streams
        self._wait_for = wait_for
        self._cluster = cluster
        self._optimizer = optimizer
        self._eval = eval_data
        self._bytes = partition_bytes
        self._network = network if network is not None else NetworkModel()
        self._review_every = review_every
        self._min_gain = min_recovery_gain
        self._rng = rng if rng is not None else np.random.default_rng()
        self._placement = initial_placement
        self._strategy = ISGCStrategy(
            initial_placement, wait_for=wait_for, rng=self._rng
        )
        self._migration_penalty = 0.0
        if tracer is not None:
            cluster.tracer = tracer
            tracer.set_context(scheme=self._strategy.name)
        self._tracer = cluster.tracer
        self.records: List[StepRecord] = []
        self.migrations: List[MigrationEvent] = []

    # ------------------------------------------------------------------
    @property
    def placement(self) -> Placement:
        return self._placement

    def _placement_label(self, placement: Placement) -> str:
        return evaluate_placement(placement, self._wait_for, trials=1).label

    def _maybe_migrate(self, step: int, max_steps: int) -> None:
        n = self._placement.num_workers
        c = self._placement.partitions_per_worker
        ranking = rank_placements(
            n, c, self._wait_for, trials=1500, seed=step
        )
        best = ranking[0]
        current = evaluate_placement(
            self._placement, self._wait_for, trials=1500, seed=step
        )
        gain_partitions = best.expected_recovered - current.expected_recovered
        if gain_partitions / n < self._min_gain:
            return

        plan = migration_plan(self._placement, best.placement)
        if plan.is_noop:
            return
        cost = migration_cost_seconds(plan, self._bytes, self._network)
        # Saving model: higher recovery → fewer steps for the same
        # progress; approximate per-step value as the recovery gain
        # times the recent average step time.
        window = self.records[-self._review_every:]
        if not window:
            return
        avg_step = float(np.mean([r.wait_time for r in window]))
        per_step_saving = (gain_partitions / n) * avg_step
        remaining = max_steps - step
        if per_step_saving * remaining <= cost:
            return

        self._migration_penalty += cost
        self.migrations.append(
            MigrationEvent(
                step=step,
                sim_time=self._cluster.clock + cost,
                from_label=current.label,
                to_label=best.label,
                partition_copies=plan.total_partition_copies,
                cost_seconds=cost,
            )
        )
        self._placement = best.placement
        self._strategy = ISGCStrategy(
            best.placement, wait_for=self._wait_for, rng=self._rng
        )
        if self._tracer is not None:
            self._tracer.registry.counter("adaptive.migrations").inc()
            self._tracer.set_context(scheme=self._strategy.name)

    # ------------------------------------------------------------------
    def run(
        self,
        max_steps: int,
        loss_threshold: Optional[float] = None,
    ) -> TrainingSummary:
        """Train with periodic migration reviews; returns a summary."""
        if max_steps <= 0:
            raise TrainingError(f"max_steps must be positive, got {max_steps}")
        tracker = LossTracker(loss_threshold, smoothing_window=5)
        n = self._placement.num_partitions
        self.records = []

        for step in range(max_steps):
            if step > 0 and step % self._review_every == 0:
                self._maybe_migrate(step, max_steps)

            partition_gradients = {}
            batch_losses = []
            for pid in range(n):
                x, y = self._streams[pid].batch(step)
                loss, grad = self._model.loss_and_gradient(x, y)
                partition_gradients[pid] = grad
                batch_losses.append(loss)

            payloads = self._strategy.encode(partition_gradients)
            round_result = self._cluster.run_round(step, self._strategy.policy)
            available = round_result.outcome.accepted_workers
            grad_sum, recovered = self._strategy.decode(available, payloads)
            if self._tracer is not None:
                decision = self._strategy.last_decode
                self._tracer.record_decode(
                    step,
                    decoder_scheme=self._placement.scheme,
                    num_searches=(
                        decision.num_searches if decision is not None else 1
                    ),
                    num_recovered=len(recovered),
                    num_partitions=n,
                )
            mean_grad = grad_sum / len(recovered)
            params = self._optimizer.update(
                self._model.get_parameters(), mean_grad
            )
            self._model.set_parameters(params)

            if self._eval is not None:
                loss = self._model.loss(self._eval.features, self._eval.labels)
            else:
                loss = float(np.mean(batch_losses))
            tracker.record(loss)
            self.records.append(
                StepRecord(
                    step=step,
                    sim_time=self._cluster.clock + self._migration_penalty,
                    wait_time=round_result.step_time,
                    num_available=len(available),
                    num_recovered=len(recovered),
                    recovery_fraction=len(recovered) / n,
                    loss=loss,
                )
            )
            if tracker.reached_threshold():
                break

        records = self.records
        losses = tuple(r.loss for r in records)
        total = records[-1].sim_time if records else 0.0
        return TrainingSummary(
            scheme=f"adaptive-is-gc ({len(self.migrations)} migrations)",
            num_steps=len(records),
            total_sim_time=total,
            final_loss=losses[-1] if losses else float("nan"),
            reached_threshold=tracker.reached_threshold(),
            avg_step_time=(total / len(records)) if records else 0.0,
            avg_recovery_fraction=float(
                np.mean([r.recovery_fraction for r in records])
            ) if records else 0.0,
            loss_curve=losses,
            time_curve=tuple(r.sim_time for r in records),
        )
