"""A small convolutional classifier in NumPy.

The closest laptop-scale stand-in for the paper's ResNet-18: one
im2col-based convolution, ReLU, 2×2 max-pool, and a softmax head.
Slower per step than the MLP (which the experiment defaults use) but
structurally a real vision model — useful when the substitution
fidelity matters more than wall-clock.

Input convention: flat feature vectors of length ``H·W·C_in`` (the
:func:`~repro.training.datasets.make_cifar_like` layout), reshaped
internally to ``(batch, H, W, C_in)``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..exceptions import TrainingError
from .losses import SoftmaxCrossEntropy
from .models import Model


def _im2col(images: np.ndarray, k: int) -> np.ndarray:
    """Extract all k×k patches: (B, H, W, C) → (B, H', W', k·k·C)
    with H' = H−k+1 (valid padding)."""
    b, h, w, c = images.shape
    out_h, out_w = h - k + 1, w - k + 1
    strides = images.strides
    patches = np.lib.stride_tricks.as_strided(
        images,
        shape=(b, out_h, out_w, k, k, c),
        strides=(strides[0], strides[1], strides[2],
                 strides[1], strides[2], strides[3]),
        writeable=False,
    )
    return patches.reshape(b, out_h, out_w, k * k * c)


class Conv2DClassifier(Model):
    """conv(k×k) → ReLU → maxpool(2×2) → dense → softmax."""

    def __init__(
        self,
        side: int,
        in_channels: int,
        num_filters: int,
        num_classes: int,
        kernel: int = 3,
        seed: int = 0,
    ):
        if side < kernel + 1:
            raise TrainingError(
                f"side={side} too small for kernel={kernel} plus pooling"
            )
        if in_channels <= 0 or num_filters <= 0 or num_classes < 2:
            raise TrainingError(
                "need in_channels > 0, num_filters > 0, num_classes >= 2"
            )
        rng = np.random.default_rng(seed)
        self._side = side
        self._cin = in_channels
        self._k = kernel
        self._f = num_filters
        self._classes = num_classes
        self._conv_h = side - kernel + 1
        self._pool_h = self._conv_h // 2
        if self._pool_h == 0:
            raise TrainingError("feature map vanished after pooling")
        fan_in = kernel * kernel * in_channels
        self._w_conv = rng.normal(
            scale=np.sqrt(2.0 / fan_in), size=(fan_in, num_filters)
        )
        self._b_conv = np.zeros(num_filters)
        dense_in = self._pool_h * self._pool_h * num_filters
        self._w_fc = rng.normal(
            scale=np.sqrt(2.0 / dense_in), size=(dense_in, num_classes)
        )
        self._b_fc = np.zeros(num_classes)
        self._shapes = [
            self._w_conv.shape, self._b_conv.shape,
            self._w_fc.shape, self._b_fc.shape,
        ]

    # ------------------------------------------------------------------
    @property
    def num_parameters(self) -> int:
        return sum(int(np.prod(s)) for s in self._shapes)

    def get_parameters(self) -> np.ndarray:
        return np.concatenate([
            self._w_conv.ravel(), self._b_conv,
            self._w_fc.ravel(), self._b_fc,
        ])

    def set_parameters(self, flat: np.ndarray) -> None:
        """Install a flat parameter vector."""
        arr = self._validate_flat(flat)
        offset = 0
        tensors = []
        for shape in self._shapes:
            size = int(np.prod(shape))
            tensors.append(arr[offset:offset + size].reshape(shape).copy())
            offset += size
        self._w_conv, self._b_conv, self._w_fc, self._b_fc = tensors

    # ------------------------------------------------------------------
    def _forward(self, x_flat: np.ndarray):
        b = x_flat.shape[0]
        images = x_flat.reshape(b, self._side, self._side, self._cin)
        cols = _im2col(images, self._k)  # (B, H', W', fan_in)
        pre = cols @ self._w_conv + self._b_conv  # (B, H', W', F)
        act = np.maximum(pre, 0.0)
        # 2×2 max pooling (truncate odd edges).
        ph = self._pool_h
        trimmed = act[:, : 2 * ph, : 2 * ph, :]
        windows = trimmed.reshape(b, ph, 2, ph, 2, self._f)
        pooled = windows.max(axis=(2, 4))  # (B, ph, ph, F)
        flat = pooled.reshape(b, -1)
        logits = flat @ self._w_fc + self._b_fc
        cache = (cols, pre, trimmed, windows, pooled, flat)
        return logits, cache

    def logits(self, x: np.ndarray) -> np.ndarray:
        """Raw class scores for a batch of flat images."""
        return self._forward(x)[0]

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Hard class predictions."""
        return self.logits(x).argmax(axis=1)

    def loss_and_gradient(self, x, y) -> Tuple[float, np.ndarray]:
        logits, cache = self._forward(x)
        cols, pre, trimmed, windows, pooled, flat = cache
        loss = SoftmaxCrossEntropy.value(logits, y)
        dlogits = SoftmaxCrossEntropy.grad(logits, y)

        grad_w_fc = flat.T @ dlogits
        grad_b_fc = dlogits.sum(axis=0)
        dflat = dlogits @ self._w_fc.T
        dpooled = dflat.reshape(pooled.shape)

        # Max-pool backward: route gradient to each window's argmax.
        # windows axes: (B, ph, 2, ph, 2, F) — group the two window
        # axes together before taking/scattering the argmax.
        b = x.shape[0]
        ph, f = self._pool_h, self._f
        grouped = windows.transpose(0, 1, 3, 2, 4, 5).reshape(b, ph, ph, 4, f)
        argmax = grouped.argmax(axis=3)  # (B, ph, ph, F)
        dgrouped = np.zeros_like(grouped)
        bi, hi, wi, fi = np.meshgrid(
            np.arange(b), np.arange(ph), np.arange(ph), np.arange(f),
            indexing="ij",
        )
        dgrouped[bi, hi, wi, argmax, fi] = dpooled
        dtrimmed = (
            dgrouped.reshape(b, ph, ph, 2, 2, f)
            .transpose(0, 1, 3, 2, 4, 5)
            .reshape(b, 2 * ph, 2 * ph, f)
        )

        dact = np.zeros_like(pre)
        dact[:, : 2 * ph, : 2 * ph, :] = dtrimmed
        dpre = dact * (pre > 0)

        cols_2d = cols.reshape(-1, cols.shape[-1])
        dpre_2d = dpre.reshape(-1, self._f)
        grad_w_conv = cols_2d.T @ dpre_2d
        grad_b_conv = dpre_2d.sum(axis=0)

        grad = np.concatenate([
            grad_w_conv.ravel(), grad_b_conv,
            grad_w_fc.ravel(), grad_b_fc,
        ])
        return loss, grad
