"""Shared terminal output helpers for run-style commands.

``repro run`` and ``repro simulate`` print the same result block — the
engine summary's one-line description plus a downsampled loss
sparkline.  One emitter keeps the two byte-identical (and gives any
future run-shaped command the same look for free).
"""

from __future__ import annotations


def emit_summary(summary) -> None:
    """Print an engine summary: describe() line + loss sparkline."""
    from ..analysis.plotting import downsample, sparkline

    print(summary.describe())
    if getattr(summary, "loss_curve", None):
        print("loss: " + sparkline(downsample(list(summary.loss_curve), 60)))
