"""``repro check`` — the static-analysis pass."""

from __future__ import annotations

import argparse
import sys

from .registry import register_command


def cmd_check(args: argparse.Namespace) -> int:
    """Run the static-analysis pass; exit 0 clean / 1 findings / 2 usage."""
    import json as _json

    from ..staticcheck import (
        AnalysisCache, render_catalogue, render_json, render_text,
        run_check,
    )
    from ..staticcheck.baseline import (
        DEFAULT_BASELINE_PATH, apply_baseline, load_baseline,
        write_baseline,
    )
    from ..staticcheck.report import (
        catalogue_json, catalogue_markdown, render_stats,
    )
    from ..staticcheck.sarif import render_sarif

    if args.list_rules:
        if args.format == "json":
            print(_json.dumps(catalogue_json(), indent=2))
        elif args.format == "markdown":
            print(catalogue_markdown())
        else:
            print(render_catalogue())
        return 0
    select = args.select.split(",") if args.select else None
    cache = AnalysisCache(args.cache_path) if args.cache else None
    result = run_check(args.paths, select=select, cache=cache)

    if args.fix or args.fix_suppress:
        result = _apply_autofixes(args, result, select, cache)

    if args.write_baseline is not None:
        baseline_path = args.write_baseline or DEFAULT_BASELINE_PATH
        write_baseline(baseline_path, result.findings)
        print(
            f"froze {len(result.findings)} finding"
            f"{'s' if len(result.findings) != 1 else ''} "
            f"into {baseline_path}"
        )
        return 0

    suppressed = stale = 0
    if args.baseline is not None:
        baseline_path = args.baseline or DEFAULT_BASELINE_PATH
        split = apply_baseline(
            result.findings, load_baseline(baseline_path)
        )
        result.findings = split.new
        suppressed, stale = len(split.suppressed), len(split.stale)

    if args.format == "json":
        print(render_json(result))
    elif args.format == "sarif":
        print(render_sarif(result))
    elif args.format == "markdown":
        raise ValueError(
            "--format markdown is only valid with --list-rules"
        )
    else:
        print(render_text(result))
        if suppressed or stale:
            print(
                f"baseline: {suppressed} finding"
                f"{'s' if suppressed != 1 else ''} frozen"
                + (f", {stale} stale entries" if stale else "")
            )
    if args.stats:
        print(render_stats(result), file=sys.stderr)
    return 0 if result.ok else 1


def _apply_autofixes(args, result, select, cache):
    """``repro check --fix``: rewrite what is mechanical, re-check."""
    from pathlib import Path

    from ..staticcheck import run_check
    from ..staticcheck.autofix import apply_fixes

    suppress = (
        {s.strip().upper() for s in args.fix_suppress.split(",")}
        if args.fix_suppress else set()
    )
    sources = {}
    for finding in result.findings:
        path = Path(finding.path)
        if finding.path not in sources and path.is_file():
            sources[finding.path] = path.read_text(encoding="utf-8")
    fixed = apply_fixes(result.findings, sources, suppress=suppress)
    for path in sorted(fixed.changed_paths):
        Path(path).write_text(sources[path], encoding="utf-8")
    total = sum(fixed.fixed.values())
    if total:
        breakdown = ", ".join(
            f"{rule} x{count}"
            for rule, count in sorted(fixed.fixed.items())
        )
        print(
            f"fixed {total} finding{'s' if total != 1 else ''} "
            f"({breakdown}) in {len(fixed.changed_paths)} files",
            file=sys.stderr,
        )
        return run_check(args.paths, select=select, cache=cache)
    return result


@register_command(
    "check",
    help="static analysis: determinism, time units, registries, "
         "spec feasibility",
)
def configure(parser: argparse.ArgumentParser) -> None:
    """Wire the ``check`` subparser (arguments + handler)."""
    parser.add_argument(
        "paths", nargs="*", default=["src", "tests", "examples"],
        help="files/directories to check (default: src tests examples)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif", "markdown"),
        default="text",
        help="report format (sarif for code scanning; markdown only "
             "with --list-rules)",
    )
    parser.add_argument(
        "--select", default=None,
        help="comma-separated rule ids or family prefixes to run "
             "(e.g. FLOW,DET,REG005; default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit (honours --format "
             "json/markdown)",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print slowest rules/files and cache traffic to stderr",
    )
    parser.add_argument(
        "--cache", action="store_true",
        help="use the incremental analysis cache (see --cache-path)",
    )
    parser.add_argument(
        "--cache-path", default=".repro-check-cache.json",
        help="incremental cache location (default: "
             ".repro-check-cache.json)",
    )
    parser.add_argument(
        "--baseline", nargs="?", const="", default=None,
        metavar="PATH",
        help="subtract baseline-frozen findings; fail only on new ones "
             "(default path: .repro-check-baseline.json)",
    )
    parser.add_argument(
        "--write-baseline", nargs="?", const="", default=None,
        metavar="PATH",
        help="freeze the current findings into a baseline file and "
             "exit 0",
    )
    parser.add_argument(
        "--fix", action="store_true",
        help="apply mechanical autofixes (seeded default_rng in docs, "
             "sorted(set(...)), unambiguous registry rewrites), then "
             "re-check",
    )
    parser.add_argument(
        "--fix-suppress", default=None, metavar="RULES",
        help="insert '# repro: noqa[RULE]' on lines flagged by the "
             "given comma-separated rules (freeze deliberate "
             "exceptions)",
    )
    parser.set_defaults(func=cmd_check)
