"""``repro advise`` — rank candidate placements for (n, c, w)."""

from __future__ import annotations

import argparse

from ..analysis.reporting import Table
from .registry import register_command


def cmd_advise(args: argparse.Namespace) -> int:
    """Rank all candidate placements for (n, c, w)."""
    from ..core.advisor import rank_placements

    ranking = rank_placements(
        args.n, args.c, args.w, trials=args.trials, seed=args.seed
    )
    table = Table(
        title=f"Placement ranking for n={args.n}, c={args.c}, w={args.w}",
        columns=["rank", "placement", "E[recovered partitions]", "method"],
    )
    for idx, score in enumerate(ranking, start=1):
        table.add_row(
            idx, score.label, round(score.expected_recovered, 4),
            "exact" if score.exact else "monte-carlo",
        )
    table.show()
    print(f"recommended: {ranking[0].label}")
    return 0


@register_command("advise", help="rank placements for (n, c, w)")
def configure(parser: argparse.ArgumentParser) -> None:
    """Wire the ``advise`` subparser (arguments + handler)."""
    parser.add_argument("-n", type=int, required=True)
    parser.add_argument("-c", type=int, required=True)
    parser.add_argument("-w", type=int, required=True)
    parser.add_argument("--trials", type=int, default=2000)
    parser.add_argument("--seed", type=int, default=0)
    parser.set_defaults(func=cmd_advise)
