"""Argument-parsing helpers shared by several subcommands.

Placement flags (``--scheme/-n/-c/--g/--c1``) are shared by
``placement``, ``decode``, ``recovery`` and ``simulate``; the
``KEY=VALUE`` parameter grammars are shared by ``placements``,
``environments``, ``simulate`` and ``run --sweep``.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from ..core.placement import Placement
from ..core.scheme import make_placement
from ..exceptions import ReproError


def _build_placement(args: argparse.Namespace) -> Placement:
    # Every CLI placement goes through the placement registry, the same
    # construction path specs and library code use (REG001/REG004).
    if args.scheme == "hr":
        if args.g is None or args.c1 is None:
            raise ReproError("HR needs --g and --c1 (c2 = c - c1)")
        return make_placement(
            "hr", num_workers=args.n, c1=args.c1, c2=args.c - args.c1,
            num_groups=args.g,
        )
    return make_placement(
        args.scheme, num_workers=args.n, partitions_per_worker=args.c
    )


def _add_placement_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scheme", choices=("fr", "cr", "hr"), required=True,
        help="placement family",
    )
    parser.add_argument("-n", type=int, required=True, help="number of workers")
    parser.add_argument("-c", type=int, required=True, help="partitions per worker")
    parser.add_argument("--g", type=int, default=None, help="HR: number of groups")
    parser.add_argument("--c1", type=int, default=None, help="HR: upper-part rows")


def _parse_sweep_value(token: str):
    """``--sweep`` tokens: int if possible, else float, else string."""
    for caster in (int, float):
        try:
            return caster(token)
        except ValueError:
            continue
    return token


def _parse_sweep_axes(clauses: List[str]) -> dict:
    """``--sweep FIELD=V1,V2`` clauses → an axes dict.

    Shared by ``repro run --sweep`` and ``repro submit --sweep`` so the
    two commands accept the exact same grammar (and therefore describe
    the exact same grid — the bit-identity tests rely on it).
    """
    axes = {}
    for clause in clauses:
        name, sep, values = clause.partition("=")
        if not sep or not values:
            raise ReproError(
                f"--sweep needs field=v1,v2,... , got {clause!r}"
            )
        axes[name.strip()] = [
            _parse_sweep_value(tok) for tok in values.split(",") if tok
        ]
    return axes


def _parse_param_value(token: str):
    """Model-parameter values: JSON when it parses (``[0,1]``, ``0.5``,
    ``null``), else a comma token list, else the sweep scalar rules."""
    import json

    try:
        return json.loads(token)
    except ValueError:
        pass
    if "," in token:
        return [_parse_sweep_value(t) for t in token.split(",") if t]
    return _parse_sweep_value(token)


def _parse_model_params(
    clauses: Optional[List[str]], *, flag: str = "--param"
) -> dict:
    """``KEY=VALUE`` clauses → a model-parameter dict."""
    params = {}
    for clause in clauses or []:
        key, sep, value = clause.partition("=")
        if not sep or not value:
            raise ReproError(f"{flag} needs key=value, got {clause!r}")
        params[key.strip()] = _parse_param_value(value.strip())
    return params
