"""Allow ``python -m repro.cli`` — the historical module invocation."""

from . import main

if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
