"""``repro serve`` / ``submit`` / ``jobs`` / ``cancel`` — the multi-job
coordinator's command-line surface.

All four commands meet over a *mailbox directory* (see
:mod:`repro.serve.mailbox`): ``repro serve MAILBOX`` runs a
:class:`~repro.serve.Coordinator` against it; ``repro submit`` drops
spec files into its inbox; ``repro jobs`` lists the published state
snapshots; ``repro cancel`` requests a round-boundary cancellation.
The commands work in either order — submissions made before the
coordinator starts are picked up when it does.
"""

from __future__ import annotations

import argparse
import asyncio
import json

from ..analysis.reporting import Table
from .registry import register_command


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve a mailbox directory until drained (--once) or forever."""
    from ..serve import Coordinator, ServeMailbox

    coordinator = Coordinator(
        mode=args.mode,
        max_running=args.max_running,
        queue_limit=args.queue_limit,
        trace_dir=args.trace_dir,
    )
    mailbox = ServeMailbox(args.mailbox)
    print(
        f"serving {args.mailbox} [{args.mode}] — "
        f"max_running={args.max_running}, queue_limit={args.queue_limit}"
    )
    with coordinator:
        try:
            asyncio.run(coordinator.serve(
                mailbox,
                poll_interval=args.poll_interval,
                idle_exit=args.idle_exit,
                once=args.once,
            ))
        except KeyboardInterrupt:  # pragma: no cover - interactive
            pass
    snapshots = coordinator.jobs()
    done = sum(1 for s in snapshots if s["state"] == "done")
    failed = sum(1 for s in snapshots if s["state"] == "failed")
    cancelled = sum(1 for s in snapshots if s["state"] == "cancelled")
    print(
        f"served {len(snapshots)} jobs: {done} done, {failed} failed, "
        f"{cancelled} cancelled"
    )
    return 0 if failed == 0 else 1


def cmd_submit(args: argparse.Namespace) -> int:
    """Submit a spec file to a serve mailbox; optionally wait for it."""
    from ..serve import CoordinatorClient

    client = CoordinatorClient(args.mailbox)
    job_id = client.submit(
        args.spec,
        name=args.name,
        weight=args.weight,
        trace=True if args.trace else None,
        job_id=args.job_id,
    )
    print(f"submitted {job_id}")
    if args.wait:
        snapshot = client.wait(job_id, timeout=args.timeout)
        print(f"{job_id}: {snapshot['state']}")
        if snapshot.get("error"):
            print(f"  {snapshot['error']}")
        report = snapshot.get("report")
        if isinstance(report, dict):
            print(
                f"  {report.get('num_steps', 0)} steps, "
                f"{report.get('total_sim_time', 0.0):.2f}s simulated, "
                f"final loss {report.get('final_loss', float('nan')):.4f}"
            )
        return 0 if snapshot["state"] == "done" else 1
    return 0


def cmd_jobs(args: argparse.Namespace) -> int:
    """List every job the mailbox's coordinator knows about."""
    from ..serve import CoordinatorClient

    client = CoordinatorClient(args.mailbox)
    snapshots = client.jobs()
    if args.json:
        print(json.dumps(snapshots, indent=2, sort_keys=True))
        return 0
    serving = client.serving()
    status = (
        f"coordinator: {serving['mode']} mode, pid {serving['pid']}"
        if serving else "coordinator: not running"
    )
    print(status)
    table = Table(
        title=f"Jobs — {args.mailbox}",
        columns=["job", "name", "state", "rounds", "detail"],
    )
    for snap in snapshots:
        detail = snap.get("error", "")
        report = snap.get("report")
        if isinstance(report, dict):
            detail = f"final loss {report.get('final_loss'):.4f}"
        table.add_row(
            snap.get("id", "?"),
            snap.get("name", "-"),
            snap.get("state", "?"),
            snap.get("rounds_done", "-"),
            detail,
        )
    table.show()
    return 0


def cmd_cancel(args: argparse.Namespace) -> int:
    """Request cancellation of a submitted job."""
    from ..serve import CoordinatorClient

    client = CoordinatorClient(args.mailbox)
    client.cancel(args.job_id)
    print(f"cancel requested for {args.job_id}")
    return 0


def _add_mailbox_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "mailbox",
        help="mailbox directory shared with `repro serve` "
             "(created if missing)",
    )


@register_command("serve", help="run the multi-job coordinator on a mailbox")
def configure_serve(parser: argparse.ArgumentParser) -> None:
    """Wire the ``serve`` subparser (arguments + handler)."""
    _add_mailbox_arg(parser)
    parser.add_argument(
        "--mode", choices=("live", "deterministic"), default="live",
        help="live: thread-pool rounds; deterministic: inline, "
             "bit-for-bit reproducible interleaving",
    )
    parser.add_argument("--max-running", type=int, default=4,
                        help="jobs running concurrently (default 4)")
    parser.add_argument("--queue-limit", type=int, default=64,
                        help="admission bound on active jobs (default 64)")
    parser.add_argument("--trace-dir", default=None,
                        help="stream each job's JSONL round trace into "
                             "this directory")
    parser.add_argument("--once", action="store_true",
                        help="drain the current inbox and all admitted "
                             "jobs, then exit")
    parser.add_argument("--idle-exit", type=float, default=None,
                        metavar="SECONDS",
                        help="exit after this long with nothing to do")
    parser.add_argument("--poll-interval", type=float, default=0.05,
                        help="inbox poll period in seconds (default 0.05)")
    parser.set_defaults(func=cmd_serve)


@register_command("submit", help="submit a spec to a serve mailbox")
def configure_submit(parser: argparse.ArgumentParser) -> None:
    """Wire the ``submit`` subparser (arguments + handler)."""
    _add_mailbox_arg(parser)
    parser.add_argument("spec", help="path to an ExperimentSpec file "
                                     "(.json/.toml)")
    parser.add_argument("--name", default=None,
                        help="job display name (default: spec name)")
    parser.add_argument("--weight", type=int, default=1,
                        help="scheduling weight (default 1)")
    parser.add_argument("--job-id", default=None,
                        help="explicit job id (default: generated)")
    parser.add_argument("--trace", action="store_true",
                        help="request round-trace streaming (needs the "
                             "coordinator's --trace-dir)")
    parser.add_argument("--wait", action="store_true",
                        help="block until the job reaches a terminal "
                             "state and print its result")
    parser.add_argument("--timeout", type=float, default=60.0,
                        help="--wait timeout in seconds (default 60)")
    parser.set_defaults(func=cmd_submit)


@register_command("jobs", help="list jobs on a serve mailbox")
def configure_jobs(parser: argparse.ArgumentParser) -> None:
    """Wire the ``jobs`` subparser (arguments + handler)."""
    _add_mailbox_arg(parser)
    parser.add_argument("--json", action="store_true",
                        help="print raw JSON snapshots")
    parser.set_defaults(func=cmd_jobs)


@register_command("cancel", help="cancel a job on a serve mailbox")
def configure_cancel(parser: argparse.ArgumentParser) -> None:
    """Wire the ``cancel`` subparser (arguments + handler)."""
    _add_mailbox_arg(parser)
    parser.add_argument("job_id", help="job id from `repro submit`/`jobs`")
    parser.set_defaults(func=cmd_cancel)
