"""``repro serve`` / ``submit`` / ``jobs`` / ``cancel`` — the multi-job
coordinator's command-line surface.

All four commands meet over a *mailbox directory* (see
:mod:`repro.serve.mailbox`): ``repro serve MAILBOX`` runs a
:class:`~repro.serve.Coordinator` against it; ``repro submit`` drops
spec files into its inbox; ``repro jobs`` lists the published state
snapshots; ``repro cancel`` requests a round-boundary cancellation.
The commands work in either order — submissions made before the
coordinator starts are picked up when it does.

``repro submit --sweep FIELD=V1,V2`` fans a spec's parameter grid into
one job per grid point — the *same* grid ``repro run --sweep`` builds
(shared clause parser, same ``dataclasses.replace`` cells), so the
fan-out produces bit-identical reports to the serial sweep.  ``repro
jobs --watch`` is a polling dashboard over the published snapshots and
streamed round traces; the wall clock here only paces the *display*
(CLI layer — results never depend on it).
"""

from __future__ import annotations

import argparse
import asyncio
import json

from ..analysis.reporting import Table
from .params import _parse_sweep_axes
from .registry import register_command

#: job states with no further transitions (mirrors the serve layer's
#: terminal set plus the mailbox-only ``rejected``).
_TERMINAL_STATES = frozenset(("done", "failed", "cancelled", "rejected"))


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve a mailbox directory until drained (--once) or forever."""
    from ..serve import Coordinator, ServeMailbox

    coordinator = Coordinator(
        mode=args.mode,
        max_running=args.max_running,
        queue_limit=args.queue_limit,
        trace_dir=args.trace_dir,
        pool_capacity=args.pool_capacity,
    )
    mailbox = ServeMailbox(args.mailbox)
    print(
        f"serving {args.mailbox} [{args.mode}] — "
        f"max_running={args.max_running}, queue_limit={args.queue_limit}"
    )
    with coordinator:
        try:
            asyncio.run(coordinator.serve(
                mailbox,
                poll_interval=args.poll_interval,
                idle_exit=args.idle_exit,
                once=args.once,
            ))
        except KeyboardInterrupt:  # pragma: no cover - interactive
            pass
    snapshots = coordinator.jobs()
    done = sum(1 for s in snapshots if s["state"] == "done")
    failed = sum(1 for s in snapshots if s["state"] == "failed")
    cancelled = sum(1 for s in snapshots if s["state"] == "cancelled")
    print(
        f"served {len(snapshots)} jobs: {done} done, {failed} failed, "
        f"{cancelled} cancelled"
    )
    return 0 if failed == 0 else 1


def _print_rejection(exc) -> None:
    """Render a structured rejection (reason / depth / retry hint)."""
    print(f"rejected: {exc}")
    record = getattr(exc, "record", None) or {}
    details = record.get("details", record)
    if isinstance(details, dict):
        depth = details.get("queue_depth")
        limit = details.get("queue_limit")
        if depth is not None and limit is not None:
            print(f"  queue depth {depth} / limit {limit}")
    hint = getattr(exc, "retry_hint", "")
    if hint:
        print(f"  retry: {hint}")


def _wait_and_print(client, job_id: str, timeout: float) -> int:
    """Wait one job to a terminal state; print its result lines."""
    snapshot = client.wait(job_id, timeout=timeout)
    print(f"{job_id}: {snapshot['state']}")
    if snapshot.get("error"):
        print(f"  {snapshot['error']}")
    report = snapshot.get("report")
    if isinstance(report, dict):
        print(
            f"  {report.get('num_steps', 0)} steps, "
            f"{report.get('total_sim_time', 0.0):.2f}s simulated, "
            f"final loss {report.get('final_loss', float('nan')):.4f}"
        )
    return 0 if snapshot["state"] == "done" else 1


def _submit_sweep(client, args: argparse.Namespace) -> int:
    """Fan a spec's parameter grid into one mailbox job per point.

    The grid is built exactly as ``repro run --sweep`` builds it —
    same clause parser, same :meth:`Sweep.combinations` row-major
    order, same ``dataclasses.replace(base, **params)`` cells with the
    base spec's own seed — so a drained mailbox holds reports
    bit-identical to the serial sweep's summaries.  ``--jobs N``
    additionally fans each cell into N seed-replicates whose seeds are
    spawned in the parent (:func:`~repro.parallel.spawn_point_seeds`),
    the same discipline the process-pool sweep executor uses.
    """
    import dataclasses

    from ..engine.spec import ExperimentSpec
    from ..exceptions import SubmissionRejectedError
    from ..experiments.sweep import Sweep
    from ..parallel import spawn_point_seeds

    spec = ExperimentSpec.from_file(args.spec)
    axes = _parse_sweep_axes(args.sweep)
    # over_spec validates the axes against spec fields; the grid walk
    # below matches Sweep.run's combos exactly (row-major order).
    sweep = Sweep.over_spec(f"{spec.name} sweep", spec, axes)
    combos = list(sweep.combinations())
    replicas = max(1, args.jobs or 1)
    seeds = (
        spawn_point_seeds(spec.seed, len(combos) * replicas)
        if replicas > 1 else None
    )
    job_ids = []
    for i, params in enumerate(combos):
        cell = dataclasses.replace(spec, **params)
        label = ",".join(f"{k}={params[k]}" for k in axes)
        for r in range(replicas):
            variant, name = cell, f"{spec.name}[{label}]"
            if seeds is not None:
                child = seeds[i * replicas + r]
                variant = dataclasses.replace(
                    cell, seed=int(child.generate_state(1)[0])
                )
                name = f"{name}#r{r}"
            try:
                job_id = client.submit(
                    variant,
                    name=name,
                    weight=args.weight,
                    trace=True if args.trace else None,
                    priority=args.priority,
                    deadline=args.deadline,
                )
            except SubmissionRejectedError as exc:
                _print_rejection(exc)
                return 1
            print(f"submitted {job_id}")
            job_ids.append(job_id)
    print(
        f"submitted {len(job_ids)} jobs over {len(combos)} grid points"
    )
    if args.wait:
        failures = 0
        for job_id in job_ids:
            try:
                failures += _wait_and_print(client, job_id, args.timeout)
            except SubmissionRejectedError as exc:
                _print_rejection(exc)
                failures += 1
        return 0 if failures == 0 else 1
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    """Submit a spec file to a serve mailbox; optionally wait for it.

    With ``--sweep FIELD=V1,V2`` (repeatable) the spec becomes the base
    of a grid and every grid point is submitted as its own job.
    """
    from ..exceptions import SubmissionRejectedError
    from ..serve import CoordinatorClient

    client = CoordinatorClient(args.mailbox)
    if args.sweep:
        return _submit_sweep(client, args)
    try:
        job_id = client.submit(
            args.spec,
            name=args.name,
            weight=args.weight,
            trace=True if args.trace else None,
            job_id=args.job_id,
            priority=args.priority,
            deadline=args.deadline,
        )
    except SubmissionRejectedError as exc:
        _print_rejection(exc)
        return 1
    print(f"submitted {job_id}")
    if args.wait:
        try:
            return _wait_and_print(client, job_id, args.timeout)
        except SubmissionRejectedError as exc:
            _print_rejection(exc)
            return 1
    return 0


def _render_jobs(client, args: argparse.Namespace):
    """One dashboard frame: status line, job table, trace aggregates.

    Returns ``(snapshots, serving)`` so the watch loop can decide
    whether anything is still in flight.
    """
    snapshots = client.jobs()
    serving = client.serving()
    status = (
        f"coordinator: {serving['mode']} mode, pid {serving['pid']}"
        if serving else "coordinator: not running"
    )
    print(status)
    table = Table(
        title=f"Jobs — {args.mailbox}",
        columns=["job", "name", "state", "rounds", "detail"],
    )
    for snap in snapshots:
        detail = snap.get("error", "")
        report = snap.get("report")
        if isinstance(report, dict):
            detail = f"final loss {report.get('final_loss'):.4f}"
        table.add_row(
            snap.get("id", "?"),
            snap.get("name", "-"),
            snap.get("state", "?"),
            snap.get("rounds_done", "-"),
            detail,
        )
    table.show()
    if getattr(args, "watch", False):
        _render_trace_aggregates(snapshots)
    return snapshots, serving


def _render_trace_aggregates(snapshots) -> None:
    """Aggregate every job's streamed round trace into a live table.

    Traces are keyed by the job name (the runner's trace context), so
    re-aggregating them groups rounds per job — p50/p95 step times and
    wasted compute update as the coordinator streams more rounds.
    """
    import pathlib

    from ..obs import aggregate_traces, read_traces

    traces = []
    for snap in snapshots:
        path = snap.get("trace_path")
        if not path or not pathlib.Path(path).exists():
            continue
        try:
            traces.extend(read_traces(path))
        except Exception:
            # A half-written final line loses one frame of dashboard
            # detail, never the run — the next poll rereads the file.
            continue
    if not traces:
        return
    table = Table(
        title="Round traces",
        columns=["job", "rounds", "mean step (s)", "p95 (s)",
                 "wasted compute"],
    )
    for label, agg in aggregate_traces(traces).items():
        table.add_row(
            label,
            agg.rounds,
            round(agg.mean_step_time, 4),
            round(agg.p95_step_time, 4),
            agg.total_wasted_compute,
        )
    table.show()


def _watch_jobs(client, args: argparse.Namespace) -> int:
    """Re-render the dashboard until every known job is terminal.

    The poll interval is wall clock, which is fine at the CLI layer:
    it paces the display only, and every number shown comes from the
    coordinator's published snapshots and traces.
    """
    import time

    while True:
        snapshots, serving = _render_jobs(client, args)
        pending = [
            s for s in snapshots
            if s.get("state") not in _TERMINAL_STATES
        ]
        if not pending and snapshots:
            failed = sum(
                1 for s in snapshots
                if s.get("state") in ("failed", "rejected")
            )
            print(f"all {len(snapshots)} jobs terminal ({failed} failed)")
            return 0 if failed == 0 else 1
        if serving is None and not pending:
            print("no jobs and no coordinator; exiting watch")
            return 0
        time.sleep(args.interval)
        print()


def cmd_jobs(args: argparse.Namespace) -> int:
    """List every job the mailbox's coordinator knows about."""
    from ..serve import CoordinatorClient

    client = CoordinatorClient(args.mailbox)
    if args.watch:
        return _watch_jobs(client, args)
    if args.json:
        print(json.dumps(client.jobs(), indent=2, sort_keys=True))
        return 0
    _render_jobs(client, args)
    return 0


def cmd_cancel(args: argparse.Namespace) -> int:
    """Request cancellation of a submitted job."""
    from ..serve import CoordinatorClient

    client = CoordinatorClient(args.mailbox)
    client.cancel(args.job_id)
    print(f"cancel requested for {args.job_id}")
    return 0


def _add_mailbox_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "mailbox",
        help="mailbox directory shared with `repro serve` "
             "(created if missing)",
    )


@register_command("serve", help="run the multi-job coordinator on a mailbox")
def configure_serve(parser: argparse.ArgumentParser) -> None:
    """Wire the ``serve`` subparser (arguments + handler)."""
    _add_mailbox_arg(parser)
    parser.add_argument(
        "--mode", choices=("live", "deterministic"), default="live",
        help="live: thread-pool rounds; deterministic: inline, "
             "bit-for-bit reproducible interleaving",
    )
    parser.add_argument("--max-running", type=int, default=4,
                        help="jobs running concurrently (default 4)")
    parser.add_argument("--queue-limit", type=int, default=64,
                        help="admission bound on active jobs (default 64)")
    parser.add_argument("--trace-dir", default=None,
                        help="stream each job's JSONL round trace into "
                             "this directory")
    parser.add_argument("--once", action="store_true",
                        help="drain the current inbox and all admitted "
                             "jobs, then exit")
    parser.add_argument("--idle-exit", type=float, default=None,
                        metavar="SECONDS",
                        help="exit after this long with nothing to do")
    parser.add_argument("--poll-interval", type=float, default=0.05,
                        help="inbox poll period in seconds (default 0.05)")
    parser.add_argument("--pool-capacity", type=int, default=None,
                        metavar="N",
                        help="live engines kept resident in the shared "
                             "worker pool; excess jobs are parked as "
                             "checkpoints and resumed on demand "
                             "(default: --max-running)")
    parser.set_defaults(func=cmd_serve)


@register_command("submit", help="submit a spec to a serve mailbox")
def configure_submit(parser: argparse.ArgumentParser) -> None:
    """Wire the ``submit`` subparser (arguments + handler)."""
    _add_mailbox_arg(parser)
    parser.add_argument("spec", help="path to an ExperimentSpec file "
                                     "(.json/.toml)")
    parser.add_argument("--name", default=None,
                        help="job display name (default: spec name)")
    parser.add_argument("--weight", type=int, default=1,
                        help="scheduling weight (default 1)")
    parser.add_argument("--job-id", default=None,
                        help="explicit job id (default: generated)")
    parser.add_argument("--trace", action="store_true",
                        help="request round-trace streaming (needs the "
                             "coordinator's --trace-dir)")
    parser.add_argument("--priority", type=int, default=0,
                        help="scheduling-class priority; higher runs "
                             "first (default 0)")
    parser.add_argument("--deadline", type=float, default=None,
                        metavar="SIM_SECONDS",
                        help="soft deadline for earliest-deadline-first "
                             "tie-breaking within a priority tier")
    parser.add_argument("--sweep", action="append", default=None,
                        metavar="FIELD=V1,V2",
                        help="fan a grid over spec fields into one job "
                             "per point (repeatable; same grammar and "
                             "grid as `repro run --sweep`)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="with --sweep: seed-replicates per grid "
                             "point (default 1 — the exact "
                             "`repro run --sweep` grid)")
    parser.add_argument("--wait", action="store_true",
                        help="block until the job reaches a terminal "
                             "state and print its result")
    parser.add_argument("--timeout", type=float, default=60.0,
                        help="--wait timeout in seconds (default 60)")
    parser.set_defaults(func=cmd_submit)


@register_command("jobs", help="list jobs on a serve mailbox")
def configure_jobs(parser: argparse.ArgumentParser) -> None:
    """Wire the ``jobs`` subparser (arguments + handler)."""
    _add_mailbox_arg(parser)
    parser.add_argument("--json", action="store_true",
                        help="print raw JSON snapshots")
    parser.add_argument("--watch", action="store_true",
                        help="poll and re-render until every job is "
                             "terminal; adds a live trace-aggregate "
                             "table for traced jobs")
    parser.add_argument("--interval", type=float, default=1.0,
                        metavar="SECONDS",
                        help="--watch refresh period (default 1.0)")
    parser.set_defaults(func=cmd_jobs)


@register_command("cancel", help="cancel a job on a serve mailbox")
def configure_cancel(parser: argparse.ArgumentParser) -> None:
    """Wire the ``cancel`` subparser (arguments + handler)."""
    _add_mailbox_arg(parser)
    parser.add_argument("job_id", help="job id from `repro submit`/`jobs`")
    parser.set_defaults(func=cmd_cancel)
