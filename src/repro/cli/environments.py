"""``repro environments`` — the straggler-environment catalogue."""

from __future__ import annotations

import argparse

from ..analysis.reporting import Table
from ..exceptions import ReproError
from .params import _parse_model_params
from .registry import register_command


def cmd_environments(args: argparse.Namespace) -> int:
    """List registered environment models, or describe one kind."""
    import inspect

    from ..env import (
        ENV_REGISTRY,
        LAYERS,
        make_model,
        model_fingerprint,
        resolve_model,
        spec_of,
    )

    if args.kind is None:
        table = Table(
            title="Registered environment models",
            columns=["layer", "kind", "aliases", "summary", "paper"],
        )
        for layer in LAYERS:
            for kind in sorted(ENV_REGISTRY[layer]):
                family = ENV_REGISTRY[layer][kind]
                table.add_row(
                    layer,
                    kind,
                    ", ".join(family.aliases) if family.aliases else "-",
                    family.summary,
                    family.paper,
                )
        table.show()
        return 0

    matches = []
    for layer in (args.layer,) if args.layer else LAYERS:
        try:
            matches.append(resolve_model(layer, args.kind))
        except ReproError as exc:
            if args.layer:
                raise ReproError(str(exc)) from exc
    if not matches:
        import difflib

        known = sorted(
            {k for layer in LAYERS for k in ENV_REGISTRY[layer]}
            | {
                alias
                for layer in LAYERS
                for fam in ENV_REGISTRY[layer].values()
                for alias in fam.aliases
            }
        )
        close = difflib.get_close_matches(args.kind, known, n=1)
        hint = f" — did you mean {close[0]!r}?" if close else ""
        raise ReproError(
            f"unknown environment model {args.kind!r} in any layer{hint}; "
            "run `repro environments` for the catalogue"
        )
    for family in matches:
        alias_note = (
            f" (aliases: {', '.join(family.aliases)})" if family.aliases else ""
        )
        print(f"[{family.layer}] {family.kind}{alias_note}")
        if family.summary:
            print(f"  {family.summary}")
        if family.paper:
            print(f"  paper: {family.paper}")
        rendered = [
            name if default is inspect.Parameter.empty
            else f"{name}={default!r}"
            for name, default in family.parameters().items()
        ]
        print(f"  params: {', '.join(rendered) if rendered else '(none)'}")
        if family.nested:
            print(
                f"  nested sub-model params: {', '.join(family.nested)}"
            )
    if args.param:
        if len(matches) > 1:
            raise ReproError(
                f"kind {args.kind!r} exists in several layers "
                f"({', '.join(f.layer for f in matches)}); pass --layer "
                "to build it"
            )
        family = matches[0]
        model = make_model(
            family.layer, family.kind, **_parse_model_params(args.param)
        )
        print(f"  spec        : {spec_of(model)}")
        print(f"  fingerprint : {model_fingerprint(model)}")
    return 0


@register_command(
    "environments",
    help="list registered environment models "
         "(delay/failure/compute/network/contention) / describe one",
)
def configure(parser: argparse.ArgumentParser) -> None:
    """Wire the ``environments`` subparser (arguments + handler)."""
    parser.add_argument(
        "kind", nargs="?", default=None,
        help="model kind to describe (omit to list the catalogue)",
    )
    parser.add_argument(
        "--layer",
        choices=("delay", "failure", "compute", "network", "contention"),
        default=None,
        help="restrict the kind lookup to one layer",
    )
    parser.add_argument(
        "--param", action="append", default=None, metavar="KEY=VALUE",
        help="build the model with these parameters and print its "
             "canonical spec + fingerprint (repeatable)",
    )
    parser.set_defaults(func=cmd_environments)
