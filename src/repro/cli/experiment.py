"""``repro experiment`` — run the paper experiments end to end."""

from __future__ import annotations

import argparse
import pathlib

from ..engine.report import RunReport
from .registry import register_command


def cmd_experiment(args: argparse.Namespace) -> int:
    """Run one of the paper experiments end to end."""
    from ..experiments.runner import main as runner_main

    argv = [args.figure]
    if args.jobs is not None:
        argv += ["--jobs", str(args.jobs)]
    runner_main(argv)
    if args.report is not None:
        # Figure runs aggregate many training runs; the report carries
        # identity only (no single trajectory to embed).
        report = RunReport(name=args.figure, kind="experiment")
        pathlib.Path(args.report).write_text(report.to_json() + "\n")
    return 0


@register_command("experiment", help="run a paper experiment")
def configure(parser: argparse.ArgumentParser) -> None:
    """Wire the ``experiment`` subparser (arguments + handler)."""
    parser.add_argument(
        "figure", choices=("fig11", "fig12", "fig13", "extra", "all"),
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="process-pool workers for the figure grid (default: serial; "
             "results are identical either way)",
    )
    parser.add_argument(
        "--report", default=None, metavar="PATH",
        help="also write a structured RunReport JSON stub here",
    )
    parser.set_defaults(func=cmd_experiment)
