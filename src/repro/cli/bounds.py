"""``repro bounds`` — Theorem 10/11 bound table for (n, c)."""

from __future__ import annotations

import argparse

from ..analysis.reporting import Table
from ..core.bounds import alpha_lower_bound, alpha_upper_bound
from .registry import register_command


def cmd_bounds(args: argparse.Namespace) -> int:
    """Print the Theorem 10/11 bound table for (n, c)."""
    table = Table(
        title=f"Theorem 10/11 bounds on α(G[W']) — n={args.n}, c={args.c}",
        columns=["w", "lower (Thm 10)", "upper (Thm 11)"],
    )
    for w in range(1, args.n + 1):
        table.add_row(
            w,
            alpha_lower_bound(args.n, args.c, w),
            alpha_upper_bound(args.n, args.c, w),
        )
    table.show()
    return 0


@register_command("bounds", help="Theorem 10/11 bound table")
def configure(parser: argparse.ArgumentParser) -> None:
    """Wire the ``bounds`` subparser (arguments + handler)."""
    parser.add_argument("-n", type=int, required=True)
    parser.add_argument("-c", type=int, required=True)
    parser.set_defaults(func=cmd_bounds)
