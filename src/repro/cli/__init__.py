"""Command-line interface.

Exposes the library's main entry points without writing Python::

    python -m repro placement --scheme cr -n 8 -c 2
    python -m repro decode    --scheme cr -n 8 -c 2 --available 0,2,5
    python -m repro recovery  --scheme fr -n 8 -c 2 --trials 2000
    python -m repro bounds    -n 8 -c 2
    python -m repro placements
    python -m repro placements hr -n 12 -c 3 --param c1=2 --param c2=1 --param num_groups=3
    python -m repro environments
    python -m repro environments pareto --param alpha=2.5 --param scale=0.5
    python -m repro experiment fig13
    python -m repro experiment fig11 --jobs 8
    python -m repro run       experiment.json
    python -m repro run       experiment.json --sweep wait_for=2,3,4 --jobs 4
    python -m repro trace record --out run.jsonl
    python -m repro trace summarize run.jsonl
    python -m repro check     src tests examples
    python -m repro serve     ./mailbox --once --trace-dir traces
    python -m repro submit    ./mailbox experiment.json --wait
    python -m repro jobs      ./mailbox
    python -m repro cancel    ./mailbox job-0003

``repro check`` exits 0 when clean, 1 when it reports findings, and 2
on usage errors (unknown rule id, missing path) — the same convention
the other subcommands follow for invalid configurations.

Each subcommand lives in its own module and registers itself through
:func:`~repro.cli.registry.register_command`; the import order below is
the canonical ``--help`` order.
"""

from __future__ import annotations

from .registry import COMMAND_REGISTRY, build_parser, main, register_command

# Importing a command module registers its subcommand; this order IS
# the `repro --help` listing, so keep the historical sequence and add
# new commands at the end.
from . import placement as _placement  # noqa: E402,F401
from . import decode as _decode  # noqa: E402,F401
from . import recovery as _recovery  # noqa: E402,F401
from . import bounds as _bounds  # noqa: E402,F401
from . import placements as _placements  # noqa: E402,F401
from . import environments as _environments  # noqa: E402,F401
from . import advise as _advise  # noqa: E402,F401
from . import simulate as _simulate  # noqa: E402,F401
from . import run as _run  # noqa: E402,F401
from . import check as _check  # noqa: E402,F401
from . import experiment as _experiment  # noqa: E402,F401
from . import trace as _trace  # noqa: E402,F401
from . import serve as _serve  # noqa: E402,F401

# Historical flat-module names, kept importable for callers that used
# `from repro.cli import cmd_run` etc. before the package split.
from .advise import cmd_advise
from .bounds import cmd_bounds
from .check import cmd_check
from .decode import cmd_decode
from .environments import cmd_environments
from .experiment import cmd_experiment
from .params import (
    _add_placement_args,
    _build_placement,
    _parse_model_params,
    _parse_param_value,
    _parse_sweep_value,
)
from .placement import cmd_placement
from .placements import cmd_placements
from .recovery import cmd_recovery
from .run import cmd_run, run_spec_file
from .serve import cmd_cancel, cmd_jobs, cmd_serve, cmd_submit
from .simulate import cmd_simulate, run_simulate
from .trace import cmd_trace_record, cmd_trace_summarize

__all__ = [
    "main",
    "build_parser",
    "register_command",
    "COMMAND_REGISTRY",
    "cmd_placement",
    "cmd_decode",
    "cmd_recovery",
    "cmd_bounds",
    "cmd_placements",
    "cmd_environments",
    "cmd_advise",
    "cmd_simulate",
    "run_simulate",
    "cmd_run",
    "run_spec_file",
    "cmd_check",
    "cmd_experiment",
    "cmd_trace_record",
    "cmd_trace_summarize",
    "cmd_serve",
    "cmd_submit",
    "cmd_jobs",
    "cmd_cancel",
]
