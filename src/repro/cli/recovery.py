"""``repro recovery`` — Monte-Carlo recovery curve for a placement."""

from __future__ import annotations

import argparse

from ..analysis.recovery import monte_carlo_recovery
from ..analysis.reporting import Table
from .params import _add_placement_args, _build_placement
from .registry import register_command


def cmd_recovery(args: argparse.Namespace) -> int:
    """Print the Monte-Carlo recovery curve for a placement."""
    placement = _build_placement(args)
    table = Table(
        title=f"Recovery curve — {type(placement).__name__}"
        f"(n={args.n}, c={args.c}), {args.trials} trials per w",
        columns=["w", "mean recovered", "% of gradients", "min", "max"],
    )
    for w in range(1, args.n + 1):
        stats = monte_carlo_recovery(
            placement, w, trials=args.trials, seed=args.seed
        )
        table.add_row(
            w, round(stats.mean_recovered, 3),
            f"{100 * stats.mean_fraction:.1f}%",
            stats.min_recovered, stats.max_recovered,
        )
    table.show()
    return 0


@register_command("recovery", help="Monte-Carlo recovery curve")
def configure(parser: argparse.ArgumentParser) -> None:
    """Wire the ``recovery`` subparser (arguments + handler)."""
    _add_placement_args(parser)
    parser.add_argument("--trials", type=int, default=2000)
    parser.add_argument("--seed", type=int, default=0)
    parser.set_defaults(func=cmd_recovery)
