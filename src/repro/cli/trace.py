"""``repro trace`` — record / summarize JSONL round traces."""

from __future__ import annotations

import argparse

from .registry import register_command


def cmd_trace_record(args: argparse.Namespace) -> int:
    """Run a traced fig11-style condition and export JSONL."""
    from ..experiments.config import Fig11Config
    from ..experiments.fig11 import run_traced_fig11

    cfg = Fig11Config(
        num_workers=args.n,
        num_steps=args.steps,
        expected_delays=(args.delay,),
        num_delayed_options=(args.delayed if args.delayed is not None
                             else args.n // 2,),
        wait_values=(args.w,),
    )
    points, tracer = run_traced_fig11(cfg, out_path=args.out)
    print(f"recorded {len(tracer)} rounds over {len(points)} schemes "
          f"-> {args.out}")
    for p in points:
        print(f"  {p.scheme:<16} avg step {p.avg_step_time:.4f}s")
    return 0


def cmd_trace_summarize(args: argparse.Namespace) -> int:
    """Re-aggregate an exported JSONL trace and print the summary."""
    from ..analysis.reporting import trace_summary_table
    from ..obs import aggregate_traces, read_traces

    traces = read_traces(args.path)
    aggregates = aggregate_traces(traces)
    table = trace_summary_table(
        aggregates, title=f"Round-trace summary — {args.path}"
    )
    table.show()
    print(f"{len(traces)} rounds, {len(aggregates)} schemes")
    return 0


@register_command("trace", help="record / summarize round traces")
def configure(parser: argparse.ArgumentParser) -> None:
    """Wire the ``trace`` subparser (arguments + handler)."""
    trace_sub = parser.add_subparsers(dest="trace_command", required=True)

    pr = trace_sub.add_parser(
        "record", help="run a traced fig11-style condition, export JSONL"
    )
    pr.add_argument("--out", required=True, help="output JSONL path")
    pr.add_argument("-n", type=int, default=8, help="number of workers")
    pr.add_argument("-w", type=int, default=4, help="IS wait count")
    pr.add_argument("--steps", type=int, default=50)
    pr.add_argument("--delay", type=float, default=1.5,
                    help="mean exponential straggler delay (s)")
    pr.add_argument("--delayed", type=int, default=None,
                    help="number of delayed workers (default n/2)")
    pr.set_defaults(func=cmd_trace_record)

    ps = trace_sub.add_parser(
        "summarize", help="re-aggregate an exported JSONL trace"
    )
    ps.add_argument("path", help="JSONL trace file")
    ps.set_defaults(func=cmd_trace_summarize)
