"""``repro run`` — run a declarative :class:`ExperimentSpec` file."""

from __future__ import annotations

import argparse

from ..analysis.reporting import Table
from ..engine.report import build_run_report
from .output import emit_summary
from .params import _parse_sweep_axes
from .registry import register_command


def run_spec_file(spec_path: str, report_path: "str | None" = None):
    """Load and run a single spec file.

    Returns ``(report, summary, spec)`` — the structured
    :class:`~repro.engine.RunReport` comes from the shared
    :func:`~repro.engine.report.build_run_report` builder (optionally
    persisted to ``report_path``), the same payload a
    :mod:`repro.serve` job produces for this spec, so ``repro run`` and
    a submitted job report identically.
    """
    from ..engine.spec import ExperimentSpec, run_spec

    spec = ExperimentSpec.from_file(spec_path)
    summary = run_spec(spec)
    report = build_run_report(summary, spec=spec, report_path=report_path)
    return report, summary, spec


def cmd_run(args: argparse.Namespace) -> int:
    """Run a declarative :class:`ExperimentSpec` from a JSON/TOML file.

    With ``--sweep field=v1,v2`` (repeatable) the spec becomes the base
    of a grid sweep over those fields; ``--jobs N`` fans the grid out
    over a process pool with bit-for-bit identical results.
    """
    if args.sweep:
        from ..engine.spec import ExperimentSpec
        from ..experiments.runner import executor_for_jobs
        from ..experiments.sweep import Sweep

        spec = ExperimentSpec.from_file(args.spec)
        axes = _parse_sweep_axes(args.sweep)
        sweep = Sweep.over_spec(f"{spec.name} sweep", spec, axes)
        result = sweep.run(executor=executor_for_jobs(args.jobs))
        names = list(axes)
        table = Table(
            title=f"{spec.name} — sweep over {', '.join(names)} "
                  f"[{result.executor} executor, {result.elapsed:.2f}s]",
            columns=[*names, "steps", "sim time (s)", "final loss"],
        )
        for point in result:
            if point.ok:
                s = point.value
                cells = [
                    s.num_steps if hasattr(s, "num_steps") else s.num_updates,
                    round(s.total_sim_time, 3),
                    round(s.final_loss, 4),
                ]
            else:
                cells = [f"error: {point.error_summary}", "-", "-"]
            table.add_row(*(point.params[k] for k in names), *cells)
        table.show()
        return 0 if result.ok else 1
    report, summary, spec = run_spec_file(args.spec, report_path=args.report)
    print(f"{spec.name} [{spec.scheme} / {report.backend} / {spec.rule}]")
    emit_summary(summary)
    return 0


@register_command(
    "run", help="run a declarative experiment spec (.json/.toml)"
)
def configure(parser: argparse.ArgumentParser) -> None:
    """Wire the ``run`` subparser (arguments + handler)."""
    parser.add_argument("spec", help="path to an ExperimentSpec file")
    parser.add_argument(
        "--sweep", action="append", default=None, metavar="FIELD=V1,V2",
        help="sweep a spec field over values (repeatable); grid points "
             "run under the sweep executor",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="process-pool workers for --sweep grids (default: serial; "
             "results are identical either way)",
    )
    parser.add_argument(
        "--report", default=None, metavar="PATH",
        help="also write the structured RunReport JSON here",
    )
    parser.set_defaults(func=cmd_run)
