"""Subcommand registry behind the ``repro`` argparse tree.

Each subcommand lives in its own module under :mod:`repro.cli` and
announces itself with :func:`register_command`::

    @register_command("bounds", help="Theorem 10/11 bound table")
    def configure(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("-n", type=int, required=True)
        parser.set_defaults(func=cmd_bounds)

The decorated function receives the subcommand's freshly created
subparser and wires arguments plus the ``func`` handler — exactly the
body the old monolithic ``build_parser`` had per command, now local to
the command's module.  Registration order (= module import order in
``repro/cli/__init__.py``) defines the ``--help`` listing, so the
canonical order is pinned there, not here.

Handlers return a process exit code; :func:`main` converts
:class:`ReproError`/``ValueError`` into the historical ``error: ...``
message on stderr and exit code 2.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..exceptions import ReproError

Configure = Callable[[argparse.ArgumentParser], None]

#: registration order defines the --help listing (dicts are ordered).
COMMAND_REGISTRY: Dict[str, "Command"] = {}


@dataclass(frozen=True)
class Command:
    """One registered subcommand: its name, help line and wiring hook."""

    name: str
    help: str
    configure: Configure


def register_command(
    name: str, *, help: str
) -> Callable[[Configure], Configure]:
    """Decorator registering ``configure`` as subcommand ``name``.

    ``configure(parser)`` must add the command's arguments and set the
    ``func`` handler via ``parser.set_defaults`` (nested subcommands
    may set ``func`` on their own sub-subparsers instead, as ``trace``
    does).
    """

    def wrap(configure: Configure) -> Configure:
        if name in COMMAND_REGISTRY:
            raise ValueError(f"duplicate CLI command {name!r}")
        COMMAND_REGISTRY[name] = Command(
            name=name, help=help, configure=configure
        )
        return configure

    return wrap


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for every registered subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="IS-GC (ICDCS 2023) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for command in COMMAND_REGISTRY.values():
        command.configure(sub.add_parser(command.name, help=command.help))
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
