"""``repro placement`` — describe a placement and its conflict graph."""

from __future__ import annotations

import argparse

from ..core.conflict import conflict_graph
from .params import _add_placement_args, _build_placement
from .registry import register_command


def cmd_placement(args: argparse.Namespace) -> int:
    """Describe a placement and render its conflict graph."""
    from ..graphs.render import adjacency_art, edge_list_art

    placement = _build_placement(args)
    print(placement.describe())
    graph = conflict_graph(placement)
    print(f"\nconflict graph ({graph.number_of_edges()} edges):")
    print(adjacency_art(graph))
    print()
    print(edge_list_art(graph))
    return 0


@register_command("placement", help="describe a placement")
def configure(parser: argparse.ArgumentParser) -> None:
    """Wire the ``placement`` subparser (arguments + handler)."""
    _add_placement_args(parser)
    parser.set_defaults(func=cmd_placement)
