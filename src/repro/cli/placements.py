"""``repro placements`` — the placement-family catalogue."""

from __future__ import annotations

import argparse

from ..analysis.reporting import Table
from ..exceptions import ReproError
from .params import _parse_sweep_value
from .registry import register_command


def cmd_placements(args: argparse.Namespace) -> int:
    """List registered placement families, or describe one of them."""
    from ..core.scheme import (
        PLACEMENT_REGISTRY, registered_placements, spec_placement_scheme,
    )

    if args.family is None:
        table = Table(
            title="Registered placement families",
            columns=["family", "aliases", "summary", "paper"],
        )
        for name in registered_placements():
            cls = PLACEMENT_REGISTRY[name]
            table.add_row(
                name,
                ", ".join(cls.aliases) if cls.aliases else "-",
                cls.summary,
                cls.paper,
            )
        table.show()
        return 0

    params = {}
    for clause in args.param or []:
        key, sep, value = clause.partition("=")
        if not sep or not value:
            raise ReproError(f"--param needs key=value, got {clause!r}")
        params[key.strip()] = _parse_sweep_value(value.strip())
    if args.n is None:
        raise ReproError(
            f"describing family {args.family!r} needs -n (number of workers)"
        )
    scheme = spec_placement_scheme(
        args.family,
        num_workers=args.n,
        partitions_per_worker=args.c,
        **params,
    )
    print(scheme.describe())
    placement = scheme.construct()
    graph = scheme.conflict_graph()
    print(f"fingerprint    : {scheme.fingerprint()}")
    print(f"conflict edges : {graph.number_of_edges()}")
    table = Table(
        title=f"recovery bounds (Thm 10/11) — {placement.num_workers} workers",
        columns=["w", "lower", "upper"],
    )
    for w in range(1, placement.num_workers + 1):
        lo, hi = scheme.recovery_bounds(w)
        table.add_row(w, lo, hi)
    table.show()
    return 0


@register_command(
    "placements",
    help="list registered placement families / describe one",
)
def configure(parser: argparse.ArgumentParser) -> None:
    """Wire the ``placements`` subparser (arguments + handler)."""
    parser.add_argument(
        "family", nargs="?", default=None,
        help="family name to describe (omit to list all families)",
    )
    parser.add_argument("-n", type=int, default=None, help="number of workers")
    parser.add_argument(
        "-c", type=int, default=None, help="partitions per worker"
    )
    parser.add_argument(
        "--param", action="append", default=None, metavar="KEY=VALUE",
        help="extra family parameter (repeatable), e.g. --param c1=2",
    )
    parser.set_defaults(func=cmd_placements)
