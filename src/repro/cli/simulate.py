"""``repro simulate`` — a quick ad-hoc simulated training run."""

from __future__ import annotations

import argparse

import numpy as np

from ..engine.report import build_run_report
from .output import emit_summary
from .params import _add_placement_args, _build_placement, _parse_model_params
from .registry import register_command


def run_simulate(args: argparse.Namespace):
    """Build and run the ad-hoc simulation.

    Returns ``(report, summary)``: the structured :class:`RunReport`
    payload plus the raw engine summary the command prints from.
    """
    from ..engine.spec import make_strategy
    from ..env import make_delay_model
    from ..simulation.cluster import ClusterSimulator
    from ..training.datasets import (
        build_batch_streams, make_classification, partition_dataset,
    )
    from ..training.models import SoftmaxRegressionModel
    from ..training.optimizers import SGD
    from ..training.trainer import DistributedTrainer

    placement = _build_placement(args)
    n = placement.num_workers
    dataset = make_classification(
        1024, 12, num_classes=3, separation=2.0, seed=args.seed
    )
    streams = build_batch_streams(
        partition_dataset(dataset, n, seed=args.seed + 1),
        batch_size=32, seed=args.seed + 2,
    )
    # Built through the scheme registry so CLI, specs and library code
    # share one construction path (what `repro check` REG001 enforces).
    if args.c == 1:
        strategy = make_strategy("is-sgd", num_workers=n, wait_for=args.w)
    else:
        scheme_params = {}
        if args.scheme == "hr":
            scheme_params = {
                "c1": args.c1, "c2": args.c - args.c1,
                "num_groups": args.g,
            }
        strategy = make_strategy(
            f"is-gc-{args.scheme}",
            num_workers=n,
            partitions_per_worker=args.c,
            wait_for=args.w,
            rng=np.random.default_rng(args.seed),
            **scheme_params,
        )
    # Delay models are built through the environment registry — the
    # same construction path specs and library code use (REG005); the
    # default is the historical exponential with --delay as its mean.
    delay_params = _parse_model_params(args.delay_param, flag="--delay-param")
    if args.delay_kind in ("exponential", "exp"):
        delay_params.setdefault("mean", args.delay)
    cluster = ClusterSimulator(
        n, placement.partitions_per_worker,
        delay_model=make_delay_model(args.delay_kind, **delay_params),
        rng=np.random.default_rng(args.seed + 3),
    )
    trainer = DistributedTrainer(
        SoftmaxRegressionModel(12, 3, seed=0), streams, strategy,
        cluster, SGD(args.lr), eval_data=dataset,
    )
    summary = trainer.run(max_steps=args.steps)
    return build_run_report(summary), summary


def cmd_simulate(args: argparse.Namespace) -> int:
    """Run a short simulated training job and print its summary."""
    report, summary = run_simulate(args)
    emit_summary(summary)
    if args.report is not None:
        report.write(args.report)
    return 0


@register_command("simulate", help="quick simulated training run")
def configure(parser: argparse.ArgumentParser) -> None:
    """Wire the ``simulate`` subparser (arguments + handler)."""
    _add_placement_args(parser)
    parser.add_argument("-w", type=int, required=True, help="workers to wait for")
    parser.add_argument("--steps", type=int, default=100)
    parser.add_argument("--delay", type=float, default=1.0,
                        help="mean exponential straggler delay (s); shorthand "
                             "for --delay-param mean=... with the default kind")
    parser.add_argument("--delay-kind", default="exponential",
                        help="delay model kind from the environment registry "
                             "(see `repro environments`)")
    parser.add_argument("--delay-param", action="append", default=None,
                        metavar="KEY=VALUE",
                        help="delay model parameter (repeatable), e.g. "
                             "--delay-kind pareto --delay-param alpha=2.5 "
                             "--delay-param scale=0.5")
    parser.add_argument("--lr", type=float, default=0.3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--report", default=None, metavar="PATH",
                        help="also write the structured RunReport JSON here")
    parser.set_defaults(func=cmd_simulate)
