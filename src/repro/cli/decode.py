"""``repro decode`` — decode one round for an explicit worker set."""

from __future__ import annotations

import argparse

import numpy as np

from ..core.decoders import decoder_for
from .params import _add_placement_args, _build_placement
from .registry import register_command


def cmd_decode(args: argparse.Namespace) -> int:
    """Decode one round for an explicit available-worker set."""
    placement = _build_placement(args)
    available = [int(tok) for tok in args.available.split(",") if tok]
    decoder = decoder_for(placement, rng=np.random.default_rng(args.seed))
    result = decoder.decode(available)
    print(f"available workers : {sorted(result.available_workers)}")
    print(f"selected workers  : {sorted(result.selected_workers)}")
    print(f"recovered         : {sorted(result.recovered_partitions)}")
    print(
        f"recovery          : {result.num_recovered}/{placement.num_partitions} "
        f"partitions ({100 * result.num_recovered / placement.num_partitions:.1f}%)"
    )
    return 0


@register_command("decode", help="decode one round")
def configure(parser: argparse.ArgumentParser) -> None:
    """Wire the ``decode`` subparser (arguments + handler)."""
    _add_placement_args(parser)
    parser.add_argument(
        "--available", required=True,
        help="comma-separated available worker ids, e.g. 0,2,5",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.set_defaults(func=cmd_decode)
