"""Serialisation: experiment artefacts to and from disk.

Keeps experiment outputs reproducible and diffable: summaries and
step records serialise to plain JSON, delay traces round-trip through
the same files, and whole experiment runs can be archived next to the
benchmark results.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, List, Mapping, Sequence

import numpy as np

from .exceptions import ConfigurationError
from .straggler.traces import DelayTrace
from .types import StepRecord, TrainingSummary


# ----------------------------------------------------------------------
# TrainingSummary
# ----------------------------------------------------------------------
def summary_to_dict(summary: TrainingSummary) -> Dict[str, Any]:
    """A JSON-ready dict of a training summary."""
    return {
        "scheme": summary.scheme,
        "num_steps": summary.num_steps,
        "total_sim_time": summary.total_sim_time,
        "final_loss": summary.final_loss,
        "reached_threshold": summary.reached_threshold,
        "avg_step_time": summary.avg_step_time,
        "avg_recovery_fraction": summary.avg_recovery_fraction,
        "loss_curve": list(summary.loss_curve),
        "time_curve": list(summary.time_curve),
    }


def summary_from_dict(payload: Mapping[str, Any]) -> TrainingSummary:
    """Inverse of :func:`summary_to_dict`."""
    required = {
        "scheme", "num_steps", "total_sim_time", "final_loss",
        "reached_threshold", "avg_step_time", "avg_recovery_fraction",
        "loss_curve", "time_curve",
    }
    missing = required - set(payload)
    if missing:
        raise ConfigurationError(
            f"summary dict missing keys: {sorted(missing)}"
        )
    return TrainingSummary(
        scheme=str(payload["scheme"]),
        num_steps=int(payload["num_steps"]),
        total_sim_time=float(payload["total_sim_time"]),
        final_loss=float(payload["final_loss"]),
        reached_threshold=bool(payload["reached_threshold"]),
        avg_step_time=float(payload["avg_step_time"]),
        avg_recovery_fraction=float(payload["avg_recovery_fraction"]),
        loss_curve=tuple(float(x) for x in payload["loss_curve"]),
        time_curve=tuple(float(x) for x in payload["time_curve"]),
    )


def save_summary(summary: TrainingSummary, path: str | pathlib.Path) -> None:
    """Write a training summary to ``path`` as JSON."""
    pathlib.Path(path).write_text(
        json.dumps(summary_to_dict(summary), indent=2) + "\n"
    )


def load_summary(path: str | pathlib.Path) -> TrainingSummary:
    """Read a training summary previously written by :func:`save_summary`."""
    return summary_from_dict(json.loads(pathlib.Path(path).read_text()))


# ----------------------------------------------------------------------
# Step records
# ----------------------------------------------------------------------
def records_to_dicts(records: Sequence[StepRecord]) -> List[Dict[str, Any]]:
    """JSON-ready dicts for a sequence of step records."""
    return [
        {
            "step": r.step,
            "sim_time": r.sim_time,
            "wait_time": r.wait_time,
            "num_available": r.num_available,
            "num_recovered": r.num_recovered,
            "recovery_fraction": r.recovery_fraction,
            "loss": r.loss,
            "grad_norm": r.grad_norm,
        }
        for r in records
    ]


def records_from_dicts(payload: Sequence[Mapping[str, Any]]) -> List[StepRecord]:
    """Inverse of :func:`records_to_dicts`."""
    return [
        StepRecord(
            step=int(d["step"]),
            sim_time=float(d["sim_time"]),
            wait_time=float(d["wait_time"]),
            num_available=int(d["num_available"]),
            num_recovered=int(d["num_recovered"]),
            recovery_fraction=float(d["recovery_fraction"]),
            loss=float(d["loss"]),
            grad_norm=float(d.get("grad_norm", 0.0)),
        )
        for d in payload
    ]


def save_records(
    records: Sequence[StepRecord], path: str | pathlib.Path
) -> None:
    """Write step records to ``path`` as JSON."""
    pathlib.Path(path).write_text(
        json.dumps(records_to_dicts(records), indent=2) + "\n"
    )


def load_records(path: str | pathlib.Path) -> List[StepRecord]:
    """Read step records previously written by :func:`save_records`."""
    return records_from_dicts(json.loads(pathlib.Path(path).read_text()))


# ----------------------------------------------------------------------
# Delay traces
# ----------------------------------------------------------------------
def save_trace(trace: DelayTrace, path: str | pathlib.Path) -> None:
    """Write a delay trace to ``path`` as JSON."""
    pathlib.Path(path).write_text(json.dumps(trace.to_dict()) + "\n")


def load_trace(path: str | pathlib.Path) -> DelayTrace:
    """Read a delay trace previously written by :func:`save_trace`."""
    return DelayTrace.from_dict(json.loads(pathlib.Path(path).read_text()))


# ----------------------------------------------------------------------
# Model checkpoints
# ----------------------------------------------------------------------
def save_checkpoint(
    path: str | pathlib.Path,
    parameters: "np.ndarray",
    step: int,
    metadata: Mapping[str, Any] | None = None,
) -> None:
    """Write a training checkpoint: flat parameters + step + metadata."""
    if step < 0:
        raise ConfigurationError(f"step must be >= 0, got {step}")
    payload = {
        "step": int(step),
        "parameters": np.asarray(parameters, dtype=float).tolist(),
        "metadata": dict(metadata or {}),
    }
    pathlib.Path(path).write_text(json.dumps(payload) + "\n")


def load_checkpoint(
    path: str | pathlib.Path,
) -> tuple["np.ndarray", int, Dict[str, Any]]:
    """Read a checkpoint back as ``(parameters, step, metadata)``."""
    payload = json.loads(pathlib.Path(path).read_text())
    missing = {"step", "parameters", "metadata"} - set(payload)
    if missing:
        raise ConfigurationError(f"checkpoint missing keys: {sorted(missing)}")
    return (
        np.asarray(payload["parameters"], dtype=float),
        int(payload["step"]),
        dict(payload["metadata"]),
    )
