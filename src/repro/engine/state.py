"""Checkpointable run state: :class:`EngineState` and its field registry.

A running :class:`~repro.engine.core.RoundEngine` is a first-class,
suspendable value: ``engine.snapshot()`` captures *every* piece of
mutable run state — model parameters, optimizer/update-rule state, RNG
generator states, the loss tracker, the committed records and the
backend's clock/queue — as an :class:`EngineState` that round-trips
through JSON losslessly (floats serialise via ``repr``, which is exact
for binary64; generator states are integer dicts).  ``restore()`` on a
freshly built engine for the same spec resumes the run bit-for-bit:
``snapshot → restore → continue`` produces the identical trajectory
*and* identical JSONL traces as the uninterrupted run.

Component state rides on the objects that own it: update rules,
backends, delay models and optimizers each expose
``snapshot_state()``/``restore_state()`` hooks (default: stateless),
so a new stateful component only has to extend its own hook — the
engine-level assembly here never changes.

The module also exports :data:`CHECKPOINT_COVERED`, the authoritative
list of attributes that may legally be assigned on engine / update-rule
/ backend instances during a run.  The ``CKPT001`` static rule audits
every such assignment in the engine layer against this registry, so a
newly introduced piece of run state that is *not* captured by
``snapshot()`` fails ``repro check`` instead of silently breaking
resume determinism.
"""

from __future__ import annotations

import copy
import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..exceptions import TrainingError
from ..types import AsyncUpdateRecord, StepRecord

#: Bumped whenever the serialised layout changes incompatibly.
STATE_VERSION = 1

#: Snapshot modes: synchronous rounds vs. asynchronous updates.
MODE_ROUNDS = "rounds"
MODE_UPDATES = "updates"

#: Attributes legally assigned on engine-layer instances *during a run*
#: (i.e. outside ``__init__``/``bind``/``start``-style setup and the
#: snapshot/restore/reset methods themselves), keyed by owner kind.
#: Every name here is captured by :meth:`RoundEngine.snapshot` — either
#: directly or via a component ``snapshot_state()`` hook.  CKPT001
#: audits the engine layer against this registry.
CHECKPOINT_COVERED: Mapping[str, frozenset] = {
    # RoundEngine instances ("self" in core.py, "engine" in rule hooks).
    "engine": frozenset({
        "strategy",        # adaptive migration swap; re-derived on restore
        "records",         # serialised verbatim
        "async_records",   # serialised verbatim
        "max_steps",       # run budget
        "_tracker",        # LossTracker (threshold/window/losses)
        "_mode",           # rounds vs updates
        "_max_updates",    # async run budget
    }),
    # UpdateRule instances.
    "rule": frozenset({
        "_penalty",        # AdaptiveMigration simulated-time charge
        "migrations",      # AdaptiveMigration event log
    }),
    # ExecutionBackend instances.
    "backend": frozenset({
        "_clock",          # actor/async simulated clock
        "_queue",          # async pending arrivals
        "fetch_version",   # async per-worker fetch versions
        "worker_step",     # async per-worker batch cursors
    }),
}

#: Within-round scratch attributes: assigned and consumed inside a
#: single quantum, never live across a round boundary, therefore not
#: part of the snapshot.  CKPT001 accepts these too.
CHECKPOINT_TRANSIENT: Mapping[str, frozenset] = {
    "engine": frozenset(),
    "rule": frozenset({
        "_start",          # LocalUpdate: round-start parameters
    }),
    "backend": frozenset(),
}


# ----------------------------------------------------------------------
# RNG helpers — PCG64 (and friends) expose a JSON-safe state dict of
# plain ints/strings through ``bit_generator.state``.

def generator_state(rng: np.random.Generator) -> Dict[str, Any]:
    """The generator's full internal state as a JSON-safe dict."""
    return copy.deepcopy(rng.bit_generator.state)


def set_generator_state(rng: np.random.Generator, state: Mapping) -> None:
    """Restore a state captured by :func:`generator_state`."""
    rng.bit_generator.state = copy.deepcopy(dict(state))


# ----------------------------------------------------------------------
# Record (de)serialisation.

def record_to_dict(record: StepRecord) -> Dict[str, Any]:
    """A :class:`StepRecord` as a JSON-safe dict (extras included)."""
    payload = asdict(record)
    payload["extras"] = dict(record.extras)
    return payload


def record_from_dict(payload: Mapping[str, Any]) -> StepRecord:
    """Inverse of :func:`record_to_dict`."""
    data = dict(payload)
    data["extras"] = dict(data.get("extras", {}))
    return StepRecord(**data)


def async_record_to_dict(record: AsyncUpdateRecord) -> Dict[str, Any]:
    """An :class:`AsyncUpdateRecord` as a JSON-safe dict."""
    return asdict(record)


def async_record_from_dict(payload: Mapping[str, Any]) -> AsyncUpdateRecord:
    """Inverse of :func:`async_record_to_dict`."""
    return AsyncUpdateRecord(**payload)


# ----------------------------------------------------------------------

@dataclass(frozen=True)
class EngineState:
    """Everything a :class:`RoundEngine` run mutates, JSON-serialisable.

    ``mode`` distinguishes synchronous-round runs (``"rounds"``) from
    asynchronous-update runs (``"updates"``); ``max_steps`` is the
    corresponding budget (steps or updates).  ``rule`` / ``backend`` /
    ``strategy`` carry the component ``snapshot_state()`` payloads.
    """

    mode: str
    round_index: int
    params: Tuple[float, ...]
    max_steps: int
    loss_threshold: Optional[float]
    smoothing_window: int
    records: Tuple[Mapping[str, Any], ...] = ()
    async_records: Tuple[Mapping[str, Any], ...] = ()
    losses: Tuple[float, ...] = ()
    rule: Mapping[str, Any] = field(default_factory=dict)
    backend: Mapping[str, Any] = field(default_factory=dict)
    strategy: Mapping[str, Any] = field(default_factory=dict)
    tracer_scheme: Optional[str] = None
    version: int = STATE_VERSION

    def __post_init__(self) -> None:
        if self.mode not in (MODE_ROUNDS, MODE_UPDATES):
            raise TrainingError(
                f"unknown engine-state mode {self.mode!r} "
                f"(expected {MODE_ROUNDS!r} or {MODE_UPDATES!r})"
            )
        if self.round_index < 0:
            raise TrainingError(
                f"round_index must be >= 0, got {self.round_index}"
            )

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form; ``json.dumps``-able as-is."""
        return {
            "version": self.version,
            "mode": self.mode,
            "round_index": self.round_index,
            "params": list(self.params),
            "max_steps": self.max_steps,
            "loss_threshold": self.loss_threshold,
            "smoothing_window": self.smoothing_window,
            "records": [dict(r) for r in self.records],
            "async_records": [dict(r) for r in self.async_records],
            "losses": list(self.losses),
            "rule": dict(self.rule),
            "backend": dict(self.backend),
            "strategy": dict(self.strategy),
            "tracer_scheme": self.tracer_scheme,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "EngineState":
        """Inverse of :meth:`to_dict`; validates the layout version."""
        if not isinstance(payload, Mapping):
            raise TrainingError(
                f"engine state must be a mapping, got {type(payload).__name__}"
            )
        version = payload.get("version", STATE_VERSION)
        if version != STATE_VERSION:
            raise TrainingError(
                f"engine state version {version} is not supported "
                f"(this build reads version {STATE_VERSION})"
            )
        try:
            return cls(
                mode=payload["mode"],
                round_index=int(payload["round_index"]),
                params=tuple(float(v) for v in payload["params"]),
                max_steps=int(payload["max_steps"]),
                loss_threshold=payload.get("loss_threshold"),
                smoothing_window=int(payload.get("smoothing_window", 1)),
                records=tuple(dict(r) for r in payload.get("records", ())),
                async_records=tuple(
                    dict(r) for r in payload.get("async_records", ())
                ),
                losses=tuple(float(v) for v in payload.get("losses", ())),
                rule=dict(payload.get("rule", {})),
                backend=dict(payload.get("backend", {})),
                strategy=dict(payload.get("strategy", {})),
                tracer_scheme=payload.get("tracer_scheme"),
                version=version,
            )
        except KeyError as exc:
            raise TrainingError(f"engine state is missing field {exc}")

    def to_json(self) -> str:
        """Lossless JSON text (floats via ``repr``)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "EngineState":
        """Inverse of :meth:`to_json`."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise TrainingError(f"engine state is not valid JSON: {exc}")
        return cls.from_dict(payload)

    # ------------------------------------------------------------------
    @property
    def step_records(self) -> List[StepRecord]:
        """The committed synchronous records as :class:`StepRecord`."""
        return [record_from_dict(r) for r in self.records]

    @property
    def update_records(self) -> List[AsyncUpdateRecord]:
        """The committed async records as :class:`AsyncUpdateRecord`."""
        return [async_record_from_dict(r) for r in self.async_records]
