"""Structured run results: :class:`RunReport`.

Every way of running an experiment — ``repro run``, ``repro simulate``,
``repro experiment``, or a job through the :mod:`repro.serve`
coordinator — historically ended in ad-hoc prints and an exit code.
A :class:`RunReport` is the shared, serialisable result payload behind
all of them: what ran (name, scheme, backend, rule, the spec's content
fingerprint), where its round trace went (``trace_path``), and how it
ended (steps, simulated time, final metrics, full loss/time curves).

Reports round-trip through JSON losslessly (floats serialise via
``repr``, which preserves binary64 exactly), so a coordinator can hand
a job's report across the file-mailbox boundary and the client sees
bit-for-bit the same trajectory the engine produced.
"""

from __future__ import annotations

import dataclasses
import json
import math
import pathlib
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING, Any, Dict, Mapping, Optional, Tuple, Union,
)

from ..types import AsyncSummary, TrainingSummary

if TYPE_CHECKING:  # pragma: no cover
    from .spec import ExperimentSpec


@dataclass(frozen=True)
class RunReport:
    """The structured outcome of one experiment run.

    ``kind`` is ``"train"`` for synchronous round-based runs,
    ``"async"`` for per-arrival asynchronous runs and ``"experiment"``
    for paper-figure invocations (which aggregate many runs and carry
    only identity + trace fields).  ``spec_fingerprint`` is
    :meth:`ExperimentSpec.fingerprint` when the run came from a spec,
    else ``None`` (ad-hoc CLI simulations).
    """

    name: str
    kind: str = "train"
    scheme: str = ""
    backend: str = ""
    rule: str = ""
    spec_fingerprint: Optional[str] = None
    trace_path: Optional[str] = None
    num_steps: int = 0
    total_sim_time: float = 0.0
    final_loss: float = math.nan
    reached_threshold: Optional[bool] = None
    metrics: Mapping[str, float] = field(default_factory=dict)
    loss_curve: Tuple[float, ...] = ()
    time_curve: Tuple[float, ...] = ()

    # ------------------------------------------------------------------
    @classmethod
    def from_summary(
        cls,
        summary: Union[TrainingSummary, AsyncSummary],
        *,
        name: Optional[str] = None,
        spec: "ExperimentSpec | None" = None,
        trace_path: Optional[str] = None,
    ) -> "RunReport":
        """Wrap an engine summary (sync or async) as a report.

        ``spec`` supplies identity fields (name, scheme, backend, rule,
        fingerprint) when the run was spec-built; ``name`` overrides
        the report name (defaults to the spec name, else the summary's
        scheme label).
        """
        scheme = backend = rule = ""
        fingerprint = None
        if spec is not None:
            scheme = spec.scheme
            backend = (
                "async-arrivals" if spec.rule == "async" else spec.backend
            )
            rule = spec.rule
            fingerprint = spec.fingerprint()
            if name is None:
                name = spec.name
        if isinstance(summary, AsyncSummary):
            return cls(
                name=name if name is not None else "async-sgd",
                kind="async",
                scheme=scheme,
                backend=backend,
                rule=rule,
                spec_fingerprint=fingerprint,
                trace_path=trace_path,
                num_steps=summary.num_updates,
                total_sim_time=summary.total_sim_time,
                final_loss=summary.final_loss,
                reached_threshold=None,
                metrics={
                    "mean_staleness": summary.mean_staleness,
                    "max_staleness": float(summary.max_staleness),
                },
                loss_curve=tuple(summary.loss_curve),
            )
        return cls(
            name=name if name is not None else summary.scheme,
            kind="train",
            scheme=scheme if scheme else summary.scheme,
            backend=backend,
            rule=rule,
            spec_fingerprint=fingerprint,
            trace_path=trace_path,
            num_steps=summary.num_steps,
            total_sim_time=summary.total_sim_time,
            final_loss=summary.final_loss,
            reached_threshold=summary.reached_threshold,
            metrics={
                "avg_step_time": summary.avg_step_time,
                "avg_recovery_fraction": summary.avg_recovery_fraction,
            },
            loss_curve=tuple(summary.loss_curve),
            time_curve=tuple(summary.time_curve),
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain JSON-ready dict (the inverse of :meth:`from_dict`)."""
        payload = dataclasses.asdict(self)
        payload["metrics"] = dict(self.metrics)
        payload["loss_curve"] = list(self.loss_curve)
        payload["time_curve"] = list(self.time_curve)
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunReport":
        """Rebuild a report from :meth:`to_dict` output."""
        known = {f.name for f in dataclasses.fields(cls)}
        payload = {k: v for k, v in data.items() if k in known}
        payload["metrics"] = dict(payload.get("metrics") or {})
        payload["loss_curve"] = tuple(payload.get("loss_curve") or ())
        payload["time_curve"] = tuple(payload.get("time_curve") or ())
        return cls(**payload)

    def to_json(self) -> str:
        """The report as a JSON document (losslessly round-trippable)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    def write(self, path: "str | pathlib.Path") -> None:
        """Persist the report as a JSON document (newline-terminated)."""
        pathlib.Path(path).write_text(self.to_json() + "\n")

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """One-line human-readable summary of the run."""
        if self.kind == "async":
            noun = "updates"
        elif self.kind == "experiment":
            noun = "figures"
        else:
            noun = "steps"
        parts = [f"{self.name}: {self.num_steps} {noun}"]
        if self.total_sim_time:
            parts.append(f"{self.total_sim_time:.2f}s simulated")
        if not math.isnan(self.final_loss):
            parts.append(f"final loss {self.final_loss:.4f}")
        if self.trace_path:
            parts.append(f"trace {self.trace_path}")
        return ", ".join(parts)


def build_run_report(
    summary: Union[TrainingSummary, AsyncSummary],
    *,
    spec: "ExperimentSpec | None" = None,
    name: Optional[str] = None,
    trace_path: Optional[str] = None,
    report_path: "str | pathlib.Path | None" = None,
) -> RunReport:
    """Assemble (and optionally persist) the canonical run report.

    The single report-building path behind ``repro run``,
    ``repro simulate`` and the serve runner — every consumer wraps its
    engine summary here, so a spec run, an ad-hoc simulation and a
    coordinator job all report through byte-identical payloads.  When
    ``report_path`` is given the JSON document is written there too
    (the CLI's ``--report`` flag).
    """
    report = RunReport.from_summary(
        summary, name=name, spec=spec, trace_path=trace_path
    )
    if report_path is not None:
        report.write(report_path)
    return report
