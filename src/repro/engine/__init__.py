"""The round engine: one canonical training step, pluggable everything.

Layering (see ``docs/architecture.md``)::

    experiments / CLI / examples
        │   ExperimentSpec + registries (spec.py)
        ▼
    RoundEngine (core.py)
        │   UpdateRule hooks (rules.py)
        ▼
    ExecutionBackend (backends.py)
        │   flat ClusterSimulator · actor messages · async arrivals
        ▼
    simulation / runtime substrates

The historical trainer classes (``DistributedTrainer`` and friends)
remain available as thin shims over this package.
"""

from .backends import (
    ActorBackend,
    AsyncArrivalBackend,
    ExecutionBackend,
    FlatBackend,
    RoundExecution,
)
from .core import RoundEngine
from .report import RunReport, build_run_report
from .state import EngineState
from .rules import (
    AdaptiveMigration,
    AsyncUpdate,
    LocalUpdate,
    MigrationEvent,
    SyncUpdate,
    UpdateRule,
)
from .spec import (
    BACKEND_REGISTRY,
    SCHEME_REGISTRY,
    BuildContext,
    ExperimentSpec,
    build_engine,
    make_strategy,
    register_backend,
    register_scheme,
    run_spec,
)

__all__ = [
    "RoundEngine",
    "ExecutionBackend",
    "FlatBackend",
    "ActorBackend",
    "AsyncArrivalBackend",
    "RoundExecution",
    "UpdateRule",
    "SyncUpdate",
    "LocalUpdate",
    "AdaptiveMigration",
    "AsyncUpdate",
    "MigrationEvent",
    "ExperimentSpec",
    "EngineState",
    "RunReport",
    "build_run_report",
    "BuildContext",
    "SCHEME_REGISTRY",
    "BACKEND_REGISTRY",
    "register_scheme",
    "register_backend",
    "make_strategy",
    "build_engine",
    "run_spec",
]
