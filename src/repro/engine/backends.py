"""Execution backends: how one training round is physically executed.

The :class:`~repro.engine.core.RoundEngine` owns the *semantics* of a
step (decode → unbiased update → eval → record); a backend owns its
*mechanics* — where gradients are computed, how arrivals are produced,
and which clock advances:

* :class:`FlatBackend` — the vectorised path over
  :class:`~repro.simulation.cluster.ClusterSimulator`: gradients are
  computed in-process by the engine's update rule, then one call to
  ``run_round`` yields arrivals and the wait-policy outcome.
* :class:`ActorBackend` — the message-passing path over
  :class:`~repro.runtime.actors.MasterActor` /
  :class:`~repro.runtime.actors.WorkerActor`: parameters are broadcast,
  each worker computes and encodes its own partitions, uploads race
  through the event queue, and the master collects the accepted ones.
* :class:`AsyncArrivalBackend` — no synchronous rounds at all: a
  per-worker fetch/compute/upload pipeline whose arrivals the engine
  consumes one at a time (:meth:`RoundEngine.run_updates`).

Both synchronous backends return a :class:`RoundExecution` carrying the
accepted-worker set *in the exact form the pre-engine loops passed to
``strategy.decode``* (a frozenset on the flat path, a sorted list on
the actor path) so refactored trajectories stay bit-identical; decoders
normalise internally, so the two forms decode to the same floats.

This module deliberately imports nothing from ``repro.training`` or
``repro.runtime`` at module level — trainers import the engine, so the
engine binds to their objects only at construction time (duck-typed
masters/workers, lazily-imported helpers).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Mapping, Sequence, Tuple

import numpy as np

from ..env import make_compute_model, make_delay_model, make_network_model
from ..exceptions import TrainingError
from ..obs.registry import MetricsRegistry, NULL_REGISTRY
from ..simulation.cluster import ClusterSimulator, ComputeModel
from ..simulation.events import Event, EventQueue
from ..simulation.network import NetworkModel
from ..simulation.policies import WaitOutcome, WaitPolicy
from ..straggler.models import DelayModel

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.tracer import RoundTracer
    from .core import RoundEngine


@dataclass(frozen=True)
class RoundExecution:
    """Everything one synchronous round produced, pre-decode.

    ``accepted`` is the wait policy's accepted-worker set in the form
    the backend's historical loop passed to ``strategy.decode``;
    ``batch_losses`` are the pre-update per-partition batch losses when
    the backend computed gradients in-process (empty on the actor path,
    whose historical loss fallback is NaN).
    """

    payloads: Mapping[int, np.ndarray]
    accepted: Sequence[int]
    arrivals: Mapping[int, float]
    outcome: WaitOutcome
    step_start: float
    step_end: float
    batch_losses: Tuple[float, ...] = ()


class ExecutionBackend(abc.ABC):
    """One way of turning encoded payloads into arrivals and a clock."""

    def bind(self, engine: "RoundEngine") -> None:
        """Called once by the engine; backends may cache derived state."""

    @property
    @abc.abstractmethod
    def clock(self) -> float:
        """Current simulated time in seconds."""

    @property
    def tracer(self) -> "RoundTracer | None":
        """The round tracer riding on this backend, if any."""
        return None

    @abc.abstractmethod
    def execute_round(
        self, engine: "RoundEngine", step: int, policy: WaitPolicy
    ) -> RoundExecution:
        """Run one full round at ``step`` under ``policy``."""

    def on_record(self, record) -> None:
        """Hook invoked after the engine commits a step record."""

    def on_strategy_change(self, strategy) -> None:
        """Hook invoked when a rule swaps the engine's strategy."""

    def snapshot_state(self) -> Dict:
        """JSON-safe mutable backend state (checkpointing)."""
        return {}

    def restore_state(self, engine: "RoundEngine", state) -> None:
        """Restore state captured by :meth:`snapshot_state`."""


class FlatBackend(ExecutionBackend):
    """The :class:`ClusterSimulator` path (historical flat trainers)."""

    def __init__(self, cluster: ClusterSimulator):
        self._cluster = cluster

    @property
    def cluster(self) -> ClusterSimulator:
        return self._cluster

    @property
    def clock(self) -> float:
        return self._cluster.clock

    @property
    def tracer(self) -> "RoundTracer | None":
        return self._cluster.tracer

    def execute_round(self, engine, step, policy):
        partition_gradients, batch_losses = engine.rule.compute_partitions(
            engine, step
        )
        payloads = engine.strategy.encode(partition_gradients)
        result = self._cluster.run_round(step, policy)
        return RoundExecution(
            payloads=payloads,
            accepted=result.outcome.accepted_workers,
            arrivals=result.arrivals,
            outcome=result.outcome,
            step_start=result.step_start,
            step_end=result.step_end,
            batch_losses=tuple(batch_losses),
        )

    def snapshot_state(self):
        return self._cluster.snapshot_state()

    def restore_state(self, engine, state):
        self._cluster.restore_state(state)


class ActorBackend(ExecutionBackend):
    """The message-passing path (historical ``SimulatedRuntime``).

    Owns the scheduling half of :meth:`SimulatedRuntime.run_step`: the
    master/worker actors stay pure state machines, the backend drives
    broadcast → per-worker compute/straggle/upload → event-queue race →
    wait policy → delivery of accepted uploads.  The engine then
    decodes and updates; :meth:`on_record` commits the record back to
    the master so ``master.records`` / ``master.step`` keep their
    historical meaning.
    """

    def __init__(
        self,
        master,
        workers: Sequence,
        compute: ComputeModel | None = None,
        network: NetworkModel | None = None,
        delay_model: DelayModel | None = None,
        rng: np.random.Generator | None = None,
        keep_message_log: bool = False,
    ):
        self.master = master
        self.workers = list(workers)
        self._compute = compute if compute is not None else make_compute_model()
        self._network = network if network is not None else make_network_model()
        self._delays = delay_model if delay_model is not None else make_delay_model("none")
        self._rng = rng if rng is not None else np.random.default_rng()  # repro: noqa[DET003] deliberate opt-in to entropy when no rng is injected
        self._keep_log = keep_message_log
        self.message_log: List = []
        self._clock = 0.0

    @property
    def clock(self) -> float:
        return self._clock

    def execute_round(self, engine, step, policy):
        start = self._clock
        broadcast = self.master.broadcast(start)
        if self._keep_log:
            self.message_log.append(broadcast)

        broadcast_t = self._network.broadcast_time(
            len(broadcast.parameters), len(self.workers)
        )
        queue = EventQueue()
        grad_elems = broadcast.parameters.size
        upload_t = self._network.transfer_time(grad_elems)
        # One vectorized draw for the whole round; handle_broadcast is
        # RNG-free, so batching the delays ahead of the worker loop
        # keeps the random stream bit-identical to per-worker draws.
        straggles = self._delays.sample_round(
            [worker.worker_id for worker in self.workers],
            broadcast.step,
            self._rng,
        )
        for worker, straggle_t in zip(self.workers, straggles):
            upload = worker.handle_broadcast(broadcast, start + broadcast_t)
            compute_t = self._compute.step_time(len(worker.partitions))
            arrival = (
                start + broadcast_t + compute_t + float(straggle_t) + upload_t
            )
            queue.push(
                Event(arrival, "upload", worker=worker.worker_id, payload=upload)
            )

        arrivals: Dict[int, float] = {}
        uploads: Dict[int, object] = {}
        for event in queue.drain():
            arrivals[event.worker] = event.time - start
            uploads[event.worker] = event.payload

        outcome = policy.wait(arrivals, broadcast.step)
        accepted = sorted(outcome.accepted_workers)
        payloads: Dict[int, np.ndarray] = {}
        for w in accepted:
            msg = uploads[w]
            self.master.receive(msg)
            if self._keep_log:
                self.message_log.append(msg)
            payloads[w] = msg.payload
        missing = [w for w, p in payloads.items() if p is None]
        if missing:
            raise TrainingError(f"empty payloads from workers {missing}")

        end = start + outcome.proceed_time
        self._clock = end
        return RoundExecution(
            payloads=payloads,
            accepted=accepted,
            arrivals=arrivals,
            outcome=outcome,
            step_start=start,
            step_end=end,
        )

    def on_record(self, record) -> None:
        self.master.commit_record(record)

    def on_strategy_change(self, strategy) -> None:
        self.master.update_strategy(strategy)
        for worker in self.workers:
            worker.update_strategy(strategy)

    def snapshot_state(self):
        from .state import generator_state

        return {
            "clock": self._clock,
            "rng": generator_state(self._rng),
            "master_step": self.master.step,
            "delays": self._delays.snapshot_state(),
        }

    def restore_state(self, engine, state):
        from .state import set_generator_state

        self._clock = float(state["clock"])
        set_generator_state(self._rng, state["rng"])
        self._delays.restore_state(state["delays"])
        self.master.restore_progress(
            int(state["master_step"]), engine.records
        )


@dataclass
class ArrivalEvent:
    """One asynchronous gradient arrival."""

    time: float
    worker: int


class AsyncArrivalBackend(ExecutionBackend):
    """Per-arrival pipeline for the asynchronous extreme.

    There are no synchronous rounds: each worker independently loops
    fetch → compute → straggle → upload, and
    :meth:`RoundEngine.run_updates` consumes arrivals one at a time.
    The backend owns the per-worker fetch-version and step counters the
    engine reads to compute staleness and draw seeded batches.
    """

    def __init__(
        self,
        compute: ComputeModel | None = None,
        network: NetworkModel | None = None,
        delay_model: DelayModel | None = None,
        rng: np.random.Generator | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self._compute = compute if compute is not None else make_compute_model()
        self._network = network if network is not None else make_network_model()
        self._delays = delay_model if delay_model is not None else make_delay_model("none")
        self._rng = rng if rng is not None else np.random.default_rng()  # repro: noqa[DET003] deliberate opt-in to entropy when no rng is injected
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._grad_elems = 0
        self._num_workers = 0
        self._queue = EventQueue()
        self._clock = 0.0
        self.fetch_version: List[int] = []
        self.worker_step: List[int] = []

    def bind(self, engine) -> None:
        self._num_workers = len(engine.streams)
        self._grad_elems = engine.model.num_parameters

    @property
    def clock(self) -> float:
        return self._clock

    def start(self) -> None:
        """Reset state and schedule every worker's first fetch at t=0."""
        n = self._num_workers
        self.fetch_version = [0] * n
        self.worker_step = [0] * n
        self._queue = EventQueue()
        self._clock = 0.0
        for worker in range(n):
            self.schedule(worker, 0.0, version=0)

    def schedule(self, worker: int, now: float, version: int) -> None:
        """Worker fetches parameters at ``now`` and will deliver later."""
        self.fetch_version[worker] = version
        compute_t = self._compute.step_time(1)
        straggle_t = self._delays.sample(
            worker, self.worker_step[worker], self._rng
        )
        upload_t = self._network.transfer_time(self._grad_elems)
        arrival = now + compute_t + straggle_t + upload_t
        self._queue.push(Event(arrival, "gradient", worker=worker))

    def next_arrival(self) -> ArrivalEvent:
        """Pop the earliest pending gradient and advance the clock."""
        event = self._queue.pop()
        self._clock = event.time
        return ArrivalEvent(time=event.time, worker=event.worker)

    def execute_round(self, engine, step, policy):
        raise TrainingError(
            "the async backend has no synchronous rounds; "
            "use RoundEngine.run_updates"
        )

    def snapshot_state(self):
        from .state import generator_state

        events = []
        for event in self._queue.snapshot_events():
            if event.payload is not None:
                raise TrainingError(
                    "cannot checkpoint an event carrying a payload: "
                    f"{event.kind!r} at t={event.time}"
                )
            events.append(
                {"time": event.time, "kind": event.kind,
                 "worker": event.worker}
            )
        return {
            "clock": self._clock,
            "rng": generator_state(self._rng),
            "fetch_version": list(self.fetch_version),
            "worker_step": list(self.worker_step),
            "delays": self._delays.snapshot_state(),
            "queue": events,
        }

    def restore_state(self, engine, state):
        from .state import set_generator_state

        self._clock = float(state["clock"])
        set_generator_state(self._rng, state["rng"])
        self.fetch_version = [int(v) for v in state["fetch_version"]]
        self.worker_step = [int(v) for v in state["worker_step"]]
        self._delays.restore_state(state["delays"])
        # Re-pushing in pop order reproduces the heap's tie-breaking:
        # the fresh insertion counter preserves relative FIFO order and
        # stays below every future push.
        self._queue = EventQueue()
        for event in state["queue"]:
            self._queue.push(
                Event(
                    float(event["time"]), str(event["kind"]),
                    worker=event["worker"],
                )
            )
