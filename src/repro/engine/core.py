"""The round engine: one canonical training step for every scheme.

Historically the repo carried five hand-rolled loops (flat sync
trainer, async trainer, adaptive trainer, local-update trainer, actor
runtime) that each re-implemented batch draw → encode → arrivals →
wait → decode → update → eval.  :class:`RoundEngine` owns that step
once, parameterised along two orthogonal axes:

* an :class:`~repro.engine.backends.ExecutionBackend` — *where* the
  round runs (flat simulator, actor messages, async arrivals);
* an :class:`~repro.engine.rules.UpdateRule` — *what* the decoded
  aggregate means (sync mean-gradient update, local-update delta,
  adaptive migration, per-arrival async apply).

The historical trainer classes survive as thin shims over this class;
golden tests pin their trajectories bit-for-bit against pre-engine
recordings.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

import numpy as np

from ..exceptions import TrainingError
from ..types import AsyncSummary, AsyncUpdateRecord, StepRecord, TrainingSummary
from .backends import ExecutionBackend
from .rules import UpdateRule
from .state import (
    MODE_ROUNDS,
    MODE_UPDATES,
    EngineState,
    async_record_from_dict,
    async_record_to_dict,
    generator_state,
    record_from_dict,
    record_to_dict,
    set_generator_state,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.tracer import RoundTracer
    from ..simulation.policies import WaitPolicy
    from ..training.convergence import LossTracker
    from ..training.datasets import BatchStream, Dataset
    from ..training.models import Model
    from ..training.strategies import TrainingStrategy


class RoundEngine:
    """Drives training rounds for any (strategy, backend, rule) triple."""

    def __init__(
        self,
        model: "Model",
        streams: Sequence["BatchStream"],
        strategy: "TrainingStrategy",
        backend: ExecutionBackend,
        rule: UpdateRule,
        eval_data: Optional["Dataset"] = None,
        tracer: "RoundTracer | None" = None,
    ):
        n = strategy.placement.num_partitions
        if len(streams) != n:
            raise TrainingError(
                f"strategy expects {n} partitions, got {len(streams)} "
                "batch streams"
            )
        self.model = model
        self.streams = list(streams)
        #: mutable on purpose: adaptive rules swap the strategy mid-run.
        self.strategy = strategy
        self.backend = backend
        self.rule = rule
        self.eval_data = eval_data
        self.num_partitions = n
        self.records: List[StepRecord] = []
        self.async_records: List[AsyncUpdateRecord] = []
        #: the current run's step budget (adaptive rules amortise
        #: migration cost over the remaining steps).
        self.max_steps = 0
        #: the active run's loss tracker (``None`` before ``start_run``).
        self._tracker: "LossTracker | None" = None
        #: ``MODE_ROUNDS``/``MODE_UPDATES`` while a run is active.
        self._mode: str | None = None
        #: async-run update budget (``start_updates``).
        self._max_updates = 0
        backend.bind(self)
        self.tracer = tracer if tracer is not None else backend.tracer
        # A decode cache riding on the strategy reports its hit/miss
        # counters through the trace registry (``decode.cache.*``), so
        # the hit rate lands in the run's trace summary.
        cache = getattr(strategy, "decode_cache", None)
        if self.tracer is not None and cache is not None:
            cache.attach_metrics(self.tracer.registry)
        # The engine is imported by repro.training, so training-layer
        # helpers bind at construction time rather than import time.
        from ..training.evaluation import held_out_loss

        self._eval_fn = held_out_loss

    @property
    def clock(self) -> float:
        return self.backend.clock

    # ------------------------------------------------------------------
    def run_step(
        self, step: int, policy: "WaitPolicy | None" = None
    ) -> StepRecord:
        """Execute one full round: compute/encode → wait → decode → update."""
        self.rule.before_step(self, step)
        if policy is None:
            policy = self.strategy.policy
        execution = self.backend.execute_round(self, step, policy)

        grad_sum, recovered = self.strategy.decode(
            execution.accepted, execution.payloads
        )
        if not recovered:
            raise TrainingError(
                f"{self.rule.step_noun} {step}: nothing recovered"
            )
        if self.tracer is not None:
            decision = getattr(self.strategy, "last_decode", None)
            self.tracer.record_decode(
                step,
                decoder_scheme=(
                    self.strategy.placement.scheme
                    if decision is not None else self.strategy.name
                ),
                num_searches=(
                    decision.num_searches if decision is not None else 1
                ),
                num_recovered=len(recovered),
                num_partitions=self.num_partitions,
            )
        applied = self.rule.apply(self, grad_sum, recovered)

        loss = self._eval_fn(
            self.model, self.eval_data, fallback_losses=execution.batch_losses
        )
        record = StepRecord(
            step=step,
            sim_time=self.backend.clock + self.rule.time_offset(),
            wait_time=execution.step_end - execution.step_start,
            num_available=len(execution.accepted),
            num_recovered=len(recovered),
            recovery_fraction=len(recovered) / self.num_partitions,
            loss=loss,
            grad_norm=(
                float(np.linalg.norm(applied))
                if self.rule.records_grad_norm else 0.0
            ),
        )
        self.records.append(record)
        self.backend.on_record(record)
        return record

    # ------------------------------------------------------------------
    # Synchronous runs: start → bounded quanta → summary.  ``run()`` is
    # the one-call form; coordinators call ``start_run`` once and then
    # ``step_rounds(n)`` repeatedly, possibly against a ``restore``d
    # engine — the trajectory is bit-identical either way.

    def start_run(
        self,
        max_steps: int,
        loss_threshold: Optional[float] = None,
        smoothing_window: int = 5,
    ) -> None:
        """Begin a synchronous run (resets records and the tracker)."""
        if max_steps <= 0:
            raise TrainingError(f"max_steps must be positive, got {max_steps}")
        from ..training.convergence import LossTracker

        self._tracker = LossTracker(loss_threshold, smoothing_window)
        self._mode = MODE_ROUNDS
        self.max_steps = max_steps
        self.records = []

    @property
    def run_complete(self) -> bool:
        """Whether the active run has hit its budget or threshold."""
        if self._mode == MODE_UPDATES:
            return len(self.async_records) >= self._max_updates
        if self._tracker is None:
            raise TrainingError(
                "no active run; call start_run() or start_updates() first"
            )
        return (
            len(self.records) >= self.max_steps
            or self._tracker.reached_threshold()
        )

    def step_rounds(self, num_rounds: int = 1) -> bool:
        """Execute up to ``num_rounds`` rounds; True when the run is done.

        Each round is one full quantum (compute → wait → decode →
        update → record); stops early once the loss threshold or the
        step budget is reached.
        """
        if self._mode != MODE_ROUNDS or self._tracker is None:
            raise TrainingError(
                "no active synchronous run; call start_run() first"
            )
        if num_rounds <= 0:
            raise TrainingError(
                f"num_rounds must be positive, got {num_rounds}"
            )
        for _ in range(num_rounds):
            if self.run_complete:
                return True
            record = self.run_step(len(self.records))
            self._tracker.record(record.loss)
        return self.run_complete

    def finish_run(self) -> TrainingSummary:
        """Summarise the active synchronous run."""
        if self._mode != MODE_ROUNDS or self._tracker is None:
            raise TrainingError(
                "no active synchronous run; call start_run() first"
            )
        return self.summarize(reached=self._tracker.reached_threshold())

    def run(
        self,
        max_steps: int,
        loss_threshold: Optional[float] = None,
        smoothing_window: int = 5,
    ) -> TrainingSummary:
        """Train until ``loss_threshold`` or ``max_steps``."""
        self.start_run(max_steps, loss_threshold, smoothing_window)
        self.step_rounds(max_steps)
        return self.finish_run()

    def summarize(self, reached: bool = False) -> TrainingSummary:
        """Aggregate :attr:`records` into a :class:`TrainingSummary`."""
        records = self.records
        losses = tuple(r.loss for r in records)
        total = records[-1].sim_time if records else 0.0
        return TrainingSummary(
            scheme=self.rule.scheme_label(self),
            num_steps=len(records),
            total_sim_time=total,
            final_loss=losses[-1] if losses else float("nan"),
            reached_threshold=reached,
            avg_step_time=(total / len(records)) if records else 0.0,
            avg_recovery_fraction=float(
                np.mean([r.recovery_fraction for r in records])
            ) if records else 0.0,
            loss_curve=losses,
            time_curve=tuple(r.sim_time for r in records),
        )

    # ------------------------------------------------------------------
    # Asynchronous runs: same start → bounded quanta → summary shape as
    # the synchronous API, one master update per quantum.

    def start_updates(self, max_updates: int) -> None:
        """Begin an asynchronous run (resets the arrival pipeline)."""
        if max_updates <= 0:
            raise TrainingError(
                f"max_updates must be positive, got {max_updates}"
            )
        self.backend.start()
        self.async_records = []
        self._mode = MODE_UPDATES
        self._max_updates = max_updates

    def step_updates(self, num_updates: int = 1) -> bool:
        """Apply up to ``num_updates`` arrivals; True when the run is done.

        Each quantum pops the earliest pending gradient, applies it,
        records staleness/loss, and reschedules the worker.  The master
        version and clock are derived from :attr:`async_records`, so a
        restored engine continues exactly where the snapshot left off.
        """
        if self._mode != MODE_UPDATES:
            raise TrainingError(
                "no active asynchronous run; call start_updates() first"
            )
        if num_updates <= 0:
            raise TrainingError(
                f"num_updates must be positive, got {num_updates}"
            )
        backend = self.backend
        for _ in range(num_updates):
            if len(self.async_records) >= self._max_updates:
                return True
            master_version = len(self.async_records)
            event = backend.next_arrival()
            clock = event.time
            worker = event.worker
            x, y = self.streams[worker].batch(backend.worker_step[worker])
            backend.worker_step[worker] += 1
            batch_loss, grad = self.model.loss_and_gradient(x, y)
            staleness = master_version - backend.fetch_version[worker]

            self.rule.apply_arrival(self, grad)
            master_version += 1

            loss = self._eval_fn(
                self.model, self.eval_data, fallback_losses=(batch_loss,)
            )
            prev_time = (
                self.async_records[-1].sim_time if self.async_records else 0.0
            )
            self.async_records.append(
                AsyncUpdateRecord(
                    update_index=master_version,
                    sim_time=clock,
                    worker=worker,
                    staleness=staleness,
                    loss=loss,
                )
            )
            metrics = backend.metrics
            metrics.counter("async.updates").inc()
            metrics.histogram("async.staleness").observe(staleness)
            metrics.histogram("async.update_interval").observe(
                clock - prev_time
            )
            backend.schedule(worker, clock, version=master_version)
        return len(self.async_records) >= self._max_updates

    def finish_updates(self) -> AsyncSummary:
        """Summarise the active asynchronous run."""
        records = self.async_records
        if self._mode != MODE_UPDATES or not records:
            raise TrainingError(
                "no asynchronous updates recorded; call start_updates() "
                "and step_updates() first"
            )
        staleness_vals = [r.staleness for r in records]
        return AsyncSummary(
            num_updates=len(records),
            total_sim_time=records[-1].sim_time,
            final_loss=records[-1].loss,
            mean_staleness=float(np.mean(staleness_vals)),
            max_staleness=int(max(staleness_vals)),
            loss_curve=tuple(r.loss for r in records),
        )

    def run_updates(self, max_updates: int) -> AsyncSummary:
        """Asynchronous mode: apply each arriving gradient immediately.

        Requires an :class:`~repro.engine.backends.AsyncArrivalBackend`
        and an :class:`~repro.engine.rules.AsyncUpdate` rule.  Each
        worker loops fetch → compute → upload independently; the master
        applies every arrival, tagged with its *staleness* — how many
        master updates happened since the worker fetched.
        """
        self.start_updates(max_updates)
        self.step_updates(max_updates)
        return self.finish_updates()

    # ------------------------------------------------------------------
    # Checkpointing.

    def snapshot(self) -> EngineState:
        """Capture the active run's full mutable state.

        Valid at any round/update boundary of an active run.  The
        returned :class:`EngineState` round-trips through JSON; feeding
        it to :meth:`restore` on a *freshly built* engine for the same
        spec resumes the run with bit-identical trajectories and traces.
        """
        if self._mode is None:
            raise TrainingError(
                "snapshot() requires an active run; call start_run() or "
                "start_updates() first"
            )
        if self._mode == MODE_ROUNDS:
            assert self._tracker is not None
            budget = self.max_steps
            threshold = self._tracker.threshold
            window = self._tracker.window
            losses = tuple(self._tracker.losses)
            round_index = len(self.records)
        else:
            budget = self._max_updates
            threshold = None
            window = 1
            losses = ()
            round_index = len(self.async_records)
        return EngineState(
            mode=self._mode,
            round_index=round_index,
            params=tuple(float(v) for v in self.model.get_parameters()),
            max_steps=budget,
            loss_threshold=threshold,
            smoothing_window=window,
            records=tuple(record_to_dict(r) for r in self.records),
            async_records=tuple(
                async_record_to_dict(r) for r in self.async_records
            ),
            losses=losses,
            rule=self.rule.snapshot_state(),
            backend=self.backend.snapshot_state(),
            strategy=self._strategy_state(),
            tracer_scheme=(
                self.tracer.scheme if self.tracer is not None else None
            ),
        )

    def restore(self, state: EngineState) -> None:
        """Resume a run captured by :meth:`snapshot`.

        The engine must have been built for the same spec that produced
        the snapshot (same model/strategy/backend/rule shapes); restore
        then overwrites every piece of mutable run state, after which
        :meth:`step_rounds` / :meth:`step_updates` continue bit-for-bit.
        """
        self.model.set_parameters(np.asarray(state.params, dtype=float))
        self.records = [record_from_dict(r) for r in state.records]
        self.async_records = [
            async_record_from_dict(r) for r in state.async_records
        ]
        self._mode = state.mode
        if state.mode == MODE_ROUNDS:
            from ..training.convergence import LossTracker

            tracker = LossTracker(state.loss_threshold, state.smoothing_window)
            tracker.load_losses(state.losses)
            self._tracker = tracker
            self.max_steps = state.max_steps
            self._max_updates = 0
        else:
            self._tracker = None
            self._max_updates = state.max_steps
        # Rule state may swap the strategy (adaptive migration replays
        # its recorded events), so it restores before the strategy RNG.
        self.rule.restore_state(self, state.rule)
        self._restore_strategy_state(state.strategy)
        self.backend.restore_state(self, state.backend)
        if self.tracer is not None and state.tracer_scheme is not None:
            self.tracer.set_context(scheme=state.tracer_scheme)

    def _strategy_state(self) -> dict:
        """Mutable strategy-side state: the decoder's fairness RNG."""
        decoder = getattr(self.strategy, "decoder", None)
        if decoder is None:
            return {}
        return {"decoder_rng": generator_state(decoder.rng)}

    def _restore_strategy_state(self, state) -> None:
        decoder = getattr(self.strategy, "decoder", None)
        if decoder is not None and "decoder_rng" in state:
            set_generator_state(decoder.rng, state["decoder_rng"])
