"""The round engine: one canonical training step for every scheme.

Historically the repo carried five hand-rolled loops (flat sync
trainer, async trainer, adaptive trainer, local-update trainer, actor
runtime) that each re-implemented batch draw → encode → arrivals →
wait → decode → update → eval.  :class:`RoundEngine` owns that step
once, parameterised along two orthogonal axes:

* an :class:`~repro.engine.backends.ExecutionBackend` — *where* the
  round runs (flat simulator, actor messages, async arrivals);
* an :class:`~repro.engine.rules.UpdateRule` — *what* the decoded
  aggregate means (sync mean-gradient update, local-update delta,
  adaptive migration, per-arrival async apply).

The historical trainer classes survive as thin shims over this class;
golden tests pin their trajectories bit-for-bit against pre-engine
recordings.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

import numpy as np

from ..exceptions import TrainingError
from ..types import AsyncSummary, AsyncUpdateRecord, StepRecord, TrainingSummary
from .backends import ExecutionBackend
from .rules import UpdateRule

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.tracer import RoundTracer
    from ..simulation.policies import WaitPolicy
    from ..training.datasets import BatchStream, Dataset
    from ..training.models import Model
    from ..training.strategies import TrainingStrategy


class RoundEngine:
    """Drives training rounds for any (strategy, backend, rule) triple."""

    def __init__(
        self,
        model: "Model",
        streams: Sequence["BatchStream"],
        strategy: "TrainingStrategy",
        backend: ExecutionBackend,
        rule: UpdateRule,
        eval_data: Optional["Dataset"] = None,
        tracer: "RoundTracer | None" = None,
    ):
        n = strategy.placement.num_partitions
        if len(streams) != n:
            raise TrainingError(
                f"strategy expects {n} partitions, got {len(streams)} "
                "batch streams"
            )
        self.model = model
        self.streams = list(streams)
        #: mutable on purpose: adaptive rules swap the strategy mid-run.
        self.strategy = strategy
        self.backend = backend
        self.rule = rule
        self.eval_data = eval_data
        self.num_partitions = n
        self.records: List[StepRecord] = []
        self.async_records: List[AsyncUpdateRecord] = []
        #: the current run's step budget (adaptive rules amortise
        #: migration cost over the remaining steps).
        self.max_steps = 0
        backend.bind(self)
        self.tracer = tracer if tracer is not None else backend.tracer
        # A decode cache riding on the strategy reports its hit/miss
        # counters through the trace registry (``decode.cache.*``), so
        # the hit rate lands in the run's trace summary.
        cache = getattr(strategy, "decode_cache", None)
        if self.tracer is not None and cache is not None:
            cache.attach_metrics(self.tracer.registry)
        # The engine is imported by repro.training, so training-layer
        # helpers bind at construction time rather than import time.
        from ..training.evaluation import held_out_loss

        self._eval_fn = held_out_loss

    @property
    def clock(self) -> float:
        return self.backend.clock

    # ------------------------------------------------------------------
    def run_step(
        self, step: int, policy: "WaitPolicy | None" = None
    ) -> StepRecord:
        """Execute one full round: compute/encode → wait → decode → update."""
        self.rule.before_step(self, step)
        if policy is None:
            policy = self.strategy.policy
        execution = self.backend.execute_round(self, step, policy)

        grad_sum, recovered = self.strategy.decode(
            execution.accepted, execution.payloads
        )
        if not recovered:
            raise TrainingError(
                f"{self.rule.step_noun} {step}: nothing recovered"
            )
        if self.tracer is not None:
            decision = getattr(self.strategy, "last_decode", None)
            self.tracer.record_decode(
                step,
                decoder_scheme=(
                    self.strategy.placement.scheme
                    if decision is not None else self.strategy.name
                ),
                num_searches=(
                    decision.num_searches if decision is not None else 1
                ),
                num_recovered=len(recovered),
                num_partitions=self.num_partitions,
            )
        applied = self.rule.apply(self, grad_sum, recovered)

        loss = self._eval_fn(
            self.model, self.eval_data, fallback_losses=execution.batch_losses
        )
        record = StepRecord(
            step=step,
            sim_time=self.backend.clock + self.rule.time_offset(),
            wait_time=execution.step_end - execution.step_start,
            num_available=len(execution.accepted),
            num_recovered=len(recovered),
            recovery_fraction=len(recovered) / self.num_partitions,
            loss=loss,
            grad_norm=(
                float(np.linalg.norm(applied))
                if self.rule.records_grad_norm else 0.0
            ),
        )
        self.records.append(record)
        self.backend.on_record(record)
        return record

    # ------------------------------------------------------------------
    def run(
        self,
        max_steps: int,
        loss_threshold: Optional[float] = None,
        smoothing_window: int = 5,
    ) -> TrainingSummary:
        """Train until ``loss_threshold`` or ``max_steps``."""
        if max_steps <= 0:
            raise TrainingError(f"max_steps must be positive, got {max_steps}")
        from ..training.convergence import LossTracker

        tracker = LossTracker(loss_threshold, smoothing_window)
        self.max_steps = max_steps
        self.records = []

        for step in range(max_steps):
            record = self.run_step(step)
            tracker.record(record.loss)
            if tracker.reached_threshold():
                break

        return self.summarize(reached=tracker.reached_threshold())

    def summarize(self, reached: bool = False) -> TrainingSummary:
        """Aggregate :attr:`records` into a :class:`TrainingSummary`."""
        records = self.records
        losses = tuple(r.loss for r in records)
        total = records[-1].sim_time if records else 0.0
        return TrainingSummary(
            scheme=self.rule.scheme_label(self),
            num_steps=len(records),
            total_sim_time=total,
            final_loss=losses[-1] if losses else float("nan"),
            reached_threshold=reached,
            avg_step_time=(total / len(records)) if records else 0.0,
            avg_recovery_fraction=float(
                np.mean([r.recovery_fraction for r in records])
            ) if records else 0.0,
            loss_curve=losses,
            time_curve=tuple(r.sim_time for r in records),
        )

    # ------------------------------------------------------------------
    def run_updates(self, max_updates: int) -> AsyncSummary:
        """Asynchronous mode: apply each arriving gradient immediately.

        Requires an :class:`~repro.engine.backends.AsyncArrivalBackend`
        and an :class:`~repro.engine.rules.AsyncUpdate` rule.  Each
        worker loops fetch → compute → upload independently; the master
        applies every arrival, tagged with its *staleness* — how many
        master updates happened since the worker fetched.
        """
        if max_updates <= 0:
            raise TrainingError(
                f"max_updates must be positive, got {max_updates}"
            )
        backend = self.backend
        backend.start()
        self.async_records = []
        losses: List[float] = []
        clock = 0.0
        master_version = 0

        while len(self.async_records) < max_updates:
            event = backend.next_arrival()
            clock = event.time
            worker = event.worker
            x, y = self.streams[worker].batch(backend.worker_step[worker])
            backend.worker_step[worker] += 1
            batch_loss, grad = self.model.loss_and_gradient(x, y)
            staleness = master_version - backend.fetch_version[worker]

            self.rule.apply_arrival(self, grad)
            master_version += 1

            loss = self._eval_fn(
                self.model, self.eval_data, fallback_losses=(batch_loss,)
            )
            losses.append(loss)
            prev_time = (
                self.async_records[-1].sim_time if self.async_records else 0.0
            )
            self.async_records.append(
                AsyncUpdateRecord(
                    update_index=master_version,
                    sim_time=clock,
                    worker=worker,
                    staleness=staleness,
                    loss=loss,
                )
            )
            metrics = backend.metrics
            metrics.counter("async.updates").inc()
            metrics.histogram("async.staleness").observe(staleness)
            metrics.histogram("async.update_interval").observe(
                clock - prev_time
            )
            backend.schedule(worker, clock, version=master_version)

        staleness_vals = [r.staleness for r in self.async_records]
        return AsyncSummary(
            num_updates=len(self.async_records),
            total_sim_time=clock,
            final_loss=losses[-1],
            mean_staleness=float(np.mean(staleness_vals)),
            max_staleness=int(max(staleness_vals)),
            loss_curve=tuple(losses),
        )
