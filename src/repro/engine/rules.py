"""Update rules: what the engine does with a decoded round.

The historical trainers differed not in the round mechanics (encode →
arrivals → wait → decode — that is the backend's job) but in four small
policies, captured here as :class:`UpdateRule` hooks:

* what is computed per partition (:meth:`compute_partitions` — a
  gradient for SGD, a τ-step parameter delta for local-update SGD);
* what happens before a step (:meth:`before_step` — nothing, or an
  adaptive migration review);
* how the decoded sum is applied (:meth:`apply` — an optimizer update,
  or a direct parameter assignment);
* how the run labels itself and charges extra simulated time
  (:meth:`scheme_label`, :meth:`time_offset`).

``repro.training`` imports this module, so anything from the training
layer (strategies, advisor-driven migration) is imported lazily inside
methods.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Sequence, Tuple

import numpy as np

from ..core.advisor import evaluate_placement, rank_placements
from ..core.migration import migration_cost_seconds, migration_plan
from ..core.placement import Placement
from ..env import make_network_model
from ..simulation.network import NetworkModel

if TYPE_CHECKING:  # pragma: no cover
    from ..training.optimizers import SGD
    from .core import RoundEngine

GradientMap = Dict[int, np.ndarray]


@dataclass(frozen=True)
class MigrationEvent:
    """A placement switch performed during training."""

    step: int
    sim_time: float
    from_label: str
    to_label: str
    partition_copies: int
    cost_seconds: float


class UpdateRule:
    """Base rule: per-partition gradients, no extra behaviour.

    Subclasses override the hooks they need; the defaults are inert
    (``before_step`` does nothing, ``time_offset`` is zero, the scheme
    label is the strategy's name).
    """

    #: whether the committed StepRecord carries ``‖applied‖₂``.
    records_grad_norm: bool = False
    #: noun used in "nothing recovered" errors ("step" vs "round").
    step_noun: str = "step"

    def compute_partitions(
        self, engine: "RoundEngine", step: int
    ) -> Tuple[GradientMap, Sequence[float]]:
        """Per-partition quantities to encode, plus their batch losses.

        Used by in-process backends (the actor backend computes inside
        its worker actors instead).  The default draws each partition's
        seeded batch and evaluates the gradient at the current
        parameters — the canonical step shared by every synchronous
        scheme in the paper.
        """
        partition_gradients: GradientMap = {}
        batch_losses: List[float] = []
        for pid in range(engine.num_partitions):
            x, y = engine.streams[pid].batch(step)
            loss, grad = engine.model.loss_and_gradient(x, y)
            partition_gradients[pid] = grad
            batch_losses.append(loss)
        return partition_gradients, batch_losses

    def before_step(self, engine: "RoundEngine", step: int) -> None:
        """Hook run before the round executes."""

    def apply(
        self,
        engine: "RoundEngine",
        aggregate: np.ndarray,
        recovered: FrozenSet[int],
    ) -> np.ndarray:
        """Apply the decoded sum to the model; returns the applied vector."""
        raise NotImplementedError

    def time_offset(self) -> float:
        """Extra simulated seconds charged on top of the backend clock."""
        return 0.0

    def scheme_label(self, engine: "RoundEngine") -> str:
        """The scheme name reported in the training summary."""
        return engine.strategy.name

    def snapshot_state(self) -> Dict:
        """JSON-safe mutable rule state (checkpointing); default none."""
        return {}

    def restore_state(self, engine: "RoundEngine", state) -> None:
        """Restore state captured by :meth:`snapshot_state`."""


class SyncUpdate(UpdateRule):
    """Unbiased mean-gradient SGD update (sync/GC/IS-SGD/IS-GC)."""

    records_grad_norm = True

    def __init__(self, optimizer: "SGD", recovery_scaled_lr: bool = False):
        self._optimizer = optimizer
        # Linear-scaling rule adapted to partial recovery: when fewer
        # partitions are recovered the gradient estimate is noisier, so
        # scale the step down by the recovered fraction (an extension;
        # off by default to match the paper's constant-η setting).
        self._recovery_scaled_lr = recovery_scaled_lr

    def apply(self, engine, aggregate, recovered):
        mean_grad = aggregate / len(recovered)
        if self._recovery_scaled_lr:
            mean_grad = mean_grad * (len(recovered) / engine.num_partitions)
        params = self._optimizer.update(
            engine.model.get_parameters(), mean_grad
        )
        engine.model.set_parameters(params)
        return mean_grad

    def snapshot_state(self):
        return {"optimizer": self._optimizer.snapshot_state()}

    def restore_state(self, engine, state):
        self._optimizer.restore_state(state["optimizer"])


class LocalUpdate(UpdateRule):
    """Local-update SGD: aggregate τ-step parameter deltas, not gradients.

    Every replica of a partition computes the identical delta (the
    local trajectory is deterministic given the broadcast parameters
    and the seeded stream), so the delta plays the role of ``g_i`` and
    the master decodes exactly as with gradients.
    """

    step_noun = "round"

    def __init__(self, local_steps: int, local_lr: float):
        self._tau = local_steps
        self._lr = local_lr
        self._start: np.ndarray | None = None

    @property
    def local_steps(self) -> int:
        return self._tau

    def partition_delta(
        self,
        engine: "RoundEngine",
        pid: int,
        round_index: int,
        start: np.ndarray,
    ) -> np.ndarray:
        """τ local SGD steps on partition ``pid``; returns −Δ.

        The sign convention matches gradients: the master *subtracts*
        the aggregated quantity scaled by its own step size of 1, so we
        return ``start − final`` ("the direction to move along").
        Batches are drawn at global steps ``round·τ .. round·τ+τ−1`` so
        every replica of the partition sees the identical sequence.
        """
        params = start.copy()
        for t in range(self._tau):
            engine.model.set_parameters(params)
            x, y = engine.streams[pid].batch(round_index * self._tau + t)
            _, grad = engine.model.loss_and_gradient(x, y)
            params = params - self._lr * grad
        return start - params

    def compute_partitions(self, engine, step):
        start = engine.model.get_parameters()
        self._start = start
        deltas = {
            pid: self.partition_delta(engine, pid, step, start)
            for pid in range(engine.num_partitions)
        }
        engine.model.set_parameters(start)
        return deltas, ()

    def apply(self, engine, aggregate, recovered):
        mean_delta = aggregate / len(recovered)
        engine.model.set_parameters(self._start - mean_delta)
        return mean_delta

    def scheme_label(self, engine):
        return f"local-sgd(τ={self._tau})+{engine.strategy.name}"


class AdaptiveMigration(SyncUpdate):
    """Sync updates plus periodic placement-migration reviews.

    Every ``review_every`` steps: rank placements at the observed wait
    count, estimate the per-step saving from the recovery improvement,
    and migrate when the amortisation test passes — the simulated clock
    is charged the full migration cost, model and optimizer state carry
    over, and the engine's strategy is swapped in place.
    """

    records_grad_norm = False

    def __init__(
        self,
        optimizer: "SGD",
        wait_for: int,
        partition_bytes: float = 1e7,
        network: NetworkModel | None = None,
        review_every: int = 25,
        min_recovery_gain: float = 0.05,
        rng: np.random.Generator | None = None,
    ):
        super().__init__(optimizer)
        self._wait_for = wait_for
        self._bytes = partition_bytes
        self._network = network if network is not None else make_network_model()
        self._review_every = review_every
        self._min_gain = min_recovery_gain
        self._rng = rng if rng is not None else np.random.default_rng()  # repro: noqa[DET003] deliberate opt-in to entropy when no rng is injected
        self._penalty = 0.0
        self.migrations: List[MigrationEvent] = []

    @property
    def review_every(self) -> int:
        return self._review_every

    def before_step(self, engine, step):
        if step > 0 and step % self._review_every == 0:
            self._maybe_migrate(engine, step)

    def _maybe_migrate(self, engine: "RoundEngine", step: int) -> None:
        placement: Placement = engine.strategy.placement
        n = placement.num_workers
        c = placement.partitions_per_worker
        ranking = rank_placements(
            n, c, self._wait_for, trials=1500, seed=step
        )
        best = ranking[0]
        current = evaluate_placement(
            placement, self._wait_for, trials=1500, seed=step
        )
        gain_partitions = best.expected_recovered - current.expected_recovered
        if gain_partitions / n < self._min_gain:
            return

        plan = migration_plan(placement, best.placement)
        if plan.is_noop:
            return
        cost = migration_cost_seconds(plan, self._bytes, self._network)
        # Saving model: higher recovery → fewer steps for the same
        # progress; approximate per-step value as the recovery gain
        # times the recent average step time.
        window = engine.records[-self._review_every:]
        if not window:
            return
        avg_step = float(np.mean([r.wait_time for r in window]))
        per_step_saving = (gain_partitions / n) * avg_step
        remaining = engine.max_steps - step
        if per_step_saving * remaining <= cost:
            return

        from ..training.strategies import ISGCStrategy

        self._penalty += cost
        self.migrations.append(
            MigrationEvent(
                step=step,
                sim_time=engine.backend.clock + cost,
                from_label=current.label,
                to_label=best.label,
                partition_copies=plan.total_partition_copies,
                cost_seconds=cost,
            )
        )
        # Rebuilt from a concrete migrated Placement object with the
        # run's shared generator — the name-keyed registry cannot
        # express either, so the direct construction is sanctioned.
        engine.strategy = ISGCStrategy(  # repro: noqa[REG001]
            best.placement, wait_for=self._wait_for, rng=self._rng
        )
        engine.backend.on_strategy_change(engine.strategy)
        if engine.tracer is not None:
            engine.tracer.registry.counter("adaptive.migrations").inc()
            engine.tracer.set_context(scheme=engine.strategy.name)

    def time_offset(self) -> float:
        return self._penalty

    def scheme_label(self, engine):
        return f"adaptive-is-gc ({len(self.migrations)} migrations)"

    def snapshot_state(self):
        from dataclasses import asdict

        from .state import generator_state

        state = super().snapshot_state()
        state.update({
            "penalty": self._penalty,
            "rng": generator_state(self._rng),
            "migrations": [asdict(event) for event in self.migrations],
        })
        return state

    def restore_state(self, engine, state):
        """Restore adaptive state, replaying the last migration.

        The migrated placement is not serialised: ``rank_placements``
        is deterministic in ``(n, c, wait_for, seed=step)``, so the
        placement the run switched to is re-derived exactly from the
        recorded migration step, and the rebuilt strategy shares this
        rule's (restored) generator just like the original swap did.
        """
        from .state import set_generator_state

        super().restore_state(engine, state)
        self._penalty = float(state["penalty"])
        set_generator_state(self._rng, state["rng"])
        self.migrations = [
            MigrationEvent(**event) for event in state["migrations"]
        ]
        if not self.migrations:
            return
        from ..training.strategies import ISGCStrategy

        placement: Placement = engine.strategy.placement
        ranking = rank_placements(
            placement.num_workers,
            placement.partitions_per_worker,
            self._wait_for,
            trials=1500,
            seed=self.migrations[-1].step,
        )
        engine.strategy = ISGCStrategy(  # repro: noqa[REG001]
            ranking[0].placement, wait_for=self._wait_for, rng=self._rng
        )
        engine.backend.on_strategy_change(engine.strategy)


class AsyncUpdate(UpdateRule):
    """Apply each gradient the moment it arrives (the async extreme)."""

    def __init__(self, optimizer: "SGD"):
        self._optimizer = optimizer

    def apply_arrival(self, engine: "RoundEngine", grad: np.ndarray) -> None:
        """Apply one arriving gradient to the master parameters."""
        params = self._optimizer.update(engine.model.get_parameters(), grad)
        engine.model.set_parameters(params)

    def apply(self, engine, aggregate, recovered):
        raise NotImplementedError(
            "AsyncUpdate applies per arrival; use RoundEngine.run_updates"
        )

    def scheme_label(self, engine):
        return "async-sgd"

    def snapshot_state(self):
        return {"optimizer": self._optimizer.snapshot_state()}

    def restore_state(self, engine, state):
        self._optimizer.restore_state(state["optimizer"])
