"""Declarative experiments: :class:`ExperimentSpec` plus registries.

An experiment used to be ~40 lines of hand wiring (dataset → partitions
→ streams → model → strategy → simulator → trainer) copy-pasted across
the figure runners, the examples, and every notebook.  A spec is the
same information as data::

    spec = ExperimentSpec(
        name="quickstart",
        scheme="is-gc-cr",
        num_workers=4,
        partitions_per_worker=2,
        wait_for=2,
        delay={"kind": "exponential", "mean": 1.5},
        max_steps=200,
    )
    summary = run_spec(spec)

Specs load from JSON or TOML files (``repro run spec.json``), and two
registries make the system open for extension without modification:

* :data:`SCHEME_REGISTRY` — scheme name → strategy factory
  (:func:`register_scheme`, :func:`make_strategy`);
* :data:`BACKEND_REGISTRY` — backend name → execution-backend factory
  (:func:`register_backend`).

A third registry lives one layer down:
:data:`~repro.core.scheme.PLACEMENT_REGISTRY` maps placement-family
names to :class:`~repro.core.scheme.PlacementScheme` classes, and the
IS-GC factories here build their placements through it.  The generic
``is-gc`` scheme exposes *every* registered family to specs:
``scheme="is-gc"`` with ``scheme_params={"placement": "hr", ...}``.

The environment side goes through a fourth registry family:
:data:`~repro.env.ENV_REGISTRY` resolves the ``delay:`` / ``failure:``
/ ``compute:`` / ``network:`` / ``contention:`` sections by kind, so
every registered straggler scenario (``repro environments``) is
spec-reachable — nested composites (``persistent`` / ``diurnal`` /
``bursty`` / ``mixture`` / ``bernoulli``) name their sub-models the
same way.

Registering one factory is all a new scheme, backend or placement
family needs; the engine and the CLI pick it up by name.

Training-layer classes are imported lazily inside the factories so
``repro.engine`` never circularly imports ``repro.training`` at module
load.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional

import numpy as np

from ..env import Environment
from ..exceptions import ConfigurationError
from ..straggler.models import DelayModel
from ..simulation.cluster import ComputeModel
from ..simulation.network import NetworkModel
from .backends import ActorBackend, AsyncArrivalBackend, ExecutionBackend, FlatBackend
from .core import RoundEngine
from .rules import AdaptiveMigration, AsyncUpdate, LocalUpdate, SyncUpdate, UpdateRule

SchemeFactory = Callable[..., Any]
BackendFactory = Callable[["BuildContext"], ExecutionBackend]

SCHEME_REGISTRY: Dict[str, SchemeFactory] = {}
BACKEND_REGISTRY: Dict[str, BackendFactory] = {}


def register_scheme(name: str) -> Callable[[SchemeFactory], SchemeFactory]:
    """Decorator registering a strategy factory under ``name``.

    Factories are called as ``factory(num_workers=...,
    partitions_per_worker=..., wait_for=..., rng=..., **params)`` and
    return a :class:`~repro.training.strategies.TrainingStrategy`.
    """

    def wrap(factory: SchemeFactory) -> SchemeFactory:
        SCHEME_REGISTRY[name] = factory
        return factory

    return wrap


def register_backend(name: str) -> Callable[[BackendFactory], BackendFactory]:
    """Decorator registering an execution-backend factory under ``name``."""

    def wrap(factory: BackendFactory) -> BackendFactory:
        BACKEND_REGISTRY[name] = factory
        return factory

    return wrap


def make_strategy(
    name: str,
    *,
    num_workers: int,
    partitions_per_worker: int = 1,
    wait_for: Optional[int] = None,
    rng: np.random.Generator | None = None,
    seed: Optional[int] = None,
    **params: Any,
):
    """Instantiate the registered scheme ``name``.

    ``seed`` is sugar for ``rng=np.random.default_rng(seed)`` (matching
    the figure runners' per-trial seeding); an explicit ``rng`` wins.
    """
    factory = SCHEME_REGISTRY.get(name)
    if factory is None:
        import difflib

        known = ", ".join(sorted(SCHEME_REGISTRY))
        close = difflib.get_close_matches(
            str(name), sorted(SCHEME_REGISTRY), n=3, cutoff=0.5
        )
        hint = (
            " — did you mean " + " or ".join(repr(m) for m in close) + "?"
            if close
            else ""
        )
        raise ConfigurationError(
            f"unknown scheme {name!r}{hint}; registered schemes: {known}"
        )
    if rng is None and seed is not None:
        rng = np.random.default_rng(seed)
    return factory(
        num_workers=num_workers,
        partitions_per_worker=partitions_per_worker,
        wait_for=wait_for,
        rng=rng,
        **params,
    )


# ----------------------------------------------------------------------
# Built-in schemes.  Lazy imports keep engine ↔ training acyclic.

@register_scheme("sync-sgd")
def _sync_sgd(*, num_workers, partitions_per_worker=1, wait_for=None,
              rng=None, **params):
    from ..training.strategies import SyncSGDStrategy

    return SyncSGDStrategy(num_workers)


@register_scheme("is-sgd")
def _is_sgd(*, num_workers, partitions_per_worker=1, wait_for=None,
            rng=None, policy=None, **params):
    from ..training.strategies import ISSGDStrategy

    if wait_for is None:
        raise ConfigurationError("scheme 'is-sgd' needs wait_for")
    return ISSGDStrategy(num_workers, wait_for, policy=policy)


@register_scheme("gc")
def _classic_gc(*, num_workers, partitions_per_worker=1, wait_for=None,
                rng=None, **params):
    from ..core.scheme import make_placement
    from ..training.strategies import ClassicGCStrategy

    placement = make_placement(
        "cr", num_workers=num_workers,
        partitions_per_worker=partitions_per_worker,
    )
    return ClassicGCStrategy(placement, rng=rng)


def _isgc(placement, wait_for, rng, policy, cache=None):
    from ..parallel.cache import DecodeCache
    from ..training.strategies import ISGCStrategy

    if wait_for is None:
        raise ConfigurationError("IS-GC schemes need wait_for")
    # Spec-built IS-GC runs cache their decode search kernels by
    # default: cached decoding is bit-for-bit identical to uncached
    # (the memo sits under the fairness RNG draws), so this is pure
    # speed-up.  Pass an explicit cache to share one across runs.
    if cache is None:
        cache = DecodeCache()
    return ISGCStrategy(
        placement, wait_for=wait_for, rng=rng, policy=policy, cache=cache
    )


@register_scheme("is-gc-fr")
def _isgc_fr(*, num_workers, partitions_per_worker=1, wait_for=None,
             rng=None, policy=None, cache=None, **params):
    from ..core.scheme import make_placement

    placement = make_placement(
        "fr", num_workers=num_workers,
        partitions_per_worker=partitions_per_worker,
    )
    return _isgc(placement, wait_for, rng, policy, cache)


@register_scheme("is-gc-cr")
def _isgc_cr(*, num_workers, partitions_per_worker=1, wait_for=None,
             rng=None, policy=None, cache=None, **params):
    from ..core.scheme import make_placement

    placement = make_placement(
        "cr", num_workers=num_workers,
        partitions_per_worker=partitions_per_worker,
    )
    return _isgc(placement, wait_for, rng, policy, cache)


@register_scheme("is-gc-hr")
def _isgc_hr(*, num_workers, partitions_per_worker=1, wait_for=None,
             rng=None, policy=None, c1=None, c2=None, num_groups=None,
             cache=None, **params):
    from ..core.scheme import make_placement

    if c1 is None or c2 is None or num_groups is None:
        raise ConfigurationError(
            "scheme 'is-gc-hr' needs c1, c2 and num_groups params"
        )
    placement = make_placement(
        "hr", num_workers=num_workers, c1=c1, c2=c2, num_groups=num_groups,
    )
    return _isgc(placement, wait_for, rng, policy, cache)


@register_scheme("is-gc")
def _isgc_any(*, num_workers, partitions_per_worker=1, wait_for=None,
              rng=None, policy=None, cache=None, placement="cr", **params):
    """Generic IS-GC over *any* registered placement family.

    ``scheme_params={"placement": "<family>", ...}`` routes the
    remaining params to the family's :func:`register_placement` class,
    so new families become spec-constructible without touching this
    module (e.g. ``placement="hr"`` with ``c1``/``c2``/``num_groups``,
    or ``placement="explicit"`` with ``rows``).
    """
    from ..core.scheme import spec_placement_scheme

    scheme = spec_placement_scheme(
        placement,
        num_workers=num_workers,
        partitions_per_worker=partitions_per_worker,
        **params,
    )
    return _isgc(scheme.construct(), wait_for, rng, policy, cache)


# ----------------------------------------------------------------------
# The spec itself.

_DEFAULT_DATASET: Mapping[str, Any] = {
    "kind": "classification",
    "samples": 512,
    "features": 8,
    "num_classes": 2,
    "separation": 3.0,
    "batch_size": 32,
}

_DEFAULT_MODEL: Mapping[str, Any] = {"kind": "logistic"}

_DEFAULT_DELAY: Mapping[str, Any] = {"kind": "exponential", "mean": 1.0}


@dataclass(frozen=True)
class ExperimentSpec:
    """A complete, serialisable description of one training run."""

    name: str
    scheme: str
    num_workers: int
    partitions_per_worker: int = 1
    wait_for: Optional[int] = None
    backend: str = "flat"
    rule: str = "sync"
    max_steps: int = 100
    loss_threshold: Optional[float] = None
    smoothing_window: int = 5
    learning_rate: float = 0.3
    seed: int = 0
    dataset: Mapping[str, Any] = field(
        default_factory=lambda: dict(_DEFAULT_DATASET)
    )
    model: Mapping[str, Any] = field(
        default_factory=lambda: dict(_DEFAULT_MODEL)
    )
    delay: Mapping[str, Any] = field(
        default_factory=lambda: dict(_DEFAULT_DELAY)
    )
    compute: Mapping[str, Any] = field(default_factory=dict)
    network: Mapping[str, Any] = field(default_factory=dict)
    failure: Mapping[str, Any] = field(default_factory=dict)
    contention: Mapping[str, Any] = field(default_factory=dict)
    scheme_params: Mapping[str, Any] = field(default_factory=dict)
    rule_params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        if self.num_workers <= 0:
            raise ConfigurationError(
                f"num_workers must be positive, got {self.num_workers}"
            )
        if self.max_steps <= 0:
            raise ConfigurationError(
                f"max_steps must be positive, got {self.max_steps}"
            )
        if self.rule not in ("sync", "local-update", "adaptive", "async"):
            raise ConfigurationError(
                f"unknown rule {self.rule!r}; expected sync, local-update, "
                "adaptive or async"
            )

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain JSON-ready dict (the inverse of :meth:`from_dict`)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        """Build a spec from a parsed JSON/TOML mapping.

        Unknown keys raise :class:`ConfigurationError` with a
        did-you-mean hint, so a typoed ``wiat_for`` in a submission
        payload fails at admission instead of silently defaulting.
        """
        import difflib

        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            hints = []
            for name in unknown:
                close = difflib.get_close_matches(
                    name, sorted(known), n=1, cutoff=0.6
                )
                hints.append(
                    f"{name!r} — did you mean {close[0]!r}?"
                    if close else repr(name)
                )
            raise ConfigurationError(
                f"unknown spec field{'s' if len(unknown) != 1 else ''}: "
                + "; ".join(hints)
            )
        return cls(**dict(data))

    @classmethod
    def from_file(cls, path: "str | pathlib.Path") -> "ExperimentSpec":
        """Load a spec from a ``.json`` or ``.toml`` file.

        The public file API: ``repro run``, job submission payloads
        (``repro submit``) and :meth:`to_file` all share this format.
        Validation failures raise :class:`ConfigurationError` with
        did-you-mean hints for unknown field names.
        """
        path = pathlib.Path(path)
        if not path.exists():
            raise ConfigurationError(f"spec file not found: {path}")
        if path.suffix == ".json":
            try:
                data = json.loads(path.read_text())
            except json.JSONDecodeError as exc:
                raise ConfigurationError(
                    f"spec file {path} is not valid JSON: {exc}"
                ) from exc
        elif path.suffix == ".toml":
            try:
                import tomllib
            except ImportError as exc:  # pragma: no cover - 3.10 only
                raise ConfigurationError(
                    "TOML specs need Python >= 3.11 (tomllib); "
                    "use a JSON spec instead"
                ) from exc
            try:
                data = tomllib.loads(path.read_text())
            except tomllib.TOMLDecodeError as exc:
                raise ConfigurationError(
                    f"spec file {path} is not valid TOML: {exc}"
                ) from exc
        else:
            raise ConfigurationError(
                f"spec files must be .json or .toml, got {path.suffix!r}"
            )
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"spec file {path} must contain a mapping"
            )
        return cls.from_dict(data)

    # `load` predates `from_file`; both names are public and identical.
    load = from_file

    def to_file(self, path: "str | pathlib.Path") -> pathlib.Path:
        """Write the spec to ``path`` (format chosen by suffix).

        ``.json`` writes canonical indented JSON; ``.toml`` writes a
        TOML document :meth:`from_file` reads back to an equal spec
        (``None``-valued optionals are omitted — TOML has no null —
        and re-applied as defaults on load).  Returns the path.
        """
        path = pathlib.Path(path)
        if path.suffix == ".json":
            self.save(path)
        elif path.suffix == ".toml":
            path.write_text(_spec_toml(self.to_dict()))
        else:
            raise ConfigurationError(
                f"spec files must be .json or .toml, got {path.suffix!r}"
            )
        return path

    def save(self, path: "str | pathlib.Path") -> None:
        """Write the spec as JSON regardless of suffix (the historical
        behaviour; :meth:`to_file` picks the format by suffix)."""
        pathlib.Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )

    def fingerprint(self) -> str:
        """Content digest of this spec, stable across processes.

        A deterministic function of every field (canonical sorted-key
        JSON), mirroring :meth:`Placement.fingerprint`; it identifies
        a run's full configuration in :class:`~repro.engine.report.RunReport`
        payloads and serve-job results.
        """
        canonical = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        h = hashlib.blake2b(digest_size=16)
        h.update(canonical.encode())
        return h.hexdigest()


def _toml_scalar(value: Any) -> str:
    """Render one TOML value (the subset spec fields use)."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        if isinstance(value, float) and value != value:
            return "nan"
        if value == float("inf"):
            return "inf"
        if value == float("-inf"):
            return "-inf"
        return repr(value)
    if isinstance(value, str):
        return json.dumps(value)
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_toml_scalar(v) for v in value) + "]"
    if isinstance(value, Mapping):  # nested model specs → inline tables
        rows = ", ".join(
            f"{k} = {_toml_scalar(v)}" for k, v in value.items()
            if v is not None
        )
        return "{" + rows + "}"
    raise ConfigurationError(
        f"cannot write {type(value).__name__} value {value!r} to TOML"
    )


def _spec_toml(data: Dict[str, Any]) -> str:
    """A spec dict as TOML: scalar fields first, mappings as tables.

    ``None`` values are dropped (TOML has no null); they are optional
    spec fields whose defaults re-apply on :meth:`ExperimentSpec.from_file`.
    """
    scalars, tables = [], []
    for key, value in data.items():
        if value is None:
            continue
        if isinstance(value, Mapping):
            if value:
                rows = "\n".join(
                    f"{k} = {_toml_scalar(v)}"
                    for k, v in value.items()
                    if v is not None
                )
                tables.append(f"[{key}]\n{rows}")
        else:
            scalars.append(f"{key} = {_toml_scalar(value)}")
    return "\n".join(scalars) + "\n\n" + "\n\n".join(tables) + "\n"


@dataclass
class BuildContext:
    """Everything a backend factory may need, already constructed.

    ``compute``/``network``/``delay_model`` mirror the corresponding
    :class:`~repro.env.Environment` layers for backends that wire
    models individually; ``environment`` carries the full composite
    (including failure and contention) for backends that support it.
    """

    spec: ExperimentSpec
    model: Any
    streams: list
    strategy: Any
    optimizer: Any
    eval_data: Any
    compute: ComputeModel
    network: NetworkModel
    delay_model: DelayModel
    rng: np.random.Generator
    environment: Optional[Environment] = None


# ----------------------------------------------------------------------
# Built-in backends.

def _require_flat_only_sections(ctx: BuildContext, backend: str) -> None:
    """``failure:``/``contention:`` are simulated by the flat backend's
    :class:`ClusterSimulator` only; reject silently-ignored sections."""
    unsupported = [
        name
        for name, section in (
            ("failure", ctx.spec.failure),
            ("contention", ctx.spec.contention),
        )
        if section
    ]
    if unsupported:
        raise ConfigurationError(
            f"backend {backend!r} does not simulate the "
            f"{'/'.join(unsupported)} spec section(s); "
            "use the flat backend"
        )


@register_backend("flat")
def _flat_backend(ctx: BuildContext) -> ExecutionBackend:
    from ..simulation.cluster import ClusterSimulator

    if ctx.environment is not None:
        cluster = ClusterSimulator(
            num_workers=ctx.spec.num_workers,
            partitions_per_worker=(
                ctx.strategy.placement.partitions_per_worker
            ),
            environment=ctx.environment,
            rng=ctx.rng,
        )
    else:  # hand-built BuildContext without the composite
        cluster = ClusterSimulator(
            num_workers=ctx.spec.num_workers,
            partitions_per_worker=(
                ctx.strategy.placement.partitions_per_worker
            ),
            compute=ctx.compute,
            network=ctx.network,
            delay_model=ctx.delay_model,
            rng=ctx.rng,
        )
    return FlatBackend(cluster)


@register_backend("actor")
def _actor_backend(ctx: BuildContext) -> ExecutionBackend:
    from ..runtime.actors import MasterActor, WorkerActor

    _require_flat_only_sections(ctx, "actor")
    eval_data = ctx.eval_data
    master = MasterActor(
        ctx.strategy,
        ctx.model,
        ctx.optimizer,
        eval_features=eval_data.features if eval_data is not None else None,
        eval_labels=eval_data.labels if eval_data is not None else None,
    )
    workers = [
        WorkerActor(i, ctx.strategy, ctx.model, ctx.streams)
        for i in range(ctx.spec.num_workers)
    ]
    return ActorBackend(
        master,
        workers,
        compute=ctx.compute,
        network=ctx.network,
        delay_model=ctx.delay_model,
        rng=ctx.rng,
    )


@register_backend("async-arrivals")
def _async_backend(ctx: BuildContext) -> ExecutionBackend:
    _require_flat_only_sections(ctx, "async-arrivals")
    return AsyncArrivalBackend(
        compute=ctx.compute,
        network=ctx.network,
        delay_model=ctx.delay_model,
        rng=ctx.rng,
    )


# ----------------------------------------------------------------------
# Spec → engine assembly.

def _build_dataset(spec: ExperimentSpec):
    from ..training.datasets import (
        make_cifar_like,
        make_classification,
        make_regression,
    )

    params = {**_DEFAULT_DATASET, **dict(spec.dataset)}
    kind = params.pop("kind")
    params.pop("batch_size", None)
    seed = params.pop("seed", spec.seed)
    if kind == "classification":
        return make_classification(
            params.pop("samples"),
            params.pop("features"),
            num_classes=params.pop("num_classes"),
            separation=params.pop("separation"),
            seed=seed,
            **params,
        )
    if kind == "cifar-like":
        params.pop("features", None)
        params.pop("num_classes", None)
        params.pop("separation", None)
        return make_cifar_like(
            params.pop("samples"), side=params.pop("side", 8), seed=seed
        )
    if kind == "regression":
        params.pop("num_classes", None)
        params.pop("separation", None)
        return make_regression(
            params.pop("samples"), params.pop("features"), seed=seed,
            **params,
        )
    raise ConfigurationError(f"unknown dataset kind {kind!r}")


def _build_model(spec: ExperimentSpec, dataset):
    from ..training.models import (
        LinearRegressionModel,
        LogisticRegressionModel,
        MLPClassifier,
        SoftmaxRegressionModel,
    )

    params = {**_DEFAULT_MODEL, **dict(spec.model)}
    kind = params.pop("kind")
    features = int(dataset.features.shape[1])
    seed = params.pop("seed", 0)
    if kind == "logistic":
        return LogisticRegressionModel(features, seed=seed, **params)
    if kind == "linear":
        return LinearRegressionModel(features, seed=seed, **params)
    if kind == "softmax":
        num_classes = params.pop(
            "num_classes", int(np.max(dataset.labels)) + 1
        )
        return SoftmaxRegressionModel(
            features, num_classes, seed=seed, **params
        )
    if kind == "mlp":
        num_classes = params.pop(
            "num_classes", int(np.max(dataset.labels)) + 1
        )
        return MLPClassifier(
            features,
            hidden_units=params.pop("hidden_units", 32),
            num_classes=num_classes,
            seed=seed,
            **params,
        )
    raise ConfigurationError(f"unknown model kind {kind!r}")


def _build_environment(spec: ExperimentSpec) -> Environment:
    """The spec's five environment sections, resolved by the registry.

    Every registered kind (``repro environments``) is reachable; the
    ``delay:`` section defaults its kind to ``exponential`` (the
    historical bare ``{"mean": ...}`` syntax keeps working), and bare
    ``compute:``/``network:`` parameter mappings build the ``uniform``
    families as before.
    """
    delay = dict(spec.delay) if spec.delay else dict(_DEFAULT_DELAY)
    delay.setdefault("kind", "exponential")
    return Environment(
        delay=delay,
        failure=dict(spec.failure) if spec.failure else None,
        compute=dict(spec.compute) if spec.compute else None,
        network=dict(spec.network) if spec.network else None,
        contention=dict(spec.contention) if spec.contention else None,
    )


def _build_rule(spec: ExperimentSpec, ctx: BuildContext) -> UpdateRule:
    params = dict(spec.rule_params)
    if spec.rule == "sync":
        return SyncUpdate(
            ctx.optimizer,
            recovery_scaled_lr=params.pop("recovery_scaled_lr", False),
        )
    if spec.rule == "local-update":
        return LocalUpdate(
            local_steps=params.pop("local_steps", 4),
            local_lr=params.pop("local_lr", spec.learning_rate),
        )
    if spec.rule == "adaptive":
        if spec.wait_for is None:
            raise ConfigurationError("rule 'adaptive' needs wait_for")
        return AdaptiveMigration(
            ctx.optimizer,
            wait_for=spec.wait_for,
            partition_bytes=params.pop("partition_bytes", 1e7),
            network=ctx.network,
            review_every=params.pop("review_every", 25),
            min_recovery_gain=params.pop("min_recovery_gain", 0.05),
            rng=np.random.default_rng(params.pop("seed", spec.seed + 5)),
        )
    if spec.rule == "async":
        return AsyncUpdate(ctx.optimizer)
    raise ConfigurationError(f"unknown rule {spec.rule!r}")


def build_engine(spec: ExperimentSpec, tracer=None) -> RoundEngine:
    """Assemble the full engine a spec describes.

    Seeding convention (matching the figure runners): the dataset uses
    ``seed``, partitioning ``seed+1``, batch streams ``seed+2``, the
    strategy's decoder ``seed+3``, the backend simulator ``seed+4``,
    and an adaptive rule's advisor ``seed+5``.

    ``tracer`` (a :class:`~repro.obs.RoundTracer`) threads per-round
    tracing through the engine — the serve coordinator uses this for
    live per-job trace streaming.  Tracing never perturbs the run.
    """
    from ..training.datasets import build_batch_streams, partition_dataset
    from ..training.optimizers import SGD

    dataset = _build_dataset(spec)
    num_partitions = spec.num_workers
    partitions = partition_dataset(dataset, num_partitions, seed=spec.seed + 1)
    batch_size = dict(spec.dataset).get(
        "batch_size", _DEFAULT_DATASET["batch_size"]
    )
    streams = build_batch_streams(partitions, batch_size, seed=spec.seed + 2)
    model = _build_model(spec, dataset)
    strategy = make_strategy(
        spec.scheme,
        num_workers=spec.num_workers,
        partitions_per_worker=spec.partitions_per_worker,
        wait_for=spec.wait_for,
        seed=dict(spec.scheme_params).pop("seed", spec.seed + 3),
        **{k: v for k, v in spec.scheme_params.items() if k != "seed"},
    )
    environment = _build_environment(spec)
    optimizer = SGD(spec.learning_rate)

    ctx = BuildContext(
        spec=spec,
        model=model,
        streams=list(streams),
        strategy=strategy,
        optimizer=optimizer,
        eval_data=dataset,
        compute=environment.compute,
        network=environment.network,
        delay_model=environment.delay,
        rng=np.random.default_rng(spec.seed + 4),
        environment=environment,
    )

    backend_name = "async-arrivals" if spec.rule == "async" else spec.backend
    backend_factory = BACKEND_REGISTRY.get(backend_name)
    if backend_factory is None:
        known = ", ".join(sorted(BACKEND_REGISTRY))
        raise ConfigurationError(
            f"unknown backend {backend_name!r}; registered backends: {known}"
        )
    backend = backend_factory(ctx)
    if tracer is not None:
        cluster = getattr(backend, "cluster", None)
        if cluster is None:
            raise ConfigurationError(
                f"tracing requires a cluster-backed backend "
                f"(round events come from ClusterSimulator); "
                f"backend {backend_name!r} does not record rounds"
            )
        cluster.tracer = tracer
    rule = _build_rule(spec, ctx)
    return RoundEngine(
        model=model,
        streams=ctx.streams,
        strategy=strategy,
        backend=backend,
        rule=rule,
        eval_data=dataset,
        tracer=tracer,
    )


def run_spec_variation(base: ExperimentSpec, **overrides):
    """Run ``base`` with dataclass-field overrides applied.

    Module-level (hence picklable) cell function for spec grid sweeps:
    ``ProcessExecutor`` ships ``functools.partial(run_spec_variation,
    base)`` plus per-point override dicts across the pool boundary.
    Overrides re-run the spec's validation via ``dataclasses.replace``.
    """
    spec = dataclasses.replace(base, **overrides) if overrides else base
    return run_spec(spec)


def run_spec(spec: "ExperimentSpec | str | pathlib.Path"):
    """Build and run a spec; returns the run's summary.

    Accepts a spec object or a path to a ``.json``/``.toml`` file.
    Synchronous rules return a
    :class:`~repro.types.TrainingSummary`; the async rule returns an
    :class:`~repro.types.AsyncSummary`.
    """
    if not isinstance(spec, ExperimentSpec):
        spec = ExperimentSpec.load(spec)
    engine = build_engine(spec)
    if spec.rule == "async":
        return engine.run_updates(spec.max_steps)
    return engine.run(
        spec.max_steps,
        loss_threshold=spec.loss_threshold,
        smoothing_window=spec.smoothing_window,
    )
