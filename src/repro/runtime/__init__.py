"""Actor runtime: the Ray-like substrate the paper's implementation used."""

from .messages import GradientUpload, Message, ParameterBroadcast, StopTraining
from .actors import MasterActor, WorkerActor
from .system import SimulatedRuntime

__all__ = [
    "Message",
    "ParameterBroadcast",
    "GradientUpload",
    "StopTraining",
    "MasterActor",
    "WorkerActor",
    "SimulatedRuntime",
]
