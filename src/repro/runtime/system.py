"""The simulated actor system.

Drives :class:`MasterActor` and :class:`WorkerActor` instances over the
discrete-event queue, reproducing the paper's Ray loop with explicit
messages:

  broadcast → (compute + straggle + upload) per worker → ``wait(w)``
  at the master → decode → update → next broadcast.

This is an *integration-level* backend: it produces bit-identical
training trajectories to the flat :class:`~repro.training.DistributedTrainer`
(verified in ``tests/test_runtime.py``), but exercises the message
path a real deployment would take, logs every message, and is the
natural seam for swapping in an actual transport.

The scheduling half of the loop lives in
:class:`~repro.engine.backends.ActorBackend`; this class is a
compatibility shim that builds the actors, wires them into a
:class:`~repro.engine.core.RoundEngine`, and keeps the historical
``master.records`` / ``message_log`` surfaces.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..engine.backends import ActorBackend
from ..engine.core import RoundEngine
from ..engine.rules import SyncUpdate
from ..exceptions import SimulationError
from ..simulation.cluster import ComputeModel
from ..simulation.network import NetworkModel
from ..simulation.policies import WaitPolicy
from ..straggler.models import DelayModel
from ..training.datasets import BatchStream, Dataset
from ..training.models import Model
from ..training.optimizers import SGD
from ..training.strategies import TrainingStrategy
from ..types import StepRecord, TrainingSummary
from .actors import MasterActor, WorkerActor
from .messages import Message


class SimulatedRuntime:
    """Executes one master and ``n`` workers over simulated time."""

    def __init__(
        self,
        strategy: TrainingStrategy,
        model: Model,
        streams: Sequence[BatchStream],
        optimizer: SGD,
        compute: ComputeModel | None = None,
        network: NetworkModel | None = None,
        delay_model: DelayModel | None = None,
        eval_data: Optional[Dataset] = None,
        rng: np.random.Generator | None = None,
        keep_message_log: bool = False,
    ):
        n = strategy.placement.num_workers
        if len(streams) != strategy.placement.num_partitions:
            raise SimulationError(
                f"expected {strategy.placement.num_partitions} streams, "
                f"got {len(streams)}"
            )
        self._strategy = strategy

        self.master = MasterActor(
            strategy,
            model,
            optimizer,
            eval_features=eval_data.features if eval_data else None,
            eval_labels=eval_data.labels if eval_data else None,
        )
        # Workers share the model object: actors run one at a time in
        # simulation, and each sets parameters before computing, so
        # sharing is safe and keeps memory flat.  A real deployment
        # would give each worker its own replica.
        self.workers = [
            WorkerActor(i, strategy, model, streams) for i in range(n)
        ]
        self._backend = ActorBackend(
            self.master,
            self.workers,
            compute=compute,
            network=network,
            delay_model=delay_model,
            rng=rng,
            keep_message_log=keep_message_log,
        )
        self._engine = RoundEngine(
            model=model,
            streams=streams,
            strategy=strategy,
            backend=self._backend,
            rule=SyncUpdate(optimizer),
            eval_data=eval_data,
        )

    @property
    def engine(self) -> RoundEngine:
        """The underlying round engine."""
        return self._engine

    @property
    def clock(self) -> float:
        return self._backend.clock

    @property
    def message_log(self) -> List[Message]:
        return self._backend.message_log

    # ------------------------------------------------------------------
    def run_step(self, policy: WaitPolicy) -> StepRecord:
        """Execute one full broadcast/collect/decode/update round."""
        return self._engine.run_step(self.master.step, policy)

    # ------------------------------------------------------------------
    def run(
        self,
        max_steps: int,
        loss_threshold: Optional[float] = None,
        smoothing_window: int = 5,
    ) -> TrainingSummary:
        """Train like :class:`~repro.training.DistributedTrainer`.

        Records accumulate on ``master.records`` across ``run`` calls
        (the historical behaviour), so the loop lives here rather than
        in :meth:`RoundEngine.run`.
        """
        if max_steps <= 0:
            raise SimulationError(f"max_steps must be positive, got {max_steps}")
        from ..training.convergence import LossTracker

        tracker = LossTracker(loss_threshold, smoothing_window)
        for _ in range(max_steps):
            self.run_step(self._strategy.policy)
            tracker.record(self.master.records[-1].loss)
            if tracker.reached_threshold():
                break

        records = self.master.records
        losses = tuple(r.loss for r in records)
        total = records[-1].sim_time if records else 0.0
        return TrainingSummary(
            scheme=self._strategy.name,
            num_steps=len(records),
            total_sim_time=total,
            final_loss=losses[-1] if losses else float("nan"),
            reached_threshold=tracker.reached_threshold(),
            avg_step_time=(total / len(records)) if records else 0.0,
            avg_recovery_fraction=float(
                np.mean([r.recovery_fraction for r in records])
            ) if records else 0.0,
            loss_curve=losses,
            time_curve=tuple(r.sim_time for r in records),
        )
