"""The simulated actor system.

Drives :class:`MasterActor` and :class:`WorkerActor` instances over the
discrete-event queue, reproducing the paper's Ray loop with explicit
messages:

  broadcast → (compute + straggle + upload) per worker → ``wait(w)``
  at the master → decode → update → next broadcast.

This is an *integration-level* backend: it produces bit-identical
training trajectories to the flat :class:`~repro.training.DistributedTrainer`
(verified in ``tests/test_runtime.py``), but exercises the message
path a real deployment would take, logs every message, and is the
natural seam for swapping in an actual transport.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..exceptions import SimulationError
from ..simulation.cluster import ComputeModel
from ..simulation.events import Event, EventQueue
from ..simulation.network import NetworkModel
from ..simulation.policies import WaitPolicy
from ..straggler.models import DelayModel, NoDelay
from ..training.datasets import BatchStream, Dataset
from ..training.models import Model
from ..training.optimizers import SGD
from ..training.strategies import TrainingStrategy
from ..types import TrainingSummary
from .actors import MasterActor, WorkerActor
from .messages import GradientUpload, Message, ParameterBroadcast


class SimulatedRuntime:
    """Executes one master and ``n`` workers over simulated time."""

    def __init__(
        self,
        strategy: TrainingStrategy,
        model: Model,
        streams: Sequence[BatchStream],
        optimizer: SGD,
        compute: ComputeModel | None = None,
        network: NetworkModel | None = None,
        delay_model: DelayModel | None = None,
        eval_data: Optional[Dataset] = None,
        rng: np.random.Generator | None = None,
        keep_message_log: bool = False,
    ):
        n = strategy.placement.num_workers
        if len(streams) != strategy.placement.num_partitions:
            raise SimulationError(
                f"expected {strategy.placement.num_partitions} streams, "
                f"got {len(streams)}"
            )
        self._strategy = strategy
        self._compute = compute if compute is not None else ComputeModel()
        self._network = network if network is not None else NetworkModel()
        self._delays = delay_model if delay_model is not None else NoDelay()
        self._rng = rng if rng is not None else np.random.default_rng()
        self._clock = 0.0

        self.master = MasterActor(
            strategy,
            model,
            optimizer,
            eval_features=eval_data.features if eval_data else None,
            eval_labels=eval_data.labels if eval_data else None,
        )
        # Workers share the model object: actors run one at a time in
        # simulation, and each sets parameters before computing, so
        # sharing is safe and keeps memory flat.  A real deployment
        # would give each worker its own replica.
        self.workers = [
            WorkerActor(i, strategy, model, streams) for i in range(n)
        ]
        self._keep_log = keep_message_log
        self.message_log: List[Message] = []

    @property
    def clock(self) -> float:
        return self._clock

    # ------------------------------------------------------------------
    def run_step(self, policy: WaitPolicy) -> None:
        """Execute one full broadcast/collect/decode/update round."""
        start = self._clock
        broadcast = self.master.broadcast(start)
        if self._keep_log:
            self.message_log.append(broadcast)

        broadcast_t = self._network.broadcast_time(
            len(broadcast.parameters), len(self.workers)
        )
        queue = EventQueue()
        grad_elems = broadcast.parameters.size
        for worker in self.workers:
            upload = worker.handle_broadcast(broadcast, start + broadcast_t)
            compute_t = self._compute.step_time(len(worker.partitions))
            straggle_t = self._delays.sample(
                worker.worker_id, broadcast.step, self._rng
            )
            upload_t = self._network.transfer_time(grad_elems)
            arrival = start + broadcast_t + compute_t + straggle_t + upload_t
            queue.push(
                Event(arrival, "upload", worker=worker.worker_id, payload=upload)
            )

        arrivals = {}
        uploads: dict[int, GradientUpload] = {}
        for event in queue.drain():
            arrivals[event.worker] = event.time - start
            uploads[event.worker] = event.payload

        outcome = policy.wait(arrivals, broadcast.step)
        for w in sorted(outcome.accepted_workers):
            msg = uploads[w]
            self.master.receive(msg)
            if self._keep_log:
                self.message_log.append(msg)

        end = start + outcome.proceed_time
        self.master.complete_step(
            sorted(outcome.accepted_workers), end, outcome.proceed_time
        )
        self._clock = end

    # ------------------------------------------------------------------
    def run(
        self,
        max_steps: int,
        loss_threshold: Optional[float] = None,
        smoothing_window: int = 5,
    ) -> TrainingSummary:
        """Train like :class:`~repro.training.DistributedTrainer`."""
        if max_steps <= 0:
            raise SimulationError(f"max_steps must be positive, got {max_steps}")
        from ..training.convergence import LossTracker

        tracker = LossTracker(loss_threshold, smoothing_window)
        for _ in range(max_steps):
            self.run_step(self._strategy.policy)
            tracker.record(self.master.records[-1].loss)
            if tracker.reached_threshold():
                break

        records = self.master.records
        losses = tuple(r.loss for r in records)
        total = records[-1].sim_time if records else 0.0
        return TrainingSummary(
            scheme=self._strategy.name,
            num_steps=len(records),
            total_sim_time=total,
            final_loss=losses[-1] if losses else float("nan"),
            reached_threshold=tracker.reached_threshold(),
            avg_step_time=(total / len(records)) if records else 0.0,
            avg_recovery_fraction=float(
                np.mean([r.recovery_fraction for r in records])
            ) if records else 0.0,
            loss_curve=losses,
            time_curve=tuple(r.sim_time for r in records),
        )
