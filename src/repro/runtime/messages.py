"""Typed messages for the actor runtime.

The paper's implementation runs on Ray: a master actor broadcasts
parameters, worker actors push coded gradients, and ``ray.wait()``
returns the ``w`` fastest.  This package reproduces that substrate as a
deterministic simulated actor system; these are the wire messages.

Payloads are plain ``numpy`` arrays; messages are frozen dataclasses so
the runtime can log and replay them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class Message:
    """Base class: every message knows its sender and send time."""

    sender: str
    send_time: float


@dataclass(frozen=True)
class ParameterBroadcast(Message):
    """Master → workers: parameters for step ``step``."""

    step: int = 0
    parameters: Optional[np.ndarray] = field(default=None, compare=False)


@dataclass(frozen=True)
class GradientUpload(Message):
    """Worker → master: one coded gradient for step ``step``."""

    step: int = 0
    worker: int = 0
    payload: Optional[np.ndarray] = field(default=None, compare=False)


@dataclass(frozen=True)
class StopTraining(Message):
    """Master → workers: training is over, shut down."""
