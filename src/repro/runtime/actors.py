"""Master and worker actors.

These mirror the paper's Ray implementation (Sec. VIII-A) one-to-one:

* each :class:`WorkerActor` owns its dataset partitions and per-
  partition seeded batch streams ("multiple copies of the same model"
  in the paper — here one shared model evaluated per partition, which
  is numerically identical), computes per-partition gradients at the
  broadcast parameters, *encodes* them with the strategy's code, and
  uploads one payload;
* the :class:`MasterActor` collects uploads until its wait policy is
  satisfied (the ``ray.wait(num_returns=w)`` call), decodes via the
  strategy, performs the unbiased update, and broadcasts new
  parameters.

Actors are pure state machines: the :mod:`repro.runtime.system`
scheduler owns all timing, so the same actors can later be driven by a
real transport.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..exceptions import TrainingError
from ..training.datasets import BatchStream
from ..training.models import Model
from ..training.optimizers import SGD
from ..training.strategies import TrainingStrategy
from ..types import StepRecord
from .messages import GradientUpload, ParameterBroadcast


class WorkerActor:
    """Owns a subset of partitions; computes and encodes gradients."""

    def __init__(
        self,
        worker_id: int,
        strategy: TrainingStrategy,
        model: Model,
        streams: Sequence[BatchStream],
    ):
        self._id = worker_id
        self._strategy = strategy
        self._model = model
        self._streams = streams
        self._partitions = strategy.placement.partitions_of(worker_id)

    @property
    def worker_id(self) -> int:
        return self._id

    @property
    def partitions(self) -> tuple:
        return self._partitions

    def update_strategy(self, strategy: TrainingStrategy) -> None:
        """Adopt a new strategy (e.g. after a placement migration)."""
        self._strategy = strategy
        self._partitions = strategy.placement.partitions_of(self._id)

    def handle_broadcast(
        self, msg: ParameterBroadcast, now: float
    ) -> GradientUpload:
        """Compute this step's coded gradient at the received params."""
        if msg.parameters is None:
            raise TrainingError("broadcast carried no parameters")
        self._model.set_parameters(msg.parameters)
        partition_gradients = {}
        for p in self._partitions:
            x, y = self._streams[p].batch(msg.step)
            _, grad = self._model.loss_and_gradient(x, y)
            partition_gradients[p] = grad
        payload = self._strategy.encode_worker_payload(
            self._id, partition_gradients
        )
        return GradientUpload(
            sender=f"worker-{self._id}",
            send_time=now,
            step=msg.step,
            worker=self._id,
            payload=payload,
        )


class MasterActor:
    """Collects uploads, decodes, updates, and re-broadcasts."""

    def __init__(
        self,
        strategy: TrainingStrategy,
        model: Model,
        optimizer: SGD,
        eval_features: Optional[np.ndarray] = None,
        eval_labels: Optional[np.ndarray] = None,
    ):
        self._strategy = strategy
        self._model = model
        self._optimizer = optimizer
        self._eval = (
            (eval_features, eval_labels)
            if eval_features is not None and eval_labels is not None
            else None
        )
        self._step = 0
        self._pending: Dict[int, GradientUpload] = {}
        self.records: List[StepRecord] = []

    @property
    def step(self) -> int:
        return self._step

    def broadcast(self, now: float) -> ParameterBroadcast:
        """Start a step: hand current parameters to every worker."""
        self._pending = {}
        return ParameterBroadcast(
            sender="master",
            send_time=now,
            step=self._step,
            parameters=self._model.get_parameters(),
        )

    def receive(self, msg: GradientUpload) -> None:
        """Accept one upload for the current step."""
        if msg.step != self._step:
            raise TrainingError(
                f"upload for step {msg.step} during step {self._step}"
            )
        self._pending[msg.worker] = msg

    def num_received(self) -> int:
        """Uploads accepted so far this step."""
        return len(self._pending)

    def update_strategy(self, strategy: TrainingStrategy) -> None:
        """Adopt a new strategy (e.g. after a placement migration)."""
        self._strategy = strategy

    def commit_record(self, record: StepRecord) -> None:
        """Append an engine-produced record and advance the step counter.

        The round engine owns decode/update when driving the actors via
        :class:`~repro.engine.backends.ActorBackend`; this keeps
        ``master.records`` and ``master.step`` meaning what they always
        have.  :meth:`complete_step` remains for driving the actor
        directly.
        """
        self.records.append(record)
        self._step += 1

    def restore_progress(self, step: int, records) -> None:
        """Reset the step counter and record log (checkpoint restore)."""
        self._step = step
        self._pending = {}
        self.records = list(records)

    def complete_step(
        self, accepted_workers: Sequence[int], now: float, wait_time: float
    ) -> None:
        """Decode the accepted uploads and apply the update."""
        payloads = {
            w: self._pending[w].payload for w in accepted_workers
        }
        missing = [w for w, p in payloads.items() if p is None]
        if missing:
            raise TrainingError(f"empty payloads from workers {missing}")
        grad_sum, recovered = self._strategy.decode(accepted_workers, payloads)
        if not recovered:
            raise TrainingError(f"step {self._step}: nothing recovered")
        mean_grad = grad_sum / len(recovered)
        params = self._optimizer.update(self._model.get_parameters(), mean_grad)
        self._model.set_parameters(params)

        if self._eval is not None:
            loss = self._model.loss(*self._eval)
        else:
            loss = float("nan")
        n = self._strategy.placement.num_partitions
        self.records.append(
            StepRecord(
                step=self._step,
                sim_time=now,
                wait_time=wait_time,
                num_available=len(accepted_workers),
                num_recovered=len(recovered),
                recovery_fraction=len(recovered) / n,
                loss=loss,
                grad_norm=float(np.linalg.norm(mean_grad)),
            )
        )
        self._step += 1
