"""Coding matrices for classic gradient coding (Tandon et al., ICML'17).

Classic GC encodes worker payloads as *general* linear combinations
``payload_i = Σ_p B[i, p] · g_p`` and decodes the exact full gradient
``Σ_p g_p`` from any ``n - s`` workers, ``s ≤ c - 1``.  The paper under
reproduction uses it as the synchronous baseline (Sec. III, Fig. 2) that
IS-GC relaxes.

Two constructions are provided:

* :func:`fractional_b_matrix` — FR placement; each worker simply sums
  its group's partitions (coefficients 1), decode picks one worker per
  group.
* :func:`cyclic_b_matrix` — CR placement; Tandon et al.'s Algorithm 2:
  draw a random ``(s × n)`` matrix ``H`` whose rows sum to zero, then
  fill each cyclic-support row of ``B`` so that ``H · B[i]ᵀ = 0``.  All
  rows then lie in ``null(H) ∋ 𝟙``, and any ``n - s`` of them span a
  space containing ``𝟙ᵀ`` almost surely.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import CodingError


def fractional_b_matrix(n: int, c: int) -> np.ndarray:
    """FR coding matrix: row ``i`` indicates worker ``i``'s group block."""
    if n <= 0 or not 1 <= c <= n or n % c != 0:
        raise CodingError(f"fractional GC needs c | n with 1 <= c <= n; got n={n}, c={c}")
    b = np.zeros((n, n))
    for worker in range(n):
        group = worker // c
        b[worker, group * c:(group + 1) * c] = 1.0
    return b


def cyclic_b_matrix(
    n: int, c: int, rng: np.random.Generator | None = None
) -> np.ndarray:
    """CR coding matrix via Tandon et al. Algorithm 2 (``s = c - 1``).

    Row ``i`` is supported on partitions ``{i, …, i+c-1 mod n}`` with
    ``B[i, i] = 1`` and the remaining ``c - 1`` coefficients solving
    ``H[:, rest] · x = -H[:, i]``.
    """
    if n <= 0 or not 1 <= c <= n:
        raise CodingError(f"cyclic GC needs 1 <= c <= n; got n={n}, c={c}")
    if c == 1:
        return np.eye(n)
    rng = rng if rng is not None else np.random.default_rng(0)
    s = c - 1
    h = rng.normal(size=(s, n))
    h[:, -1] = -h[:, :-1].sum(axis=1)  # each row of H sums to zero

    b = np.zeros((n, n))
    for i in range(n):
        support = [(i + r) % n for r in range(c)]
        rest = support[1:]
        try:
            x = np.linalg.solve(h[:, rest], -h[:, i])
        except np.linalg.LinAlgError as exc:  # measure-zero event
            raise CodingError(
                "singular sub-matrix in cyclic GC construction; "
                "retry with a different rng seed"
            ) from exc
        b[i, i] = 1.0
        b[i, rest] = x
    return b


def decode_vector(
    b_matrix: np.ndarray,
    surviving_rows: list[int] | tuple[int, ...],
    rcond: float = 1e-10,
    atol: float = 1e-6,
) -> np.ndarray:
    """Find ``a`` with ``aᵀ · B[surv] = 𝟙ᵀ`` (the classic GC decode step).

    Returns the coefficient vector ``a`` (one weight per surviving
    worker).  Raises :class:`CodingError` when the all-ones vector is
    not in the row span — i.e. when too many workers straggled.
    """
    rows = np.asarray(surviving_rows, dtype=int)
    if rows.size == 0:
        raise CodingError("cannot decode classic GC with zero survivors")
    sub = b_matrix[rows, :]
    ones = np.ones(b_matrix.shape[1])
    a, residuals, _rank, _sv = np.linalg.lstsq(sub.T, ones, rcond=rcond)
    achieved = sub.T @ a
    if not np.allclose(achieved, ones, atol=atol):
        raise CodingError(
            f"all-ones vector not in the span of {rows.size} surviving "
            "rows: classic GC cannot tolerate this straggler pattern"
        )
    return a


def supports_full_recovery(
    b_matrix: np.ndarray, surviving_rows: list[int] | tuple[int, ...]
) -> bool:
    """True iff classic GC can fully decode from ``surviving_rows``."""
    try:
        decode_vector(b_matrix, surviving_rows)
    except CodingError:
        return False
    return True
