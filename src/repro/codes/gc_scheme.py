"""End-to-end classic gradient coding (the paper's GC baseline).

Bundles a placement, its coefficient matrix ``B`` and exact decoding
into one object mirroring :class:`repro.core.coding.SummationCode`'s
interface, so the training layer can swap IS-GC and classic GC freely.

Classic GC recovers the *exact* full gradient from any ``n - s``
workers with ``s ≤ c - 1`` — and nothing at all from fewer (the
restriction IS-GC removes).
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping

import numpy as np

from ..core.cyclic import CyclicRepetition
from ..core.fractional import FractionalRepetition
from ..core.placement import Placement
from ..exceptions import CodingError
from .gc_matrices import (
    cyclic_b_matrix,
    decode_vector,
    fractional_b_matrix,
    supports_full_recovery,
)


class ClassicGradientCode:
    """Classic GC over an FR or CR placement."""

    def __init__(
        self,
        placement: Placement,
        rng: np.random.Generator | None = None,
    ):
        n = placement.num_workers
        c = placement.partitions_per_worker
        if isinstance(placement, FractionalRepetition):
            b = fractional_b_matrix(n, c)
        elif isinstance(placement, CyclicRepetition):
            b = cyclic_b_matrix(n, c, rng=rng)
        else:
            raise CodingError(
                "classic GC constructions exist for FR and CR placements "
                f"only, got {type(placement).__name__}"
            )
        # The coding support must match the placement: a worker can only
        # weight gradients it actually computes.
        for worker in range(n):
            support = set(np.flatnonzero(b[worker]).tolist())
            stored = set(placement.partitions_of(worker))
            if not support <= stored:
                raise CodingError(
                    f"B-matrix row {worker} uses partitions {support - stored} "
                    "the placement does not store there"
                )
        self._placement = placement
        self._b = b

    @property
    def placement(self) -> Placement:
        return self._placement

    @property
    def b_matrix(self) -> np.ndarray:
        """The ``n × n`` coding matrix (a defensive copy)."""
        return self._b.copy()

    @property
    def max_stragglers(self) -> int:
        """``s = c - 1``: the guaranteed straggler tolerance."""
        return self._placement.partitions_per_worker - 1

    @property
    def required_workers(self) -> int:
        """``n - s``: the number of workers the master must wait for."""
        return self._placement.num_workers - self.max_stragglers

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def encode(
        self, partition_gradients: Mapping[int, np.ndarray]
    ) -> Dict[int, np.ndarray]:
        """All workers' payloads ``payload_i = Σ_p B[i,p] · g_p``."""
        return {
            worker: self.encode_worker(worker, partition_gradients)
            for worker in range(self._placement.num_workers)
        }

    def encode_worker(
        self, worker: int, partition_gradients: Mapping[int, np.ndarray]
    ) -> np.ndarray:
        """One worker's weighted-combination payload."""
        parts = self._placement.partitions_of(worker)
        missing = [p for p in parts if p not in partition_gradients]
        if missing:
            raise CodingError(
                f"worker {worker} needs gradients for partitions {missing}"
            )
        payload = np.zeros_like(
            np.asarray(partition_gradients[parts[0]], dtype=float)
        )
        for p in parts:
            coeff = self._b[worker, p]
            if coeff != 0.0:
                payload = payload + coeff * np.asarray(
                    partition_gradients[p], dtype=float
                )
        return payload

    # ------------------------------------------------------------------
    # Master side
    # ------------------------------------------------------------------
    def can_decode(self, available_workers: Iterable[int]) -> bool:
        """Whether the exact full gradient is recoverable from ``W'``."""
        return supports_full_recovery(self._b, sorted(available_workers))

    def decode(
        self,
        available_workers: Iterable[int],
        worker_payloads: Mapping[int, np.ndarray],
    ) -> np.ndarray:
        """Exact full-gradient sum ``Σ_{p=0}^{n-1} g_p`` from survivors.

        Raises :class:`CodingError` when the survivor set is too small or
        otherwise undecodable (IS-GC's motivating failure mode).
        """
        rows = sorted(available_workers)
        missing = [w for w in rows if w not in worker_payloads]
        if missing:
            raise CodingError(f"no payloads for workers {missing}")
        a = decode_vector(self._b, rows)
        total = np.zeros_like(np.asarray(worker_payloads[rows[0]], dtype=float))
        for weight, worker in zip(a, rows):
            if weight != 0.0:
                total = total + weight * np.asarray(
                    worker_payloads[worker], dtype=float
                )
        return total
