"""Communication-efficient gradient coding (Ye & Abbe, ICML'18).

The related work the paper cites for shrinking *upload size*: instead
of sending the full ``d``-dimensional group gradient, each worker in an
FR group sends one Vandermonde-coded combination of ``k`` blocks of it
(``d/k`` elements).  Any ``k`` of the group's ``c`` workers suffice to
solve for the blocks and reassemble the group sum, so the scheme
tolerates ``c − k`` stragglers per group at a ``k×`` communication
saving — the tolerance/communication trade-off the original paper
analyses.

Two decoders are provided:

* :meth:`CommEfficientGC.decode` — the original synchronous semantics:
  every group must have ≥ k survivors or decoding fails outright;
* :meth:`CommEfficientGC.decode_partial` — an **ignore-straggler
  extension in the spirit of IS-GC** (this repo's contribution, not in
  either paper): recover whichever groups have ≥ k survivors and return
  the partial sum plus the recovered partition set, exactly mirroring
  the IS-GC decode contract.  This composes the paper's "arbitrary
  ignorance" idea with Ye-Abbe compression.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Tuple

import numpy as np

from ..core.fractional import FractionalRepetition
from ..exceptions import CodingError


class CommEfficientGC:
    """Vandermonde block coding over an FR placement."""

    def __init__(self, placement: FractionalRepetition, blocks: int):
        from ..core.scheme import PlacementScheme, as_placement

        if isinstance(placement, PlacementScheme):
            placement = as_placement(placement)
        if not isinstance(placement, FractionalRepetition):
            raise CodingError(
                "communication-efficient GC is defined over FR placements, "
                f"got {type(placement).__name__}"
            )
        c = placement.partitions_per_worker
        if not 1 <= blocks <= c:
            raise CodingError(
                f"need 1 <= k <= c; got k={blocks}, c={c}"
            )
        self._placement = placement
        self._k = blocks
        # Distinct real evaluation points keep every k×k Vandermonde
        # minor invertible; points spread in (0, 2] avoid huge powers.
        points = 2.0 * (np.arange(1, c + 1) / c)
        self._vandermonde = np.vander(points, blocks, increasing=True)

    # ------------------------------------------------------------------
    @property
    def placement(self) -> FractionalRepetition:
        return self._placement

    @property
    def blocks(self) -> int:
        """``k``: blocks per group gradient; upload shrinks by ``k×``."""
        return self._k

    @property
    def max_stragglers_per_group(self) -> int:
        return self._placement.partitions_per_worker - self._k

    def payload_elements(self, gradient_elements: int) -> int:
        """Upload size per worker for a ``gradient_elements``-dim model."""
        return -(-gradient_elements // self._k)  # ceil division

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _group_sum(
        self, group: int, partition_gradients: Mapping[int, np.ndarray]
    ) -> np.ndarray:
        c = self._placement.partitions_per_worker
        base = group * c
        missing = [p for p in range(base, base + c) if p not in partition_gradients]
        if missing:
            raise CodingError(f"missing gradients for partitions {missing}")
        total = np.asarray(partition_gradients[base], dtype=float).copy()
        for p in range(base + 1, base + c):
            total += partition_gradients[p]
        return total

    def _split_blocks(self, vec: np.ndarray) -> np.ndarray:
        """Zero-pad to a multiple of k and reshape to (k, d/k)."""
        block_len = self.payload_elements(vec.size)
        padded = np.zeros(block_len * self._k)
        padded[: vec.size] = vec
        return padded.reshape(self._k, block_len)

    def encode_worker(
        self, worker: int, partition_gradients: Mapping[int, np.ndarray]
    ) -> np.ndarray:
        """Worker's coded upload: ``Σ_b V[j, b] · block_b`` (length d/k)."""
        group = self._placement.group_of(worker)
        local = worker - group * self._placement.partitions_per_worker
        blocks = self._split_blocks(self._group_sum(group, partition_gradients))
        return self._vandermonde[local] @ blocks

    def encode(
        self, partition_gradients: Mapping[int, np.ndarray]
    ) -> Dict[int, np.ndarray]:
        """Coded uploads for every worker."""
        return {
            w: self.encode_worker(w, partition_gradients)
            for w in range(self._placement.num_workers)
        }

    # ------------------------------------------------------------------
    # Master side
    # ------------------------------------------------------------------
    def _recover_group(
        self,
        group: int,
        survivors: list[int],
        payloads: Mapping[int, np.ndarray],
        gradient_elements: int,
    ) -> np.ndarray:
        """Solve the k×k Vandermonde system for one group's blocks."""
        c = self._placement.partitions_per_worker
        chosen = survivors[: self._k]
        locals_ = [w - group * c for w in chosen]
        system = self._vandermonde[locals_, :]
        stacked = np.stack([np.asarray(payloads[w], dtype=float) for w in chosen])
        blocks = np.linalg.solve(system, stacked)
        return blocks.reshape(-1)[:gradient_elements]

    def decode(
        self,
        available_workers: Iterable[int],
        payloads: Mapping[int, np.ndarray],
        gradient_elements: int,
    ) -> np.ndarray:
        """Synchronous semantics: full gradient or :class:`CodingError`."""
        total, recovered = self.decode_partial(
            available_workers, payloads, gradient_elements
        )
        n = self._placement.num_partitions
        if len(recovered) != n:
            missing = sorted(set(range(n)) - recovered)
            raise CodingError(
                f"groups covering partitions {missing} have fewer than "
                f"k={self._k} survivors; full recovery impossible"
            )
        return total

    def decode_partial(
        self,
        available_workers: Iterable[int],
        payloads: Mapping[int, np.ndarray],
        gradient_elements: int,
    ) -> Tuple[np.ndarray, FrozenSet[int]]:
        """Ignore-straggler semantics: best partial sum + recovered set."""
        available = sorted(set(available_workers))
        if not available:
            raise CodingError("cannot decode with zero available workers")
        missing = [w for w in available if w not in payloads]
        if missing:
            raise CodingError(f"no payloads for workers {missing}")
        c = self._placement.partitions_per_worker
        total = np.zeros(gradient_elements)
        recovered: set[int] = set()
        for group in range(self._placement.num_groups):
            survivors = [w for w in available if w // c == group]
            if len(survivors) < self._k:
                continue
            total += self._recover_group(
                group, survivors, payloads, gradient_elements
            )
            recovered.update(range(group * c, (group + 1) * c))
        if not recovered:
            raise CodingError(
                f"no group has the k={self._k} survivors needed to "
                "recover anything"
            )
        return total, frozenset(recovered)
