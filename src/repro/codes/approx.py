"""Approximate gradient coding baselines (Sec. II related work).

The paper contrasts IS-GC with *approximate* gradient codes
([5], [24]-[26]) that trade exact recovery for tolerance of any
straggler count by estimating the full gradient with some ℓ2 error.
Two representative baselines are implemented over the same summation
payloads IS-GC uses, so the comparison isolates the *decoding policy*:

* :class:`LeastSquaresDecoder` — the ℓ2-optimal linear combiner: pick
  weights ``a`` minimising ``‖Bᵀ_avail · a − 𝟙‖₂`` (with ``B`` the 0/1
  placement matrix) and output ``ĝ ≈ Σ a_i · payload_i``.  This is the
  best any fixed linear decoder can do and generalises ErasureHead-
  style decoding.
* :class:`StochasticSumDecoder` — Bitar et al.'s stochastic gradient
  coding estimator: just add every received payload and rescale by the
  expected per-partition coverage ``c·w/n``; unbiased under uniform
  availability but with per-step ℓ2 error.

Both return *estimates of the full gradient sum* (not partial sums),
plus diagnostics (`coefficient deviation`) used by the comparison
bench.  IS-GC instead returns an exact partial sum — the paper's
argument is that this keeps the convergence analysis clean.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from ..core.placement import Placement
from ..exceptions import CodingError


def placement_matrix(placement: Placement) -> np.ndarray:
    """The 0/1 worker × partition incidence matrix of ``placement``."""
    n = placement.num_workers
    b = np.zeros((n, placement.num_partitions))
    for worker in range(n):
        for p in placement.partitions_of(worker):
            b[worker, p] = 1.0
    return b


@dataclass(frozen=True)
class ApproxDecodeResult:
    """An approximate full-gradient estimate plus quality diagnostics.

    ``coefficient_vector`` is the effective per-partition weight vector
    ``v = Bᵀ_avail · a``; exact recovery corresponds to ``v = 𝟙`` and
    ``deviation = ‖v − 𝟙‖₂`` quantifies the decoding error *independent
    of the gradients themselves* (the quantity approximate-GC papers
    bound).
    """

    estimate: np.ndarray
    coefficient_vector: np.ndarray

    @property
    def deviation(self) -> float:
        return float(np.linalg.norm(self.coefficient_vector - 1.0))

    @property
    def is_exact(self) -> bool:
        return bool(np.allclose(self.coefficient_vector, 1.0, atol=1e-8))


class LeastSquaresDecoder:
    """ℓ2-optimal approximate decoding of summation payloads."""

    def __init__(self, placement: Placement):
        self._placement = placement
        self._b = placement_matrix(placement)

    @property
    def placement(self) -> Placement:
        return self._placement

    def decode(
        self,
        available_workers: Iterable[int],
        payloads: Mapping[int, np.ndarray],
    ) -> ApproxDecodeResult:
        """ℓ2-optimal estimate of the full gradient from ``W'``."""
        rows = sorted(set(available_workers))
        if not rows:
            raise CodingError("cannot decode with zero available workers")
        missing = [w for w in rows if w not in payloads]
        if missing:
            raise CodingError(f"no payloads for workers {missing}")
        sub = self._b[rows, :]
        ones = np.ones(self._b.shape[1])
        weights, *_ = np.linalg.lstsq(sub.T, ones, rcond=None)
        estimate = np.zeros_like(np.asarray(payloads[rows[0]], dtype=float))
        for weight, worker in zip(weights, rows):
            estimate = estimate + weight * np.asarray(
                payloads[worker], dtype=float
            )
        return ApproxDecodeResult(
            estimate=estimate, coefficient_vector=sub.T @ weights
        )


class StochasticSumDecoder:
    """Stochastic-gradient-coding style rescaled sum (Bitar et al.).

    Adds every received payload; partition ``p`` is then counted once
    per received replica, so dividing by the *expected* replica count
    ``c·w/n`` yields an unbiased estimate of ``Σ_p g_p`` under uniform
    worker availability.
    """

    def __init__(self, placement: Placement):
        self._placement = placement
        self._b = placement_matrix(placement)

    @property
    def placement(self) -> Placement:
        return self._placement

    def decode(
        self,
        available_workers: Iterable[int],
        payloads: Mapping[int, np.ndarray],
    ) -> ApproxDecodeResult:
        """Rescaled-sum estimate of the full gradient from ``W'``."""
        rows = sorted(set(available_workers))
        if not rows:
            raise CodingError("cannot decode with zero available workers")
        missing = [w for w in rows if w not in payloads]
        if missing:
            raise CodingError(f"no payloads for workers {missing}")
        n = self._placement.num_workers
        c = self._placement.partitions_per_worker
        scale = n / (c * len(rows))
        total = np.zeros_like(np.asarray(payloads[rows[0]], dtype=float))
        for worker in rows:
            total = total + np.asarray(payloads[worker], dtype=float)
        coefficients = scale * self._b[rows, :].sum(axis=0)
        return ApproxDecodeResult(
            estimate=scale * total, coefficient_vector=coefficients
        )


def l2_gradient_error(
    result: ApproxDecodeResult,
    partition_gradients: Mapping[int, np.ndarray],
) -> float:
    """``‖ĝ − Σ_p g_p‖₂`` for a decoded estimate on known gradients."""
    full = sum(
        np.asarray(g, dtype=float) for g in partition_gradients.values()
    )
    return float(np.linalg.norm(result.estimate - full))
