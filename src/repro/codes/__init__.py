"""Classic gradient coding (Tandon et al. 2017) — the GC baseline."""

from .gc_matrices import (
    cyclic_b_matrix,
    decode_vector,
    fractional_b_matrix,
    supports_full_recovery,
)
from .gc_scheme import ClassicGradientCode
from .comm_efficient import CommEfficientGC
from .approx import (
    ApproxDecodeResult,
    LeastSquaresDecoder,
    StochasticSumDecoder,
    l2_gradient_error,
    placement_matrix,
)

__all__ = [
    "fractional_b_matrix",
    "cyclic_b_matrix",
    "decode_vector",
    "supports_full_recovery",
    "ClassicGradientCode",
    "ApproxDecodeResult",
    "LeastSquaresDecoder",
    "StochasticSumDecoder",
    "l2_gradient_error",
    "placement_matrix",
    "CommEfficientGC",
]
