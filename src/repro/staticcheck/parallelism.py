"""Parallelism rules (PAR0xx).

``repro.parallel`` makes process-pool sweeps bit-for-bit reproducible
by spawning per-point ``np.random.SeedSequence`` children *in the
parent* (see ``docs/parallelism.md``).  The classic way to break that
guarantee is arithmetic seed derivation at the pool boundary::

    pool.submit(run_cell, seed + i)          # PAR001
    pool.map(run_cell, [seed * i for i in ids])  # PAR001

Integer-offset seeds are statistically correlated across workers
(neighbouring ``SeedSequence(seed + i)`` streams share entropy-pool
structure) and, worse, invite drift between serial and parallel
enumeration order.  The sanctioned pattern keeps derivation in the
parent via ``SeedSequence.spawn``::

    seeds = root_seed_sequence.spawn(len(tasks))   # ok
    pool.submit(run_cell, seeds[i])                # ok

* ``PAR001`` — in a module that uses ``ProcessPoolExecutor``, a
  ``multiprocessing`` ``Pool`` or a ``fork`` context, an argument of a
  pool dispatch call (``submit``/``map``/``starmap``/``apply_async``
  and friends) derives a seed arithmetically from a seed-named
  variable instead of shipping a spawned ``SeedSequence``.

The check is a boundary heuristic: it inspects expressions written
directly inside dispatch calls (including comprehensions building the
iterable in place).  Seeds wrapped in ``SeedSequence(...)`` or produced
by ``.spawn(...)`` are not flagged.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List

from .engine import PythonContext, Rule, python_rule, terminal_name
from .findings import Finding

#: Constructors that mark a module as pool-using.
_POOL_CONSTRUCTORS = frozenset({"ProcessPoolExecutor", "Pool"})

#: Methods that ship work (and its arguments) across the pool boundary.
_DISPATCH_METHODS = frozenset({
    "submit", "map", "map_async", "starmap", "starmap_async",
    "apply", "apply_async", "imap", "imap_unordered",
})

#: Call targets that make a seed expression safe: derivation stays in
#: SeedSequence space, so child streams are independent by construction.
_SAFE_WRAPPERS = frozenset({"SeedSequence", "spawn", "spawn_point_seeds"})


def _calls(tree: ast.AST) -> Iterable[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


def _uses_process_pool(tree: ast.AST) -> bool:
    """Does this module construct a process pool or a fork context?"""
    for call in _calls(tree):
        name = terminal_name(call.func)
        if name in _POOL_CONSTRUCTORS:
            return True
        if name in ("get_context", "set_start_method"):
            for arg in list(call.args) + [kw.value for kw in call.keywords]:
                if isinstance(arg, ast.Constant) and arg.value in (
                    "fork", "forkserver", "spawn"
                ):
                    return True
    return False


def _mentions_seed(node: ast.AST) -> bool:
    """Does any identifier under ``node`` look seed-named?"""
    for sub in ast.walk(node):
        name = None
        if isinstance(sub, ast.Name):
            name = sub.id
        elif isinstance(sub, ast.Attribute):
            name = sub.attr
        if name is not None and "seed" in name.lower():
            return True
    return False


def _arithmetic_seeds(node: ast.AST) -> Iterator[ast.AST]:
    """Yield seed-arithmetic expressions under ``node``.

    Descends the expression tree but stops at the safe wrappers — a
    ``SeedSequence(seed + i)`` keeps derivation in SeedSequence space
    and is exactly the sanctioned fix.
    """
    if isinstance(node, ast.Call):
        if (terminal_name(node.func) or "") in _SAFE_WRAPPERS:
            return
        for child in list(node.args) + [kw.value for kw in node.keywords]:
            yield from _arithmetic_seeds(child)
        return
    if isinstance(node, ast.BinOp) and (
        _mentions_seed(node.left) or _mentions_seed(node.right)
    ):
        yield node
        return
    for child in ast.iter_child_nodes(node):
        yield from _arithmetic_seeds(child)


@python_rule(
    "PAR001",
    name="pool-int-seed",
    description=(
        "Arithmetic per-task seeds (seed + i) shipped across a process-"
        "pool boundary produce correlated streams and break serial/"
        "parallel equivalence; spawn SeedSequence children in the "
        "parent instead (np.random.SeedSequence(seed).spawn(n))."
    ),
)
def check_pool_int_seed(ctx: PythonContext, rule: Rule) -> List[Finding]:
    """Flag seed arithmetic inside pool dispatch-call arguments."""
    if not _uses_process_pool(ctx.tree):
        return []
    findings: List[Finding] = []
    for call in _calls(ctx.tree):
        func = call.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in _DISPATCH_METHODS
        ):
            continue
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            for expr in _arithmetic_seeds(arg):
                findings.append(ctx.finding(
                    rule, expr,
                    f"seed arithmetic ({ast.unparse(expr)}) crosses the "
                    f".{func.attr}() pool boundary; derive per-task "
                    "seeds with SeedSequence.spawn in the parent",
                ))
    return findings
