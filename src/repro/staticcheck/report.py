"""Reporters for ``repro check``: text, JSON, and the rule catalogue.

The JSON document is versioned and stable — CI annotators and editor
integrations parse it::

    {
      "version": 1,
      "checked_files": 188,
      "findings": [{"path", "line", "col", "rule", "severity",
                    "message"}, ...],
      "summary": {"total": 2, "by_rule": {"DET001": 2},
                  "by_severity": {"error": 2}}
    }
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Any, Dict, Sequence

from .engine import RULE_REGISTRY, CheckResult
from .findings import Finding

#: Bump when the JSON structure changes incompatibly.
JSON_SCHEMA_VERSION = 1


def render_text(result: CheckResult) -> str:
    """Human-readable report, one line per finding plus a summary."""
    lines = [f.format() for f in result.findings]
    if result.findings:
        by_rule = Counter(f.rule for f in result.findings)
        breakdown = ", ".join(
            f"{rule} x{count}" for rule, count in sorted(by_rule.items())
        )
        lines.append(
            f"\n{len(result.findings)} finding"
            f"{'s' if len(result.findings) != 1 else ''} "
            f"({breakdown}) in {result.num_files} files"
        )
    else:
        lines.append(f"{result.num_files} files checked, no findings")
    return "\n".join(lines)


def to_json_dict(result: CheckResult) -> Dict[str, Any]:
    """The JSON-ready mapping (see the module docstring for the schema)."""
    return {
        "version": JSON_SCHEMA_VERSION,
        "checked_files": result.num_files,
        "findings": [f.to_dict() for f in result.findings],
        "summary": {
            "total": len(result.findings),
            "by_rule": dict(
                sorted(Counter(f.rule for f in result.findings).items())
            ),
            "by_severity": dict(
                sorted(
                    Counter(
                        f.severity.value for f in result.findings
                    ).items()
                )
            ),
        },
        "timing": {
            "total_seconds": round(result.total_seconds, 6),
            "files": {
                path: round(seconds, 6)
                for path, seconds in sorted(result.file_seconds.items())
            },
            "rules": {
                rule: round(seconds, 6)
                for rule, seconds in sorted(result.rule_seconds.items())
            },
        },
        "cache": {
            "hits": result.cache_hits,
            "misses": result.cache_misses,
        },
        "project_modules": result.project_modules,
    }


def render_json(result: CheckResult) -> str:
    """The JSON report as a string (``repro check --format json``)."""
    return json.dumps(to_json_dict(result), indent=2, sort_keys=False)


def render_stats(result: CheckResult, top: int = 10) -> str:
    """The ``--stats`` block: slowest rules and files, cache traffic."""
    lines = [
        f"total: {result.total_seconds:.3f}s over "
        f"{result.num_files} files"
        + (
            f", {result.project_modules} indexed modules"
            if result.project_modules else ""
        )
    ]
    if result.cache_hits or result.cache_misses:
        lines.append(
            f"cache: {result.cache_hits} hits, "
            f"{result.cache_misses} misses"
        )
    slowest_rules = sorted(
        result.rule_seconds.items(), key=lambda kv: -kv[1]
    )[:top]
    if slowest_rules:
        lines.append("slowest rules:")
        lines.extend(
            f"  {rule:<10} {seconds * 1000:8.1f} ms"
            for rule, seconds in slowest_rules
        )
    slowest_files = sorted(
        result.file_seconds.items(), key=lambda kv: -kv[1]
    )[:top]
    if slowest_files:
        lines.append("slowest files:")
        lines.extend(
            f"  {seconds * 1000:8.1f} ms  {path}"
            for path, seconds in slowest_files
        )
    return "\n".join(lines)


def render_catalogue() -> str:
    """The rule catalogue (``repro check --list-rules``)."""
    lines = []
    for rule in sorted(RULE_REGISTRY.values(), key=lambda r: r.id):
        scope = ", ".join(rule.scope) if rule.scope else "all files"
        lines.append(f"{rule.id}  {rule.name} [{rule.severity.value}]")
        lines.append(f"    {rule.description}")
        lines.append(f"    scope: {scope}")
    return "\n".join(lines)


def catalogue_json() -> Dict[str, Any]:
    """The rule catalogue as data
    (``repro check --list-rules --format json``)."""
    return {
        "version": JSON_SCHEMA_VERSION,
        "rules": [
            {
                "id": rule.id,
                "name": rule.name,
                "severity": rule.severity.value,
                "kind": rule.kind,
                "scope": list(rule.scope),
                "exclude": list(rule.exclude),
                "description": rule.description,
            }
            for rule in sorted(
                RULE_REGISTRY.values(), key=lambda r: r.id
            )
        ],
    }


def catalogue_markdown() -> str:
    """The rule catalogue as a Markdown table — the generator behind
    the table in ``docs/static_analysis.md`` (regenerate with
    ``repro check --list-rules --format markdown``)."""
    lines = [
        "| Rule | Name | Severity | Kind | Description |",
        "| --- | --- | --- | --- | --- |",
    ]
    for rule in sorted(RULE_REGISTRY.values(), key=lambda r: r.id):
        description = " ".join(rule.description.split())
        lines.append(
            f"| `{rule.id}` | {rule.name} | {rule.severity.value} "
            f"| {rule.kind} | {description} |"
        )
    return "\n".join(lines)


def findings_only(findings: Sequence[Finding]) -> Dict[str, Any]:
    """Tiny helper for tests: summarise findings by rule id."""
    return dict(Counter(f.rule for f in findings))
