"""Reporters for ``repro check``: text, JSON, and the rule catalogue.

The JSON document is versioned and stable — CI annotators and editor
integrations parse it::

    {
      "version": 1,
      "checked_files": 188,
      "findings": [{"path", "line", "col", "rule", "severity",
                    "message"}, ...],
      "summary": {"total": 2, "by_rule": {"DET001": 2},
                  "by_severity": {"error": 2}}
    }
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Any, Dict, Sequence

from .engine import RULE_REGISTRY, CheckResult
from .findings import Finding

#: Bump when the JSON structure changes incompatibly.
JSON_SCHEMA_VERSION = 1


def render_text(result: CheckResult) -> str:
    """Human-readable report, one line per finding plus a summary."""
    lines = [f.format() for f in result.findings]
    if result.findings:
        by_rule = Counter(f.rule for f in result.findings)
        breakdown = ", ".join(
            f"{rule} x{count}" for rule, count in sorted(by_rule.items())
        )
        lines.append(
            f"\n{len(result.findings)} finding"
            f"{'s' if len(result.findings) != 1 else ''} "
            f"({breakdown}) in {result.num_files} files"
        )
    else:
        lines.append(f"{result.num_files} files checked, no findings")
    return "\n".join(lines)


def to_json_dict(result: CheckResult) -> Dict[str, Any]:
    """The JSON-ready mapping (see the module docstring for the schema)."""
    return {
        "version": JSON_SCHEMA_VERSION,
        "checked_files": result.num_files,
        "findings": [f.to_dict() for f in result.findings],
        "summary": {
            "total": len(result.findings),
            "by_rule": dict(
                sorted(Counter(f.rule for f in result.findings).items())
            ),
            "by_severity": dict(
                sorted(
                    Counter(
                        f.severity.value for f in result.findings
                    ).items()
                )
            ),
        },
    }


def render_json(result: CheckResult) -> str:
    """The JSON report as a string (``repro check --format json``)."""
    return json.dumps(to_json_dict(result), indent=2, sort_keys=False)


def render_catalogue() -> str:
    """The rule catalogue (``repro check --list-rules``)."""
    lines = []
    for rule in sorted(RULE_REGISTRY.values(), key=lambda r: r.id):
        scope = ", ".join(rule.scope) if rule.scope else "all files"
        lines.append(f"{rule.id}  {rule.name} [{rule.severity.value}]")
        lines.append(f"    {rule.description}")
        lines.append(f"    scope: {scope}")
    return "\n".join(lines)


def findings_only(findings: Sequence[Finding]) -> Dict[str, Any]:
    """Tiny helper for tests: summarise findings by rule id."""
    return dict(Counter(f.rule for f in findings))
