"""Determinism rules (DET0xx).

The repo's reproducibility story — golden bit-for-bit trajectories,
trace replays, paired scheme comparisons — rests on one discipline:
**all randomness flows through an injected, seeded
``np.random.Generator``, and all time is simulated**.  One stray
``np.random.randn`` or ``time.time()`` in the engine silently breaks
every Fig. 11–13 result.  These rules make the discipline checkable:

* ``DET001`` — module-level RNG calls (``np.random.randn``,
  ``random.shuffle``, …) anywhere in the tree;
* ``DET002`` — wall-clock reads (``time.time``, ``datetime.now``, …)
  inside the deterministic core packages;
* ``DET003`` — ``default_rng()`` with no seed anywhere in the
  library, docs and examples (entropy-seeded generators cannot be
  replayed; ``repro check --fix`` seeds doc/example snippets);
* ``DET004`` — ordering hazards (``list(set(...))``, ``os.listdir``,
  unsorted ``glob``/``iterdir``) inside the core packages.

"Core packages" are ``repro/engine``, ``repro/simulation``,
``repro/codes`` and ``repro/core`` — the code on the replay path.
Deliberate exceptions (e.g. an explicitly documented entropy-seeded
fallback) carry ``# repro: noqa[DET003]`` with a justification.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from .engine import PythonContext, Rule, dotted_name, python_rule
from .findings import Finding

#: Packages on the deterministic replay path.
CORE_SCOPE = (
    "repro/engine/",
    "repro/simulation/",
    "repro/codes/",
    "repro/core/",
)

#: Everywhere an unseeded ``default_rng()`` can break replay: the whole
#: library plus the runnable docs/examples (DET003 only — the other
#: determinism rules stay on the core replay path).
SEEDED_RNG_SCOPE = ("repro/", "docs/", "examples/", "README.md")

#: ``np.random.<fn>`` module-level calls that consume global RNG state.
BANNED_NP_RANDOM = frozenset({
    "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "seed", "normal",
    "uniform", "standard_normal", "poisson", "exponential", "binomial",
    "beta", "gamma", "get_state", "set_state", "RandomState",
})

#: stdlib ``random.<fn>`` equivalents.
BANNED_STDLIB_RANDOM = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "seed", "betavariate", "expovariate",
    "normalvariate", "triangular", "vonmisesvariate",
})

#: Wall-clock reads; the simulator clock is the only time source.
WALL_CLOCK = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "date.today", "datetime.date.today",
})


def _normalize(dotted: str) -> str:
    """Collapse the common numpy aliases to the canonical ``np.``."""
    if dotted.startswith("numpy."):
        return "np." + dotted[len("numpy."):]
    return dotted


def _calls(tree: ast.AST) -> Iterable[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


@python_rule(
    "DET001",
    name="unseeded-module-rng",
    description=(
        "Module-level RNG calls (np.random.*, random.*) consume hidden "
        "global state; inject a seeded np.random.default_rng(seed) "
        "instead so runs replay bit-for-bit."
    ),
)
def check_module_rng(ctx: PythonContext, rule: Rule) -> List[Finding]:
    """Flag ``np.random.<fn>(...)`` and stdlib ``random.<fn>(...)``."""
    findings = []
    imports_stdlib_random = any(
        isinstance(node, ast.Import)
        and any(alias.name == "random" for alias in node.names)
        for node in ast.walk(ctx.tree)
    )
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ImportFrom) and node.module in (
            "numpy.random", "random"
        ):
            banned = (
                BANNED_NP_RANDOM
                if node.module == "numpy.random"
                else BANNED_STDLIB_RANDOM
            )
            for alias in node.names:
                if alias.name in banned:
                    findings.append(ctx.finding(
                        rule, node,
                        f"`from {node.module} import {alias.name}` pulls in "
                        "global-state randomness; use "
                        "np.random.default_rng(seed)",
                    ))
    for call in _calls(ctx.tree):
        dotted = dotted_name(call.func)
        if dotted is None:
            continue
        dotted = _normalize(dotted)
        if dotted.startswith("np.random."):
            attr = dotted[len("np.random."):]
            if attr in BANNED_NP_RANDOM:
                findings.append(ctx.finding(
                    rule, call,
                    f"np.random.{attr} uses the global numpy RNG; use a "
                    "seeded np.random.default_rng(seed) generator",
                ))
        elif imports_stdlib_random and dotted.startswith("random."):
            attr = dotted[len("random."):]
            if attr in BANNED_STDLIB_RANDOM:
                findings.append(ctx.finding(
                    rule, call,
                    f"random.{attr} uses hidden global state; use a seeded "
                    "np.random.default_rng(seed) generator",
                ))
    return findings


@python_rule(
    "DET002",
    name="wall-clock-read",
    description=(
        "The deterministic core must never read the wall clock; all "
        "time is simulated (ClusterSimulator.clock and friends)."
    ),
    scope=CORE_SCOPE,
)
def check_wall_clock(ctx: PythonContext, rule: Rule) -> List[Finding]:
    """Flag ``time.time()``, ``datetime.now()`` etc. in core packages."""
    findings = []
    for call in _calls(ctx.tree):
        dotted = dotted_name(call.func)
        if dotted in WALL_CLOCK:
            findings.append(ctx.finding(
                rule, call,
                f"{dotted}() reads the wall clock; simulated components "
                "must take time from the simulator clock",
            ))
    return findings


@python_rule(
    "DET003",
    name="unseeded-default-rng",
    description=(
        "default_rng() without a seed draws OS entropy, so the run can "
        "never be replayed; pass a seed or accept an injected Generator."
    ),
    scope=SEEDED_RNG_SCOPE,
)
def check_unseeded_default_rng(
    ctx: PythonContext, rule: Rule
) -> List[Finding]:
    """Flag zero-argument ``default_rng()`` calls."""
    findings = []
    for call in _calls(ctx.tree):
        dotted = dotted_name(call.func)
        if dotted is None:
            continue
        if _normalize(dotted) in ("np.random.default_rng", "default_rng"):
            if not call.args and not call.keywords:
                findings.append(ctx.finding(
                    rule, call,
                    "default_rng() with no seed is entropy-seeded and "
                    "unreplayable; pass an explicit seed or Generator",
                ))
    return findings


_LISTDIR_CALLS = frozenset({"os.listdir", "glob.glob", "glob.iglob"})
_UNORDERED_PATH_METHODS = frozenset({"iterdir", "glob", "rglob"})


@python_rule(
    "DET004",
    name="ordering-hazard",
    description=(
        "Set/filesystem iteration order is not deterministic across "
        "runs and platforms; wrap in sorted() in the core packages."
    ),
    scope=CORE_SCOPE,
)
def check_ordering_hazards(ctx: PythonContext, rule: Rule) -> List[Finding]:
    """Flag order-dependent constructs that feed replayable state."""
    findings = []
    sorted_args = set()
    for call in _calls(ctx.tree):
        if isinstance(call.func, ast.Name) and call.func.id == "sorted":
            sorted_args.update(id(arg) for arg in call.args)
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Name)
                and func.id in ("list", "tuple")
                and len(node.args) == 1
                and isinstance(node.args[0], ast.Call)
                and isinstance(node.args[0].func, ast.Name)
                and node.args[0].func.id == "set"
            ):
                findings.append(ctx.finding(
                    rule, node,
                    f"{func.id}(set(...)) materialises hash order; use "
                    "sorted(set(...))",
                ))
            dotted = dotted_name(func)
            if id(node) in sorted_args:
                continue
            if dotted in _LISTDIR_CALLS:
                findings.append(ctx.finding(
                    rule, node,
                    f"{dotted}() returns files in filesystem order; wrap "
                    "in sorted()",
                ))
            elif (
                isinstance(func, ast.Attribute)
                and func.attr in _UNORDERED_PATH_METHODS
            ):
                findings.append(ctx.finding(
                    rule, node,
                    f".{func.attr}() yields entries in filesystem order; "
                    "wrap in sorted()",
                ))
        elif isinstance(node, ast.For):
            it = node.iter
            if (
                isinstance(it, ast.Call)
                and isinstance(it.func, ast.Name)
                and it.func.id == "set"
            ):
                findings.append(ctx.finding(
                    rule, it,
                    "iterating a set() directly follows hash order; "
                    "iterate sorted(set(...))",
                ))
    return findings
