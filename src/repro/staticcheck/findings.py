"""Finding and severity types shared by every static-analysis rule.

A :class:`Finding` is one concrete violation at one source location;
the rule engine collects them across files, applies ``# repro:
noqa[RULE]`` suppressions, and hands the survivors to the reporters in
:mod:`repro.staticcheck.report`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict


class Severity(str, enum.Enum):
    """How seriously a finding should be taken.

    ``ERROR`` findings are invariant violations (the check gate fails);
    ``WARNING`` findings are strong hints that deserve a look but may
    have sanctioned exceptions.  Both fail ``repro check`` — the split
    exists so reports and downstream tooling can prioritise.
    """

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one location.

    Field order is the sort order: findings render grouped by file,
    then by position, then by rule id.
    """

    path: str
    line: int
    col: int
    rule: str
    severity: Severity
    message: str

    def format(self) -> str:
        """Render as the conventional ``path:line:col: RULE message``."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.severity.value}] {self.message}"
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready mapping (the schema ``repro check --format json`` emits)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Finding":
        """Inverse of :meth:`to_dict` (used by the incremental cache)."""
        return cls(
            path=data["path"],
            line=data["line"],
            col=data["col"],
            rule=data["rule"],
            severity=Severity(data["severity"]),
            message=data["message"],
        )
