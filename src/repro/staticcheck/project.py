"""The whole-project analysis substrate behind the FLOW/XREG/XIMP rules.

Per-file AST rules (`repro.staticcheck.determinism` and friends) see one
parsed source unit at a time, so they cannot follow a
``numpy.random.Generator`` through a call, notice a registry family with
no golden fingerprint, or see an import cycle.  This module builds the
missing context — **purely syntactically**, never importing the code it
indexes:

* :class:`ModuleInfo` — one parsed module: resolved imports (absolute
  and relative, aliased and ``from``-style), the top-level symbol
  table, class bases/methods, ``@register_*`` registrations, and the
  content hash that keys the incremental cache;
* :class:`ProjectIndex` — the module graph: name → :class:`ModuleInfo`,
  the module-level import graph restricted to indexed modules, name
  resolution (``resolve``), class-hierarchy walks (``class_defines``),
  and transitive import closures (the cache-invalidation frontier);
* :class:`ProjectContext` — what a ``@project_rule`` check receives:
  the index, the repository root (for docs/golden lookups), and the
  per-module dataflow summaries from :mod:`repro.staticcheck.dataflow`.

Indexes are built either from files on disk (:meth:`ProjectIndex.
from_files` — module names derived by walking ``__init__.py`` chains)
or from in-memory sources (:meth:`ProjectIndex.from_sources` — the
fixture entry point used by the tests).
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

#: registration decorators recognised by the index, decorator name →
#: registry kind.  ``@register_placement`` decorates classes; the
#: environment decorators decorate factory functions.
REGISTRATION_DECORATORS = {
    "register_placement": "placement",
    "register_scheme": "scheme",
    "register_backend": "backend",
    "register_delay": "delay",
    "register_failure": "failure",
    "register_compute": "compute",
    "register_network": "network",
    "register_contention": "contention",
}


@dataclass(frozen=True)
class Registration:
    """One ``@register_*`` use: a named family entering a registry."""

    kind: str
    name: str
    aliases: Tuple[str, ...]
    symbol: str
    lineno: int
    #: True when the decorated factory's body is trivially ``return
    #: None`` — a registered "absence" (e.g. the ``none`` contention
    #: model) that has nothing to fingerprint or catalogue.
    returns_none: bool = False


@dataclass
class ClassInfo:
    """Bases and methods of one class, for index-local MRO walks."""

    qualname: str
    bases: Tuple[str, ...]  # resolved candidates (dotted) or bare names
    methods: Set[str] = field(default_factory=set)
    lineno: int = 1


@dataclass
class ModuleInfo:
    """Everything the project layer knows about one parsed module."""

    name: str
    path: str
    scope_path: str
    source: str
    tree: Optional[ast.Module]
    #: local alias → fully dotted target ("pkg.mod" or "pkg.mod.symbol").
    aliases: Dict[str, str] = field(default_factory=dict)
    #: modules imported at module level (dotted names, as written).
    module_imports: Set[str] = field(default_factory=set)
    #: modules imported anywhere (incl. inside functions).
    all_imports: Set[str] = field(default_factory=set)
    #: top-level bound names (defs, classes, imports, assignments).
    symbols: Set[str] = field(default_factory=set)
    #: names listed in a literal ``__all__``.
    exported: Set[str] = field(default_factory=set)
    has_wildcard_import: bool = False
    has_module_getattr: bool = False
    registrations: List[Registration] = field(default_factory=list)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    content_hash: str = ""

    def to_shard(self) -> Dict[str, Any]:
        """The JSON-serialisable index shard the incremental cache
        stores (everything except the AST and source text)."""
        return {
            "name": self.name,
            "path": self.path,
            "scope_path": self.scope_path,
            "aliases": dict(self.aliases),
            "module_imports": sorted(self.module_imports),
            "all_imports": sorted(self.all_imports),
            "symbols": sorted(self.symbols),
            "exported": sorted(self.exported),
            "has_wildcard_import": self.has_wildcard_import,
            "has_module_getattr": self.has_module_getattr,
            "registrations": [
                {
                    "kind": r.kind,
                    "name": r.name,
                    "aliases": list(r.aliases),
                    "symbol": r.symbol,
                    "lineno": r.lineno,
                    "returns_none": r.returns_none,
                }
                for r in self.registrations
            ],
            "classes": {
                c.qualname: {
                    "bases": list(c.bases),
                    "methods": sorted(c.methods),
                    "lineno": c.lineno,
                }
                for c in self.classes.values()
            },
            "content_hash": self.content_hash,
        }

    @classmethod
    def from_shard(cls, shard: Mapping[str, Any]) -> "ModuleInfo":
        """Rebuild (AST-less) module info from a cached shard."""
        info = cls(
            name=shard["name"],
            path=shard["path"],
            scope_path=shard["scope_path"],
            source="",
            tree=None,
            aliases=dict(shard["aliases"]),
            module_imports=set(shard["module_imports"]),
            all_imports=set(shard["all_imports"]),
            symbols=set(shard["symbols"]),
            exported=set(shard["exported"]),
            has_wildcard_import=shard["has_wildcard_import"],
            has_module_getattr=shard["has_module_getattr"],
            content_hash=shard["content_hash"],
        )
        info.registrations = [
            Registration(
                kind=r["kind"],
                name=r["name"],
                aliases=tuple(r["aliases"]),
                symbol=r["symbol"],
                lineno=r["lineno"],
                returns_none=r.get("returns_none", False),
            )
            for r in shard["registrations"]
        ]
        info.classes = {
            qual: ClassInfo(
                qualname=qual,
                bases=tuple(meta["bases"]),
                methods=set(meta["methods"]),
                lineno=meta["lineno"],
            )
            for qual, meta in shard["classes"].items()
        }
        return info


def content_hash(text: str) -> str:
    """The content digest keying the incremental cache."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def module_name_for(path: Path) -> Tuple[Path, str]:
    """``(package_root, dotted_name)`` for a ``.py`` file on disk.

    Walks parent directories while ``__init__.py`` chains hold, so
    ``src/repro/core/batch.py`` → ``(src, "repro.core.batch")``.  A file
    outside any package is its own module named after its stem.
    """
    path = path.resolve()
    parts = [path.stem] if path.name != "__init__.py" else []
    current = path.parent
    while (current / "__init__.py").exists():
        parts.insert(0, current.name)
        parent = current.parent
        if parent == current:  # filesystem root; cannot recurse further
            break
        current = parent
    if not parts:
        parts = [path.stem]
    return current, ".".join(parts)


# ----------------------------------------------------------------------
# Module parsing


def _relative_base(module_name: str, level: int, is_package: bool) -> str:
    """The dotted package a ``from ...x import y`` resolves against."""
    parts = module_name.split(".")
    if not is_package:
        parts = parts[:-1]
    drop = level - 1
    if drop >= len(parts):
        return ""
    return ".".join(parts[: len(parts) - drop]) if drop else ".".join(parts)


def _decorator_registration(
    dec: ast.expr, symbol: str, lineno: int, returns_none: bool
) -> Optional[Registration]:
    if not isinstance(dec, ast.Call):
        return None
    func = dec.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else None
    )
    kind = REGISTRATION_DECORATORS.get(name or "")
    if kind is None:
        return None
    family = None
    if dec.args and isinstance(dec.args[0], ast.Constant):
        if isinstance(dec.args[0].value, str):
            family = dec.args[0].value
    if family is None:
        return None
    aliases: List[str] = []
    for kw in dec.keywords:
        if kw.arg == "aliases" and isinstance(
            kw.value, (ast.Tuple, ast.List)
        ):
            aliases = [
                elt.value
                for elt in kw.value.elts
                if isinstance(elt, ast.Constant)
                and isinstance(elt.value, str)
            ]
    return Registration(
        kind=kind,
        name=family,
        aliases=tuple(aliases),
        symbol=symbol,
        lineno=lineno,
        returns_none=returns_none,
    )


def _trivially_returns_none(node: ast.AST) -> bool:
    """True for factory bodies that only ever ``return None``."""
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return False
    returns = [n for n in ast.walk(node) if isinstance(n, ast.Return)]
    if not returns:
        return True
    return all(
        r.value is None
        or (isinstance(r.value, ast.Constant) and r.value.value is None)
        for r in returns
    )


def parse_module(
    name: str,
    source: str,
    path: str = "",
    scope_path: str = "",
) -> Optional[ModuleInfo]:
    """Parse one module into a :class:`ModuleInfo` (``None`` on syntax
    errors — per-file checking reports those as ``GEN001``)."""
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return None
    info = ModuleInfo(
        name=name,
        path=path or f"{name.replace('.', '/')}.py",
        scope_path=scope_path or path or f"{name.replace('.', '/')}.py",
        source=source,
        tree=tree,
        content_hash=content_hash(source),
    )
    is_package = path.endswith("__init__.py") if path else False

    def record_import(node: ast.AST, top_level: bool) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                target = alias.name
                info.all_imports.add(target)
                if top_level:
                    info.module_imports.add(target)
                if alias.asname:
                    info.aliases[alias.asname] = target
                    if top_level:
                        info.symbols.add(alias.asname)
                else:
                    root = target.split(".")[0]
                    info.aliases[root] = root
                    if top_level:
                        info.symbols.add(root)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = _relative_base(name, node.level, is_package)
                target_mod = (
                    f"{base}.{node.module}" if node.module and base
                    else (node.module or base)
                )
            else:
                target_mod = node.module or ""
            if not target_mod:
                return
            info.all_imports.add(target_mod)
            if top_level:
                info.module_imports.add(target_mod)
            for alias in node.names:
                if alias.name == "*":
                    info.has_wildcard_import = True
                    continue
                bound = alias.asname or alias.name
                info.aliases[bound] = f"{target_mod}.{alias.name}"
                if top_level:
                    info.symbols.add(bound)

    for node in ast.walk(tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            record_import(node, top_level=node in tree.body)

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.symbols.add(node.name)
            if node.name == "__getattr__":
                info.has_module_getattr = True
        elif isinstance(node, ast.ClassDef):
            info.symbols.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    info.symbols.add(target.id)
                elif isinstance(target, ast.Tuple):
                    info.symbols.update(
                        elt.id for elt in target.elts
                        if isinstance(elt, ast.Name)
                    )
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                info.symbols.add(node.target.id)
        elif isinstance(node, (ast.If, ast.Try)):
            # names bound under TYPE_CHECKING / try-except import guards
            for sub in ast.walk(node):
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef,
                                    ast.ClassDef)):
                    info.symbols.add(sub.name)
                elif isinstance(sub, ast.Assign):
                    for target in sub.targets:
                        if isinstance(target, ast.Name):
                            info.symbols.add(target.id)
                elif isinstance(sub, (ast.Import, ast.ImportFrom)):
                    for alias in sub.names:
                        if alias.name != "*":
                            info.symbols.add(
                                alias.asname
                                or alias.name.split(".")[0]
                            )

    # __all__ strings (literal lists/tuples only).
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and any(
                isinstance(t, ast.Name) and t.id == "__all__"
                for t in node.targets
            )
            and isinstance(node.value, (ast.List, ast.Tuple))
        ):
            info.exported.update(
                elt.value for elt in node.value.elts
                if isinstance(elt, ast.Constant)
                and isinstance(elt.value, str)
            )

    # Classes (with qualnames) and registrations.
    def visit_scope(body: Sequence[ast.stmt], prefix: str) -> None:
        for node in body:
            if isinstance(node, ast.ClassDef):
                qual = f"{prefix}{node.name}"
                bases = []
                for base in node.bases:
                    dotted = _dotted(base)
                    if dotted is not None:
                        bases.append(dotted)
                cinfo = ClassInfo(
                    qualname=qual, bases=tuple(bases), lineno=node.lineno
                )
                for sub in node.body:
                    if isinstance(
                        sub, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        cinfo.methods.add(sub.name)
                    elif isinstance(sub, ast.Assign):
                        for target in sub.targets:
                            if isinstance(target, ast.Name):
                                cinfo.methods.add(target.id)
                info.classes[qual] = cinfo
                for dec in node.decorator_list:
                    reg = _decorator_registration(
                        dec, qual, node.lineno, returns_none=False
                    )
                    if reg is not None:
                        info.registrations.append(reg)
                visit_scope(node.body, prefix=f"{qual}.")
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for dec in node.decorator_list:
                    reg = _decorator_registration(
                        dec,
                        f"{prefix}{node.name}",
                        node.lineno,
                        returns_none=_trivially_returns_none(node),
                    )
                    if reg is not None:
                        info.registrations.append(reg)

    visit_scope(tree.body, prefix="")
    return info


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


# ----------------------------------------------------------------------
# The index


class ProjectIndex:
    """The whole-project module graph and symbol tables."""

    def __init__(self, modules: Mapping[str, ModuleInfo]):
        self.modules: Dict[str, ModuleInfo] = dict(modules)
        self.by_path: Dict[str, ModuleInfo] = {
            m.path: m for m in self.modules.values()
        }
        #: module → indexed modules it imports at module level.
        self.import_graph: Dict[str, Set[str]] = {}
        #: module → indexed modules it imports anywhere.
        self.full_import_graph: Dict[str, Set[str]] = {}
        for name, info in self.modules.items():
            self.import_graph[name] = {
                t for t in (self._to_indexed(i) for i in info.module_imports)
                if t is not None and t != name
            }
            self.full_import_graph[name] = {
                t for t in (self._to_indexed(i) for i in info.all_imports)
                if t is not None and t != name
            }

    # -- construction ---------------------------------------------------

    @classmethod
    def from_sources(
        cls, sources: Mapping[str, str]
    ) -> "ProjectIndex":
        """Build an index from ``{dotted_name: source}`` (fixtures)."""
        modules = {}
        for name, source in sources.items():
            rel = name.replace(".", "/")
            path = (
                f"{rel}/__init__.py"
                if any(k.startswith(name + ".") for k in sources)
                else f"{rel}.py"
            )
            info = parse_module(name, source, path=path, scope_path=path)
            if info is not None:
                modules[name] = info
        return cls(modules)

    @classmethod
    def from_files(
        cls,
        files: Iterable[Path],
        *,
        sources: Optional[Mapping[Path, str]] = None,
        expand_packages: bool = True,
    ) -> "ProjectIndex":
        """Build an index from ``.py`` files on disk.

        The index is completed to whole packages: for every checked
        file inside a package, every module of that package joins the
        index (interprocedural flow needs the full graph even when only
        a sub-path was asked for).  ``sources`` short-circuits disk
        reads for already-loaded files.
        """
        seeds = [Path(f) for f in files if str(f).endswith(".py")]
        package_dirs: Set[Path] = set()
        standalone: List[Path] = []
        for f in seeds:
            root, name = module_name_for(f)
            top = name.split(".")[0]
            pkg_dir = root / top
            if (pkg_dir / "__init__.py").exists():
                package_dirs.add(pkg_dir)
            else:
                standalone.append(f)
        all_files: Dict[Path, None] = dict.fromkeys(
            f.resolve() for f in seeds
        )
        if expand_packages:
            for pkg in sorted(package_dirs):
                for sub in sorted(pkg.rglob("*.py")):
                    if "__pycache__" not in sub.parts:
                        all_files.setdefault(sub.resolve())
        modules: Dict[str, ModuleInfo] = {}
        for f in all_files:
            _, name = module_name_for(f)
            try:
                text = (
                    sources.get(f) if sources else None
                ) or f.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError):
                continue
            try:
                display = str(f.relative_to(Path.cwd()))
            except ValueError:
                display = str(f)
            info = parse_module(
                name, text,
                path=display,
                scope_path=Path(display).as_posix(),
            )
            if info is not None:
                modules[name] = info
        return cls(modules)

    # -- resolution -----------------------------------------------------

    def _to_indexed(self, dotted: str) -> Optional[str]:
        """Map an import target to an indexed module (or its package)."""
        if dotted in self.modules:
            return dotted
        # ``from repro.core.scheme import X`` seen as module target is
        # already a module; ``import repro.core`` with only submodules
        # indexed maps to the package __init__ if present.
        parts = dotted.split(".")
        while parts:
            cand = ".".join(parts)
            if cand in self.modules:
                return cand
            parts.pop()
        return None

    def resolve(self, module: str, local_name: str) -> Optional[str]:
        """Resolve a (possibly dotted) local name to a fully qualified
        ``module.symbol`` or module name, via the module's imports."""
        info = self.modules.get(module)
        if info is None:
            return None
        head, _, rest = local_name.partition(".")
        target = info.aliases.get(head)
        if target is None:
            if head in info.symbols:
                target = f"{module}.{head}"
            else:
                return None
        return f"{target}.{rest}" if rest else target

    def resolve_function(self, dotted: str) -> Optional[Tuple[str, str]]:
        """Split a qualified name into ``(module, qualname)`` when the
        module is indexed; follows one level of re-export."""
        for _ in range(4):  # bounded re-export chains
            parts = dotted.split(".")
            for i in range(len(parts) - 1, 0, -1):
                mod = ".".join(parts[:i])
                if mod in self.modules:
                    qual = ".".join(parts[i:])
                    info = self.modules[mod]
                    head = qual.split(".")[0]
                    # re-export: ``from .x import f`` then caller uses
                    # ``pkg.f`` — follow to the defining module.
                    if (
                        head not in info.symbols
                        or head in info.aliases
                    ) and head in info.aliases:
                        dotted = info.aliases[head] + (
                            "." + ".".join(qual.split(".")[1:])
                            if "." in qual else ""
                        )
                        break
                    return mod, qual
            else:
                return None
        return None

    def class_defines(
        self, module: str, class_qual: str, method: str
    ) -> bool:
        """Does ``class_qual`` (in ``module``) define or inherit
        ``method``, walking bases inside the index only?"""
        seen: Set[Tuple[str, str]] = set()
        stack = [(module, class_qual)]
        while stack:
            mod, qual = stack.pop()
            if (mod, qual) in seen:
                continue
            seen.add((mod, qual))
            info = self.modules.get(mod)
            if info is None:
                continue
            cinfo = info.classes.get(qual)
            if cinfo is None:
                continue
            if method in cinfo.methods:
                return True
            for base in cinfo.bases:
                resolved = self.resolve(mod, base)
                if resolved is None:
                    # same-module base written bare
                    if base in info.classes:
                        stack.append((mod, base))
                    continue
                located = self.resolve_function(resolved)
                if located is not None:
                    stack.append(located)
        return False

    # -- graph ----------------------------------------------------------

    def transitive_imports(self, module: str) -> Set[str]:
        """All indexed modules reachable from ``module`` via imports
        (module-level and function-level alike; this is the cache-
        invalidation frontier)."""
        seen: Set[str] = set()
        stack = [module]
        while stack:
            current = stack.pop()
            for dep in self.full_import_graph.get(current, ()):
                if dep not in seen:
                    seen.add(dep)
                    stack.append(dep)
        return seen

    def closure_digest(self, module: str) -> str:
        """Digest of a module's content + its transitive import
        closure's contents — the validity key for cached per-module
        project findings."""
        parts = [module, self.modules[module].content_hash]
        for dep in sorted(self.transitive_imports(module)):
            parts.append(dep)
            parts.append(self.modules[dep].content_hash)
        return hashlib.sha256("\n".join(parts).encode()).hexdigest()

    def import_cycles(self) -> List[List[str]]:
        """Elementary cycles among module-level imports (via SCCs)."""
        index_counter = [0]
        stack: List[str] = []
        lowlink: Dict[str, int] = {}
        number: Dict[str, int] = {}
        on_stack: Set[str] = set()
        sccs: List[List[str]] = []

        def strongconnect(v: str) -> None:
            number[v] = lowlink[v] = index_counter[0]
            index_counter[0] += 1
            stack.append(v)
            on_stack.add(v)
            for w in sorted(self.import_graph.get(v, ())):
                if w not in number:
                    strongconnect(w)
                    lowlink[v] = min(lowlink[v], lowlink[w])
                elif w in on_stack:
                    lowlink[v] = min(lowlink[v], number[w])
            if lowlink[v] == number[v]:
                scc = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    scc.append(w)
                    if w == v:
                        break
                if len(scc) > 1 or v in self.import_graph.get(v, ()):
                    sccs.append(sorted(scc))

        for v in sorted(self.modules):
            if v not in number:
                strongconnect(v)
        return sccs


# ----------------------------------------------------------------------
# What project rules receive


@dataclass
class ProjectContext:
    """Everything a ``@project_rule`` check sees.

    ``aux`` carries out-of-tree evidence (golden fingerprint files,
    docs catalogues) keyed by repo-relative path; when empty, the
    context reads them from ``root`` on demand.  ``summaries`` holds
    the dataflow function summaries keyed by module name (see
    :mod:`repro.staticcheck.dataflow`).
    """

    index: ProjectIndex
    root: Optional[Path] = None
    aux: Dict[str, Optional[str]] = field(default_factory=dict)
    summaries: Dict[str, Any] = field(default_factory=dict)

    def aux_text(self, relpath: str) -> Optional[str]:
        """Text of an auxiliary repo file, or ``None`` if unavailable."""
        if relpath in self.aux:
            return self.aux[relpath]
        if self.root is None:
            return None
        candidate = self.root / relpath
        try:
            text = candidate.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            text = None
        self.aux[relpath] = text
        return text

    def finding(
        self,
        rule: Any,
        module: ModuleInfo,
        node_or_line: "ast.AST | int",
        message: str,
    ):
        """Build a :class:`~repro.staticcheck.findings.Finding` anchored
        in ``module`` at an AST node or a line number."""
        from .findings import Finding

        if isinstance(node_or_line, int):
            line, col = node_or_line, 1
        else:
            line = getattr(node_or_line, "lineno", 1)
            col = getattr(node_or_line, "col_offset", 0) + 1
        return Finding(
            path=module.path,
            line=line,
            col=col,
            rule=rule.id,
            severity=rule.severity,
            message=message,
        )
