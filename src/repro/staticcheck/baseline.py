"""Baseline freezing for ``repro check --baseline``.

A baseline file records known, accepted findings so the gate fails
only on *new* ones — how a strict checker lands on a codebase with
history.  ``repro check --write-baseline`` freezes the current
findings; later runs with ``--baseline`` subtract them.

Matching is deliberately line-insensitive: a baseline entry is
``(path, rule, message)``, counted with multiplicity, so reformatting
a file does not resurrect frozen findings, while a *second* identical
violation in the same file is new and still fails.  Frozen entries
that no longer occur are reported back (``stale``) so the baseline
shrinks over time instead of fossilising.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Sequence, Tuple

from .findings import Finding

#: bump when the baseline structure changes incompatibly.
BASELINE_SCHEMA_VERSION = 1

#: default baseline location, relative to the working directory.
DEFAULT_BASELINE_PATH = ".repro-check-baseline.json"

_Key = Tuple[str, str, str]


def _key(finding: Finding) -> _Key:
    return (Path(finding.path).as_posix(), finding.rule, finding.message)


@dataclass
class BaselineResult:
    """Findings split against a baseline."""

    new: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    #: frozen entries with no matching finding any more.
    stale: List[_Key] = field(default_factory=list)


def write_baseline(
    path: "str | Path", findings: Sequence[Finding]
) -> None:
    """Freeze ``findings`` into a baseline file (sorted, stable)."""
    entries = [
        {"path": p, "rule": r, "message": m}
        for p, r, m in sorted(_key(f) for f in findings)
    ]
    Path(path).write_text(
        json.dumps(
            {"version": BASELINE_SCHEMA_VERSION, "findings": entries},
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )


def load_baseline(path: "str | Path") -> List[_Key]:
    """Frozen entries from a baseline file (empty if absent)."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return []
    if not isinstance(data, dict) or data.get(
        "version"
    ) != BASELINE_SCHEMA_VERSION:
        return []
    out: List[_Key] = []
    for entry in data.get("findings", []):
        if isinstance(entry, dict):
            out.append((
                str(entry.get("path", "")),
                str(entry.get("rule", "")),
                str(entry.get("message", "")),
            ))
    return out


def apply_baseline(
    findings: Sequence[Finding], frozen: Sequence[_Key]
) -> BaselineResult:
    """Split findings into new vs baseline-suppressed (with stale
    accounting); multiplicity-aware, line-insensitive."""
    budget = Counter(frozen)
    result = BaselineResult()
    for finding in findings:
        key = _key(finding)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            result.suppressed.append(finding)
        else:
            result.new.append(finding)
    result.stale = sorted(budget.elements())
    return result
