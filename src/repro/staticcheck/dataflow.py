"""Intra-/inter-procedural dataflow over the project index.

Tracks three value kinds through assignments, calls, returns and
keyword arguments — everything the FLOW rules need, nothing more:

* ``gen`` — a ``numpy.random.Generator`` (from ``default_rng(...)``,
  a ``rng``-named parameter/attribute, or a call to a function whose
  summary says it returns one);
* ``seed`` — a seed-valued integer (seed-named parameters and
  variables); ``derived-seed`` marks seeds produced by *arithmetic*
  (``seed + i``), the pattern that breaks stream independence;
* ``time`` — a wall-clock read (``time.time()`` and friends).

Values wrapped by the sanctioned constructors — ``SeedSequence(...)``,
``.spawn(...)`` on a seed sequence, ``spawn_point_seeds(...)`` — lose
their tags: derivation in SeedSequence space is exactly the fix the
rules prescribe.

The analysis is flow-insensitive within a function (assignment effects
are iterated to a small fixpoint) and summary-based across functions:
:func:`summarize_module` extracts **JSON-serialisable** per-function
summaries (parameters, returned tags, consumed parameters, outgoing
calls), and :func:`propagate` closes them over the call graph.  The
serialisability is load-bearing — summaries are the index shards the
incremental cache stores, so a warm run re-analyses nothing.
"""

from __future__ import annotations

import ast
import re
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from .project import ModuleInfo, ProjectIndex

GEN = "gen"
SEED = "seed"
DERIVED_SEED = "derived-seed"
TIME = "time"

#: identifier patterns treated as Generator-carrying when no assignment
#: says otherwise (``rng``, ``_rng``, ``fairness_rng``, ``generator``).
_RNG_NAME_RE = re.compile(r"(^|_)rngs?$|(^|_)generators?$|^random_state$")

#: seed-named identifiers (``seed``, ``base_seed``, ``seed0`` …); seed
#: *sequences* are the sanctioned carrier and stay untagged.
_SEED_NAME_RE = re.compile(r"seed(?!_?seq|_?sequence)")

#: constructors/wrappers that launder a value into the safe domain.
SAFE_WRAPPERS = frozenset({
    "SeedSequence", "spawn", "spawn_point_seeds", "PointTask",
})

#: Generator methods that do NOT consume draws from the stream.
_NON_CONSUMING_METHODS = frozenset({"spawn", "bit_generator"})

#: wall-clock reads (kept in sync with the DET002 table).
_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "date.today", "datetime.date.today",
})

_GEN_SOURCES = frozenset({
    "default_rng", "np.random.default_rng", "numpy.random.default_rng",
    "Generator", "np.random.Generator", "numpy.random.Generator",
})


def name_is_rngish(name: str) -> bool:
    """Heuristic: does this identifier conventionally hold a Generator?"""
    return bool(_RNG_NAME_RE.search(name.lstrip("_").lower()))


def name_is_seedish(name: str) -> bool:
    """Heuristic: does this identifier conventionally hold a seed int?"""
    return bool(_SEED_NAME_RE.search(name.lstrip("_").lower()))


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def param_tags_for(args: ast.arguments) -> Dict[str, Set[str]]:
    """Initial tags for a function's parameters (names + annotations)."""
    tags: Dict[str, Set[str]] = {}
    for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        t: Set[str] = set()
        ann = ast.unparse(arg.annotation) if arg.annotation else ""
        if name_is_rngish(arg.arg) or "Generator" in ann:
            t.add(GEN)
        elif name_is_seedish(arg.arg) and "Sequence" not in ann:
            t.add(SEED)
        if t:
            tags[arg.arg] = t
    return tags


class ExprTags:
    """Tags-of-expression evaluator for one lexical scope.

    ``env`` maps local names to tag sets — an *explicit* entry (even an
    empty one) beats the name heuristics, so ``seeds = ss.spawn(n)``
    stays safe no matter what the variable is called.  ``parent`` chains
    lexical scopes (lambda → enclosing function → module).
    """

    def __init__(
        self,
        env: Optional[Dict[str, Set[str]]] = None,
        *,
        class_attrs: Optional[Mapping[str, Set[str]]] = None,
        summary_lookup=None,
        parent: Optional["ExprTags"] = None,
    ):
        self.env = env if env is not None else {}
        self.class_attrs = dict(class_attrs or {})
        self._summary_lookup = summary_lookup
        self.parent = parent

    def _lookup_name(self, name: str) -> Optional[Set[str]]:
        scope: Optional[ExprTags] = self
        while scope is not None:
            if name in scope.env:
                return scope.env[name]
            scope = scope.parent
        return None

    def _callee_returns(self, call: ast.Call) -> Optional[Set[str]]:
        if self._summary_lookup is None:
            return None
        dotted = _dotted(call.func)
        if dotted is None:
            return None
        summary = self._summary_lookup(dotted)
        if summary is None:
            return None
        return set(summary.get("returns_tags", ()))

    def tags(self, node: ast.AST) -> Set[str]:
        """The tag set an expression may carry."""
        if isinstance(node, ast.Name):
            found = self._lookup_name(node.id)
            if found is not None:
                return set(found)
            if name_is_rngish(node.id):
                return {GEN}
            if name_is_seedish(node.id):
                return {SEED}
            return set()
        if isinstance(node, ast.Attribute):
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in self.class_attrs
            ):
                return set(self.class_attrs[node.attr])
            if name_is_rngish(node.attr):
                return {GEN}
            if name_is_seedish(node.attr):
                return {SEED}
            return set()
        if isinstance(node, ast.Call):
            func = node.func
            terminal = (
                func.attr if isinstance(func, ast.Attribute)
                else func.id if isinstance(func, ast.Name) else None
            )
            if terminal in SAFE_WRAPPERS:
                if terminal == "spawn":
                    # Generator.spawn returns Generators; SeedSequence
                    # (or anything untagged) spawns safe children.
                    recv = (
                        self.tags(func.value)
                        if isinstance(func, ast.Attribute) else set()
                    )
                    return {GEN} if GEN in recv else set()
                return set()
            dotted = _dotted(func)
            if dotted is not None:
                normal = (
                    "np." + dotted[len("numpy."):]
                    if dotted.startswith("numpy.") else dotted
                )
                if normal in _GEN_SOURCES or dotted in _GEN_SOURCES:
                    return {GEN}
                if dotted in _WALL_CLOCK or normal in _WALL_CLOCK:
                    return {TIME}
            from_summary = self._callee_returns(node)
            if from_summary:
                return from_summary
            if isinstance(func, ast.Attribute):
                # method calls on tagged values produce plain data
                # (rng.integers(...) is an int), except .spawn above.
                return set()
            return set()
        if isinstance(node, ast.BinOp):
            left, right = self.tags(node.left), self.tags(node.right)
            merged = left | right
            if SEED in merged:
                merged.add(DERIVED_SEED)
            return merged
        if isinstance(node, ast.UnaryOp):
            return self.tags(node.operand)
        if isinstance(node, ast.IfExp):
            return self.tags(node.body) | self.tags(node.orelse)
        if isinstance(node, ast.BoolOp):
            out: Set[str] = set()
            for value in node.values:
                out |= self.tags(value)
            return out
        if isinstance(node, ast.Subscript):
            return self.tags(node.value)
        if isinstance(node, ast.Starred):
            return self.tags(node.value)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            out = set()
            for elt in node.elts:
                out |= self.tags(elt)
            return out
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self.tags(node.elt)
        if isinstance(node, ast.NamedExpr):
            return self.tags(node.value)
        if isinstance(node, ast.Await):
            return self.tags(node.value)
        return set()


def build_env(
    body: Sequence[ast.stmt],
    base_env: Dict[str, Set[str]],
    *,
    class_attrs: Optional[Mapping[str, Set[str]]] = None,
    summary_lookup=None,
    parent: Optional[ExprTags] = None,
    passes: int = 3,
) -> ExprTags:
    """Flow-insensitive assignment analysis of one scope body.

    Iterates the assignment transfer a few times so chains
    (``a = rng; b = a``) converge; explicit (re)assignment to a safe
    value clears heuristic tags.
    """
    scope = ExprTags(
        dict(base_env),
        class_attrs=class_attrs,
        summary_lookup=summary_lookup,
        parent=parent,
    )

    def bind(target: ast.AST, tags: Set[str]) -> None:
        if isinstance(target, ast.Name):
            scope.env[target.id] = set(tags)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                bind(elt, tags)
        elif isinstance(target, ast.Starred):
            bind(target.value, tags)

    statements: List[ast.stmt] = []
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue  # nested scopes summarised separately
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign,
                                 ast.For, ast.AsyncFor, ast.withitem)):
                statements.append(node)  # type: ignore[arg-type]
    for _ in range(passes):
        for node in statements:
            if isinstance(node, ast.Assign):
                tags = scope.tags(node.value)
                for target in node.targets:
                    bind(target, tags)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                bind(node.target, scope.tags(node.value))
            elif isinstance(node, ast.AugAssign):
                extra = scope.tags(node.value) | scope.tags(node.target)
                if SEED in extra:
                    extra.add(DERIVED_SEED)
                bind(node.target, extra)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                bind(node.target, scope.tags(node.iter))
            elif isinstance(node, ast.withitem) and node.optional_vars:
                bind(node.optional_vars, scope.tags(node.context_expr))
    return scope


# ----------------------------------------------------------------------
# Function summaries


def _class_attr_tags(
    tree: ast.Module,
) -> Dict[str, Dict[str, Set[str]]]:
    """Per-class ``self.<attr>`` tags, from one pass over method bodies."""
    out: Dict[str, Dict[str, Set[str]]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        attrs: Dict[str, Set[str]] = {}
        for method in node.body:
            if not isinstance(
                method, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            env = build_env(
                method.body, dict(param_tags_for(method.args)), passes=2
            )
            for sub in ast.walk(method):
                if isinstance(sub, ast.Assign):
                    for target in sub.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            tags = env.tags(sub.value)
                            if tags:
                                attrs.setdefault(
                                    target.attr, set()
                                ).update(tags)
        if attrs:
            out[node.name] = attrs
    return out


def _iter_functions(
    tree: ast.Module,
) -> List[Tuple[str, Optional[str], ast.AST]]:
    """``(qualname, enclosing_class, node)`` for defs and methods."""
    out: List[Tuple[str, Optional[str], ast.AST]] = []

    def visit(body: Sequence[ast.stmt], prefix: str, cls: Optional[str]):
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                out.append((f"{prefix}{node.name}", cls, node))
            elif isinstance(node, ast.ClassDef):
                visit(node.body, f"{prefix}{node.name}.", node.name)

    visit(tree.body, "", None)
    return out


def summarize_module(info: ModuleInfo) -> Dict[str, Any]:
    """Local (single-module) dataflow summary — an index shard.

    Returns ``{"functions": {qual: summary}, "class_attrs":
    {Class: {attr: [tags]}}}`` where every summary is plain JSON data.
    """
    if info.tree is None:
        return {"functions": {}, "class_attrs": {}}
    class_attrs = _class_attr_tags(info.tree)

    def resolve_local(dotted: str) -> List[str]:
        """Fully-qualified candidates for a dotted local name."""
        head = dotted.split(".")[0]
        rest = dotted[len(head):]
        candidates = []
        if head in info.aliases:
            candidates.append(info.aliases[head] + rest)
        if head in info.symbols:
            candidates.append(f"{info.name}.{dotted}")
        return candidates

    functions: Dict[str, Any] = {}
    for qual, cls, node in _iter_functions(info.tree):
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        params = [
            a.arg
            for a in (*node.args.posonlyargs, *node.args.args,
                      *node.args.kwonlyargs)
        ]
        p_tags = param_tags_for(node.args)
        env = build_env(
            node.body,
            dict(p_tags),
            class_attrs=class_attrs.get(cls or "", {}),
        )
        returns_tags: Set[str] = set()
        return_callees: List[str] = []
        consumed: Set[str] = set()
        consumes_ambient = False
        calls: List[Dict[str, Any]] = []
        for sub in ast.walk(node):
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if sub is not node:
                    continue
            if isinstance(sub, ast.Return) and sub.value is not None:
                returns_tags |= env.tags(sub.value)
                if isinstance(sub.value, ast.Call):
                    dotted = _dotted(sub.value.func)
                    if dotted is not None:
                        if (
                            dotted.startswith("self.")
                            and cls is not None
                        ):
                            return_callees.append(
                                f"{info.name}.{cls}{dotted[4:]}"
                            )
                        else:
                            return_callees.extend(resolve_local(dotted))
            if not isinstance(sub, ast.Call):
                continue
            func = sub.func
            # consumption: a draw-taking method on a gen-tagged value.
            if isinstance(func, ast.Attribute):
                recv_tags = env.tags(func.value)
                if (
                    GEN in recv_tags
                    and func.attr not in _NON_CONSUMING_METHODS
                ):
                    consumes_ambient_here = True
                    # consumed *via a parameter* is not ambient.
                    if (
                        isinstance(func.value, ast.Name)
                        and func.value.id in params
                    ):
                        consumed.add(func.value.id)
                        consumes_ambient_here = False
                    consumes_ambient = (
                        consumes_ambient or consumes_ambient_here
                    )
            dotted = _dotted(func)
            callee: List[str] = []
            self_method = None
            if dotted is not None:
                if dotted.startswith("self.") and "." not in dotted[5:]:
                    self_method = dotted[5:]
                    if cls is not None:
                        callee = [f"{info.name}.{cls}.{self_method}"]
                else:
                    callee = resolve_local(dotted)
            if not callee and self_method is None:
                continue
            arg_descs = []
            for arg in sub.args:
                arg_descs.append({
                    "param": arg.id
                    if isinstance(arg, ast.Name) and arg.id in params
                    else None,
                    "tags": sorted(env.tags(arg)),
                })
            kw_descs = {}
            for kw in sub.keywords:
                if kw.arg is None:
                    continue
                kw_descs[kw.arg] = {
                    "param": kw.value.id
                    if isinstance(kw.value, ast.Name)
                    and kw.value.id in params
                    else None,
                    "tags": sorted(env.tags(kw.value)),
                }
            calls.append({
                "callee": callee,
                "method_call": isinstance(func, ast.Attribute),
                "args": arg_descs,
                "kwargs": kw_descs,
            })
        functions[qual] = {
            "params": params,
            "param_tags": {k: sorted(v) for k, v in p_tags.items()},
            "returns_tags": sorted(returns_tags),
            "return_callees": sorted(set(return_callees)),
            "consuming_params": sorted(consumed),
            "consumes_ambient_gen": consumes_ambient,
            "calls": calls,
        }
    return {
        "functions": functions,
        "class_attrs": {
            cls: {attr: sorted(tags) for attr, tags in attrs.items()}
            for cls, attrs in class_attrs.items()
        },
    }


def make_summary_lookup(
    summaries: Mapping[str, Mapping[str, Any]], index: ProjectIndex
):
    """``dotted fully-qualified name → function summary`` resolver."""

    def lookup(dotted: str) -> Optional[Mapping[str, Any]]:
        located = index.resolve_function(dotted)
        if located is None:
            return None
        mod, qual = located
        module_summary = summaries.get(mod)
        if module_summary is None:
            return None
        return module_summary.get("functions", {}).get(qual)

    return lookup


def propagate(
    summaries: Dict[str, Dict[str, Any]],
    index: ProjectIndex,
    *,
    max_passes: int = 12,
) -> Dict[str, Dict[str, Any]]:
    """Close the local summaries over the call graph (fixpoint).

    Propagates three facts until stable (or ``max_passes``):

    * a function returning a call to a Generator-returning function
      itself returns ``gen``;
    * a parameter forwarded into a callee's consuming parameter is
      itself consuming;
    * calling a function that consumes an ambient Generator — or
      passing it a gen-tagged argument bound to a consuming parameter —
      makes the caller ambient-consuming too.
    """
    lookup = make_summary_lookup(summaries, index)

    def callee_summaries(call: Mapping[str, Any]):
        for cand in call.get("callee", ()):
            found = lookup(cand)
            if found is not None:
                yield found

    for _ in range(max_passes):
        changed = False
        for module_summary in summaries.values():
            for summary in module_summary.get("functions", {}).values():
                returns = set(summary["returns_tags"])
                for cand in summary.get("return_callees", ()):
                    callee = lookup(cand)
                    if callee and GEN in callee.get("returns_tags", ()):
                        returns.add(GEN)
                if returns != set(summary["returns_tags"]):
                    summary["returns_tags"] = sorted(returns)
                    changed = True
                consuming = set(summary["consuming_params"])
                ambient = summary["consumes_ambient_gen"]
                for call in summary.get("calls", ()):
                    for callee in callee_summaries(call):
                        if callee.get("consumes_ambient_gen"):
                            ambient = True
                        c_params = list(callee.get("params", ()))
                        if (
                            call.get("method_call")
                            and c_params[:1] == ["self"]
                        ):
                            c_params = c_params[1:]
                        c_consuming = set(
                            callee.get("consuming_params", ())
                        )
                        for i, desc in enumerate(call.get("args", ())):
                            target = (
                                c_params[i] if i < len(c_params) else None
                            )
                            if target not in c_consuming:
                                continue
                            if desc.get("param"):
                                consuming.add(desc["param"])
                            elif GEN in desc.get("tags", ()):
                                ambient = True
                        for name, desc in call.get("kwargs", {}).items():
                            if name not in c_consuming:
                                continue
                            if desc.get("param"):
                                consuming.add(desc["param"])
                            elif GEN in desc.get("tags", ()):
                                ambient = True
                if consuming != set(summary["consuming_params"]):
                    summary["consuming_params"] = sorted(consuming)
                    changed = True
                if ambient != summary["consumes_ambient_gen"]:
                    summary["consumes_ambient_gen"] = ambient
                    changed = True
        if not changed:
            break
    return summaries


def analyze_project(index: ProjectIndex) -> Dict[str, Dict[str, Any]]:
    """Summarise every indexed module and run propagation to fixpoint."""
    summaries = {
        name: summarize_module(info)
        for name, info in index.modules.items()
        if info.tree is not None
    }
    return propagate(summaries, index)
