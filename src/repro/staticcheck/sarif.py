"""SARIF 2.1.0 output for ``repro check --format sarif``.

SARIF (Static Analysis Results Interchange Format, OASIS) is what
GitHub code scanning ingests: upload the document and findings become
inline PR annotations.  The emitter targets the subset GitHub
documents — one ``run``, a ``tool.driver`` with the full rule
catalogue, and one ``result`` per finding with a ``physicalLocation``.

The container has no ``jsonschema`` package, so :func:`validate_sarif`
is a hand-rolled structural validator encoding the SARIF 2.1.0
required-property rules this emitter relies on (``version``, ``runs``,
``tool.driver.name``, result ``message``/``ruleId``, region bounds
``>= 1``).  It is deliberately strict about exactly the properties CI
consumes, and it is what the tests assert against.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List

from .engine import RULE_REGISTRY, SYNTAX_RULE, CheckResult
from .findings import Severity

#: the published 2.1.0 schema URI (informational; see module docstring).
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
SARIF_VERSION = "2.1.0"

_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning"}


def _rule_descriptors() -> List[Dict[str, Any]]:
    rules = [
        {
            "id": SYNTAX_RULE,
            "name": "unparseable-file",
            "shortDescription": {"text": "file does not parse"},
            "fullDescription": {
                "text": "The file could not be parsed as Python/JSON/"
                        "TOML; nothing else can be checked."
            },
            "defaultConfiguration": {"level": "error"},
        }
    ]
    for rule in sorted(RULE_REGISTRY.values(), key=lambda r: r.id):
        rules.append({
            "id": rule.id,
            "name": rule.name,
            "shortDescription": {"text": rule.name},
            "fullDescription": {"text": rule.description},
            "defaultConfiguration": {
                "level": _LEVELS[rule.severity]
            },
        })
    return sorted(rules, key=lambda d: d["id"])


def to_sarif_dict(result: CheckResult) -> Dict[str, Any]:
    """The SARIF 2.1.0 document for one check run."""
    descriptors = _rule_descriptors()
    rule_index = {d["id"]: i for i, d in enumerate(descriptors)}
    results = []
    for finding in result.findings:
        entry: Dict[str, Any] = {
            "ruleId": finding.rule,
            "level": _LEVELS[finding.severity],
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": Path(finding.path).as_posix(),
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": max(1, finding.line),
                            "startColumn": max(1, finding.col),
                        },
                    }
                }
            ],
        }
        if finding.rule in rule_index:
            entry["ruleIndex"] = rule_index[finding.rule]
        results.append(entry)
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-check",
                        "rules": descriptors,
                    }
                },
                "columnKind": "unicodeCodePoints",
                "results": results,
            }
        ],
    }


def render_sarif(result: CheckResult) -> str:
    """The SARIF report as a string (``--format sarif``)."""
    return json.dumps(to_sarif_dict(result), indent=2)


def validate_sarif(doc: Any) -> List[str]:
    """Structural SARIF 2.1.0 validation; returns problems (empty =
    valid).  Encodes the required-property rules of the spec for the
    subset this emitter produces (see module docstring)."""
    problems: List[str] = []

    def need(cond: bool, message: str) -> bool:
        if not cond:
            problems.append(message)
        return cond

    if not need(isinstance(doc, dict), "document must be an object"):
        return problems
    need(doc.get("version") == SARIF_VERSION,
         f"version must be {SARIF_VERSION!r}")
    runs = doc.get("runs")
    if not need(isinstance(runs, list) and runs, "runs must be a "
                "non-empty array"):
        return problems
    for i, run in enumerate(runs):
        where = f"runs[{i}]"
        if not need(isinstance(run, dict), f"{where} must be an object"):
            continue
        driver = run.get("tool", {}).get("driver") if isinstance(
            run.get("tool"), dict
        ) else None
        if need(isinstance(driver, dict),
                f"{where}.tool.driver is required"):
            need(
                isinstance(driver.get("name"), str) and driver["name"],
                f"{where}.tool.driver.name is required",
            )
            for j, rule in enumerate(driver.get("rules", [])):
                need(
                    isinstance(rule, dict)
                    and isinstance(rule.get("id"), str),
                    f"{where}.tool.driver.rules[{j}].id is required",
                )
        results = run.get("results")
        if not need(isinstance(results, list),
                    f"{where}.results must be an array"):
            continue
        declared = {
            rule.get("id")
            for rule in (driver or {}).get("rules", [])
            if isinstance(rule, dict)
        }
        for j, res in enumerate(results):
            rwhere = f"{where}.results[{j}]"
            if not need(isinstance(res, dict),
                        f"{rwhere} must be an object"):
                continue
            message = res.get("message")
            need(
                isinstance(message, dict)
                and isinstance(message.get("text"), str),
                f"{rwhere}.message.text is required",
            )
            need(
                res.get("level") in (
                    "none", "note", "warning", "error", None
                ),
                f"{rwhere}.level must be a SARIF level",
            )
            if "ruleIndex" in res:
                need(
                    isinstance(res["ruleIndex"], int)
                    and 0 <= res["ruleIndex"] < len(declared),
                    f"{rwhere}.ruleIndex out of range",
                )
            if isinstance(res.get("ruleId"), str) and declared:
                need(
                    res["ruleId"] in declared,
                    f"{rwhere}.ruleId not declared by the driver",
                )
            for k, loc in enumerate(res.get("locations", [])):
                phys = loc.get("physicalLocation") if isinstance(
                    loc, dict
                ) else None
                lwhere = f"{rwhere}.locations[{k}].physicalLocation"
                if not need(isinstance(phys, dict),
                            f"{lwhere} is required"):
                    continue
                art = phys.get("artifactLocation")
                need(
                    isinstance(art, dict)
                    and isinstance(art.get("uri"), str),
                    f"{lwhere}.artifactLocation.uri is required",
                )
                region = phys.get("region")
                if isinstance(region, dict):
                    for key in ("startLine", "startColumn"):
                        if key in region:
                            need(
                                isinstance(region[key], int)
                                and region[key] >= 1,
                                f"{lwhere}.region.{key} must be >= 1",
                            )
    return problems
