"""Autofixes for the mechanical rules (``repro check --fix``).

Fixes are deliberately conservative: single-line, textual, applied at
the finding's location, and only where the rewrite is unambiguous —
everything else stays a finding for a human.  Because every fix
removes its finding, a second ``--fix`` run is a no-op (idempotency is
asserted by the tests).

What gets fixed:

* ``DET003`` — ``default_rng()`` → ``default_rng(0)``, in docs,
  examples and markdown snippets only (library code needs a design
  decision, not a constant);
* ``DET004`` — ``list(set(...))`` / ``tuple(set(...))`` →
  ``sorted(set(...))``, exactly the rewrite the rule prescribes;
* ``REG005`` — zero-argument environment-model constructions rewritten
  through the registry (``NoDelay()`` → ``make_delay_model("none")``)
  when the module already imports that factory;
* ``--fix-suppress RULE[,RULE…]`` — append ``# repro: noqa[RULE]``
  (merging into an existing suppression list) to every line the named
  rules flag, for freezing deliberate exceptions; a ``TODO`` marker is
  left so justifications get written.
"""

from __future__ import annotations

import re
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Set

from .findings import Finding

#: zero-argument constructions with an unambiguous registry spelling.
_REG005_REWRITES = {
    "NoDelay": ('make_delay_model("none")', "make_delay_model"),
    "NoFailures": ('make_failure_model("none")', "make_failure_model"),
    "ComputeModel": ('make_compute_model("uniform")', "make_compute_model"),
    "NetworkModel": ('make_network_model("uniform")', "make_network_model"),
}

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?"
)

#: paths where seeding a snippet constant is the right DET003 fix.
_DOCLIKE = ("docs/", "examples/", ".md")


def _doclike(path: str) -> bool:
    posix = Path(path).as_posix()
    return posix.endswith(".md") or any(
        fragment in posix for fragment in ("docs/", "examples/")
    )


def _fix_det003(line: str, finding: Finding) -> Optional[str]:
    if not _doclike(finding.path):
        return None
    fixed = line.replace("default_rng()", "default_rng(0)", 1)
    return fixed if fixed != line else None


def _fix_det004(line: str, finding: Finding) -> Optional[str]:
    col = max(0, finding.col - 1)
    for word in ("list", "tuple"):
        needle = f"{word}(set("
        at = line.find(needle, col)
        if at < 0:
            at = line.find(needle)
        if at >= 0:
            return line[:at] + "sorted" + line[at + len(word):]
    return None


def _fix_reg005(line: str, finding: Finding, source: str) -> Optional[str]:
    for cls, (replacement, factory) in _REG005_REWRITES.items():
        call = f"{cls}()"
        if call not in line:
            continue
        if not re.search(rf"\b{factory}\b", source):
            return None  # factory not in scope; rewrite would not run
        return line.replace(call, replacement, 1)
    return None


def _add_noqa(line: str, rule: str) -> Optional[str]:
    stripped = line.rstrip("\n")
    newline = line[len(stripped):]
    match = _NOQA_RE.search(stripped)
    if match:
        rules = match.group("rules")
        if rules is None:
            return None  # bare noqa already suppresses everything
        current = {r.strip().upper() for r in rules.split(",") if r.strip()}
        if rule in current:
            return None
        merged = ",".join(sorted(current | {rule}))
        start, end = match.span()
        fixed = (
            stripped[:start]
            + f"# repro: noqa[{merged}]"
            + stripped[end:]
        )
        return fixed + newline
    return (
        stripped
        + f"  # repro: noqa[{rule}]  TODO: justify this exception"
        + newline
    )


@dataclass
class FixResult:
    """What one ``--fix`` pass changed."""

    fixed: Counter = field(default_factory=Counter)  # rule → count
    changed_paths: Set[str] = field(default_factory=set)
    #: findings no fixer could handle (stay for a human).
    remaining: List[Finding] = field(default_factory=list)


def apply_fixes(
    findings: Sequence[Finding],
    sources: Dict[str, str],
    *,
    suppress: Optional[Set[str]] = None,
) -> FixResult:
    """Apply every applicable fix, mutating ``sources`` in place.

    ``sources`` maps finding paths to file text; only entries present
    are touched (callers control what is writable).  ``suppress`` names
    rules to silence via noqa insertion instead of a semantic rewrite.
    """
    suppress = suppress or set()
    result = FixResult()
    by_path: Dict[str, List[Finding]] = {}
    for finding in findings:
        by_path.setdefault(finding.path, []).append(finding)
    for path, path_findings in by_path.items():
        text = sources.get(path)
        if text is None:
            result.remaining.extend(path_findings)
            continue
        lines = text.splitlines(keepends=True)
        changed = False
        # bottom-up so earlier line numbers stay valid.
        for finding in sorted(
            path_findings, key=lambda f: (-f.line, -f.col)
        ):
            if not 1 <= finding.line <= len(lines):
                result.remaining.append(finding)
                continue
            line = lines[finding.line - 1]
            fixed: Optional[str] = None
            if finding.rule in suppress:
                fixed = _add_noqa(line, finding.rule)
            elif finding.rule == "DET003":
                fixed = _fix_det003(line, finding)
            elif finding.rule == "DET004":
                fixed = _fix_det004(line, finding)
            elif finding.rule == "REG005":
                fixed = _fix_reg005(line, finding, text)
            if fixed is None or fixed == line:
                result.remaining.append(finding)
                continue
            lines[finding.line - 1] = fixed
            changed = True
            result.fixed[finding.rule] += 1
        if changed:
            sources[path] = "".join(lines)
            result.changed_paths.add(path)
    return result
