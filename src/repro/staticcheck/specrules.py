"""Spec-feasibility rules (SPEC0xx).

An :class:`~repro.engine.spec.ExperimentSpec` can describe a placement
that cannot exist: ``CR(n, c)`` with ``c = n`` (every pair of workers
conflicts — Theorem 1 leaves at most one usable payload), ``FR``
without ``c | n``, an HR split violating Theorem 5–7's group
constraints, or a ``wait_for`` outside the ``1 ≤ w ≤ n`` range in
which the Theorem 10/11 recovery bounds are even defined.  Today such
a spec fails deep inside a run — or worse, silently degenerates.
These rules validate spec *documents* (``examples/specs/*.json`` /
``.toml``) and literal ``ExperimentSpec(...)`` constructions without
executing anything:

* ``SPEC001`` — an infeasible JSON/TOML spec file;
* ``SPEC002`` — an infeasible literal ``ExperimentSpec(...)`` call in
  non-test Python code (tests construct invalid specs on purpose).

:func:`spec_feasibility_problems` is the shared validator; every
message cites the violated constraint so the fix is obvious from the
report alone.  Placement feasibility itself is delegated to the
placement registry's static hooks
(:func:`repro.core.scheme.placement_spec_problems` →
``PlacementScheme.spec_problems``), so a newly registered family's
constraints are checked here without touching this module — including
the generic ``is-gc`` scheme, whose ``scheme_params["placement"]``
selects the family (typos get the same did-you-mean message
``repro run`` raises).
"""

from __future__ import annotations

import ast
from typing import Any, FrozenSet, List, Mapping

from .engine import PythonContext, Rule, SpecContext, python_rule, spec_rule, terminal_name
from .findings import Finding

#: Schemes whose placement constraints the validator knows statically.
#: Third-party registered schemes are skipped (their constraints live
#: in their own factories).
KNOWN_SCHEMES = frozenset({
    "sync-sgd", "is-sgd", "gc", "is-gc-fr", "is-gc-cr", "is-gc-hr",
    "is-gc",
})

#: Schemes that wait for ``w`` workers and therefore need ``wait_for``.
WAITING_SCHEMES = frozenset({
    "is-sgd", "is-gc-fr", "is-gc-cr", "is-gc-hr", "is-gc",
})

#: Fixed scheme → placement-family bindings; the generic ``is-gc``
#: scheme resolves its family from ``scheme_params["placement"]``.
_SCHEME_FAMILIES = {
    "gc": "cr",
    "is-gc-cr": "cr",
    "is-gc-fr": "fr",
    "is-gc-hr": "hr",
}


def _as_int(value: Any) -> "int | None":
    if isinstance(value, bool) or not isinstance(value, int):
        return None
    return value


def spec_feasibility_problems(
    data: Mapping[str, Any],
    unresolved: FrozenSet[str] = frozenset(),
) -> List[str]:
    """Constraint violations of one spec mapping, as messages.

    Purely arithmetic — nothing is imported or executed, so the checks
    are safe on untrusted input.  ``unresolved`` names spec fields
    whose values were not statically known (e.g. a computed
    ``wait_for`` in a literal spec); checks involving them are skipped
    rather than guessed at.
    """
    problems: List[str] = []
    scheme = data.get("scheme")
    n = _as_int(data.get("num_workers"))
    if n is None or n < 1:
        problems.append(
            "num_workers must be a positive integer, got "
            f"{data.get('num_workers')!r}"
        )
        return problems  # everything below needs a valid n

    c = _as_int(data.get("partitions_per_worker", 1))
    c_known = "partitions_per_worker" not in unresolved
    if c_known and (c is None or not 1 <= c <= n):
        problems.append(
            "partitions_per_worker must satisfy 1 <= c <= n "
            "(each worker stores c of the n partitions); got "
            f"c={data.get('partitions_per_worker')!r}, n={n}"
        )
        c_known = False

    # ------------------------------------------------------------------
    # Placement feasibility per scheme — dispatched through the
    # placement registry's arithmetic-only static hooks, so every
    # registered family (and any future one) is checked uniformly.
    params_known = "scheme_params" not in unresolved
    family_params = data.get("scheme_params") or {}
    if params_known and not isinstance(family_params, Mapping):
        if scheme in ("is-gc", "is-gc-hr"):
            problems.append(
                f"scheme_params must be a mapping, got {family_params!r}"
            )
        family_params = {}
    family_params = dict(family_params) if params_known else {}

    family = _SCHEME_FAMILIES.get(scheme)
    if scheme in ("is-gc-hr", "is-gc") and not params_known:
        family = None  # family/params not statically known: skip
    elif scheme == "is-gc":
        family = family_params.pop("placement", "cr")
    if family is not None:
        from ..core.scheme import placement_spec_problems

        problems.extend(placement_spec_problems(
            family,
            num_workers=n,
            partitions_per_worker=c if c_known else None,
            declared="partitions_per_worker" in data and c_known,
            params=family_params,
        ))

    # ------------------------------------------------------------------
    # Environment sections — dispatched through the environment
    # registry's static hooks, so unknown kinds get the same
    # did-you-mean message ``repro run`` raises and parameter names are
    # checked against the factory signatures.
    from ..env import model_spec_problems

    for layer in ("delay", "failure", "compute", "network", "contention"):
        if layer in unresolved:
            continue
        section = data.get(layer)
        if not section:
            continue
        if layer == "delay" and isinstance(section, Mapping):
            # The engine defaults a kind-less delay section to
            # exponential (the paper's model); validate the same way.
            section = {"kind": "exponential", **section}
        problems.extend(model_spec_problems(layer, section, section=layer))

    # ------------------------------------------------------------------
    # wait_for sanity (Theorems 10/11 bound α(G[W']) for 1 <= w <= n).
    if "wait_for" not in unresolved:
        w = data.get("wait_for")
        if w is None:
            if scheme in WAITING_SCHEMES:
                problems.append(
                    f"scheme {scheme!r} waits for w workers each round; "
                    "set wait_for (1 <= w <= n)"
                )
            elif data.get("rule") == "adaptive":
                problems.append(
                    "rule 'adaptive' ranks placements for a target w; "
                    "set wait_for (1 <= w <= n)"
                )
        else:
            w = _as_int(w)
            if w is None or not 1 <= w <= n:
                problems.append(
                    f"wait_for must satisfy 1 <= w <= n = {n} (the "
                    "Theorem 10/11 recovery bounds are defined only "
                    "there, and more than n workers can never arrive); "
                    f"got {data.get('wait_for')!r}"
                )
    return problems


@spec_rule(
    "SPEC001",
    name="infeasible-spec-file",
    description=(
        "A JSON/TOML ExperimentSpec document violates a placement or "
        "bound constraint and would fail (or degenerate) at run time."
    ),
)
def check_spec_file(ctx: SpecContext, rule: Rule) -> List[Finding]:
    """Validate one spec document against the placement constraints."""
    return [
        ctx.finding(rule, problem)
        for problem in spec_feasibility_problems(ctx.data)
    ]


def _literal(node: ast.AST) -> Any:
    try:
        return ast.literal_eval(node)
    except (ValueError, SyntaxError):
        return _UNRESOLVED


_UNRESOLVED = object()


@python_rule(
    "SPEC002",
    name="infeasible-spec-literal",
    description=(
        "A literal ExperimentSpec(...) construction violates a "
        "placement or bound constraint (tests are exempt — they build "
        "invalid specs on purpose)."
    ),
    exclude=("test_", "conftest.py"),
)
def check_spec_literals(ctx: PythonContext, rule: Rule) -> List[Finding]:
    """Validate literal ``ExperimentSpec(...)`` calls without running."""
    findings = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        if terminal_name(node.func) != "ExperimentSpec":
            continue
        if node.args or any(kw.arg is None for kw in node.keywords):
            continue  # positional or **splat construction: not literal
        data = {}
        unresolved = set()
        for kw in node.keywords:
            value = _literal(kw.value)
            if value is _UNRESOLVED:
                unresolved.add(kw.arg)
            else:
                data[kw.arg] = value
        if "scheme" not in data or "num_workers" not in data:
            continue  # cannot reason statically about this one
        for problem in spec_feasibility_problems(
            data, unresolved=frozenset(unresolved)
        ):
            findings.append(ctx.finding(rule, node, problem))
    return findings
