"""Spec-feasibility rules (SPEC0xx).

An :class:`~repro.engine.spec.ExperimentSpec` can describe a placement
that cannot exist: ``CR(n, c)`` with ``c = n`` (every pair of workers
conflicts — Theorem 1 leaves at most one usable payload), ``FR``
without ``c | n``, an HR split violating Theorem 5–7's group
constraints, or a ``wait_for`` outside the ``1 ≤ w ≤ n`` range in
which the Theorem 10/11 recovery bounds are even defined.  Today such
a spec fails deep inside a run — or worse, silently degenerates.
These rules validate spec *documents* (``examples/specs/*.json`` /
``.toml``) and literal ``ExperimentSpec(...)`` constructions without
executing anything:

* ``SPEC001`` — an infeasible JSON/TOML spec file;
* ``SPEC002`` — an infeasible literal ``ExperimentSpec(...)`` call in
  non-test Python code (tests construct invalid specs on purpose).

:func:`spec_feasibility_problems` is the shared validator; every
message cites the violated constraint so the fix is obvious from the
report alone.
"""

from __future__ import annotations

import ast
from typing import Any, FrozenSet, List, Mapping

from .engine import PythonContext, Rule, SpecContext, python_rule, spec_rule, terminal_name
from .findings import Finding

#: Schemes whose placement constraints the validator knows statically.
#: Third-party registered schemes are skipped (their constraints live
#: in their own factories).
KNOWN_SCHEMES = frozenset({
    "sync-sgd", "is-sgd", "gc", "is-gc-fr", "is-gc-cr", "is-gc-hr",
})

#: Schemes that wait for ``w`` workers and therefore need ``wait_for``.
WAITING_SCHEMES = frozenset({
    "is-sgd", "is-gc-fr", "is-gc-cr", "is-gc-hr",
})


def _as_int(value: Any) -> "int | None":
    if isinstance(value, bool) or not isinstance(value, int):
        return None
    return value


def spec_feasibility_problems(
    data: Mapping[str, Any],
    unresolved: FrozenSet[str] = frozenset(),
) -> List[str]:
    """Constraint violations of one spec mapping, as messages.

    Purely arithmetic — nothing is imported or executed, so the checks
    are safe on untrusted input.  ``unresolved`` names spec fields
    whose values were not statically known (e.g. a computed
    ``wait_for`` in a literal spec); checks involving them are skipped
    rather than guessed at.
    """
    problems: List[str] = []
    scheme = data.get("scheme")
    n = _as_int(data.get("num_workers"))
    if n is None or n < 1:
        problems.append(
            f"num_workers must be a positive integer, got "
            f"{data.get('num_workers')!r}"
        )
        return problems  # everything below needs a valid n

    c = _as_int(data.get("partitions_per_worker", 1))
    c_known = "partitions_per_worker" not in unresolved
    if c_known and (c is None or not 1 <= c <= n):
        problems.append(
            f"partitions_per_worker must satisfy 1 <= c <= n "
            f"(each worker stores c of the n partitions); got "
            f"c={data.get('partitions_per_worker')!r}, n={n}"
        )
        c_known = False

    # ------------------------------------------------------------------
    # Placement feasibility per scheme.
    if scheme in ("gc", "is-gc-cr") and c_known and c >= n:
        problems.append(
            f"CR placement requires 1 <= c < n: with c = n = {n} every "
            f"pair of workers shares a partition (Theorem 1: conflict "
            f"iff circular distance < c), so at most one payload is "
            f"ever decodable"
        )
    if scheme == "is-gc-fr" and c_known and n % c != 0:
        problems.append(
            f"FR placement requires c | n (Sec. III: workers form n/c "
            f"groups of c replicas); got n={n}, c={c}"
        )
    if scheme == "is-gc-hr" and "scheme_params" not in unresolved:
        params = data.get("scheme_params") or {}
        if not isinstance(params, Mapping):
            problems.append(
                f"scheme_params must be a mapping, got {params!r}"
            )
            params = {}
        c1 = _as_int(params.get("c1"))
        c2 = _as_int(params.get("c2"))
        g = _as_int(params.get("num_groups"))
        if c1 is None or c2 is None or g is None:
            problems.append(
                "scheme 'is-gc-hr' needs integer scheme_params c1, c2 "
                "and num_groups (HR(n, c1, c2) with g groups, Sec. VI)"
            )
        else:
            problems.extend(_hr_problems(n, c1, c2, g))
            declared = _as_int(data.get("partitions_per_worker"))
            if (
                "partitions_per_worker" in data
                and c_known
                and declared != c1 + c2
            ):
                problems.append(
                    f"HR spec declares partitions_per_worker={declared} "
                    f"but the placement stores c1 + c2 = {c1 + c2} "
                    f"partitions per worker; make them agree"
                )

    # ------------------------------------------------------------------
    # wait_for sanity (Theorems 10/11 bound α(G[W']) for 1 <= w <= n).
    if "wait_for" not in unresolved:
        w = data.get("wait_for")
        if w is None:
            if scheme in WAITING_SCHEMES:
                problems.append(
                    f"scheme {scheme!r} waits for w workers each round; "
                    f"set wait_for (1 <= w <= n)"
                )
            elif data.get("rule") == "adaptive":
                problems.append(
                    "rule 'adaptive' ranks placements for a target w; "
                    "set wait_for (1 <= w <= n)"
                )
        else:
            w = _as_int(w)
            if w is None or not 1 <= w <= n:
                problems.append(
                    f"wait_for must satisfy 1 <= w <= n = {n} (the "
                    f"Theorem 10/11 recovery bounds are defined only "
                    f"there, and more than n workers can never arrive); "
                    f"got {data.get('wait_for')!r}"
                )
    return problems


def _hr_problems(n: int, c1: int, c2: int, g: int) -> List[str]:
    """Theorem 5–7 feasibility of ``HR(n, c1, c2)`` with ``g`` groups."""
    problems: List[str] = []
    if c1 < 0 or c2 < 0 or c1 + c2 < 1:
        problems.append(
            f"HR needs c1, c2 >= 0 with c = c1 + c2 >= 1; got "
            f"c1={c1}, c2={c2}"
        )
        return problems
    if g < 1 or n % g != 0:
        problems.append(
            f"HR requires g | n (workers split into g equal groups, "
            f"Sec. VI); got n={n}, num_groups={g}"
        )
        return problems
    n0 = n // g
    c = c1 + c2
    if c > n:
        problems.append(
            f"HR needs c = c1 + c2 <= n; got c={c}, n={n}"
        )
        return problems
    if c1 > 0 and g > 1:
        if c > n0:
            problems.append(
                f"HR requires c <= n0 = n/g (Theorem 5: a group must "
                f"hold all its partitions); got c={c}, n0={n0}"
            )
        if c1 > n0:
            problems.append(
                f"HR upper part needs c1 <= n0 (at most one within-group "
                f"wrap); got c1={c1}, n0={n0}"
            )
        if c2 > 0 and n0 > c + c1:
            problems.append(
                f"general HR needs n0 <= c + c1 (Theorem 6 within-group "
                f"completeness: workers of one group must pairwise "
                f"conflict); got n0={n0}, c={c}, c1={c1}"
            )
    return problems


@spec_rule(
    "SPEC001",
    name="infeasible-spec-file",
    description=(
        "A JSON/TOML ExperimentSpec document violates a placement or "
        "bound constraint and would fail (or degenerate) at run time."
    ),
)
def check_spec_file(ctx: SpecContext, rule: Rule) -> List[Finding]:
    """Validate one spec document against the placement constraints."""
    return [
        ctx.finding(rule, problem)
        for problem in spec_feasibility_problems(ctx.data)
    ]


def _literal(node: ast.AST) -> Any:
    try:
        return ast.literal_eval(node)
    except (ValueError, SyntaxError):
        return _UNRESOLVED


_UNRESOLVED = object()


@python_rule(
    "SPEC002",
    name="infeasible-spec-literal",
    description=(
        "A literal ExperimentSpec(...) construction violates a "
        "placement or bound constraint (tests are exempt — they build "
        "invalid specs on purpose)."
    ),
    exclude=("test_", "conftest.py"),
)
def check_spec_literals(ctx: PythonContext, rule: Rule) -> List[Finding]:
    """Validate literal ``ExperimentSpec(...)`` calls without running."""
    findings = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        if terminal_name(node.func) != "ExperimentSpec":
            continue
        if node.args or any(kw.arg is None for kw in node.keywords):
            continue  # positional or **splat construction: not literal
        data = {}
        unresolved = set()
        for kw in node.keywords:
            value = _literal(kw.value)
            if value is _UNRESOLVED:
                unresolved.add(kw.arg)
            else:
                data[kw.arg] = value
        if "scheme" not in data or "num_workers" not in data:
            continue  # cannot reason statically about this one
        for problem in spec_feasibility_problems(
            data, unresolved=frozenset(unresolved)
        ):
            findings.append(ctx.finding(rule, node, problem))
    return findings
