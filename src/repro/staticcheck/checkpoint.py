"""Checkpoint-coverage rule (CKPT001).

:meth:`repro.engine.RoundEngine.snapshot` promises to capture *every*
piece of mutable run state, and :data:`repro.engine.state.
CHECKPOINT_COVERED` is the authoritative registry of the attributes
that promise covers (plus :data:`~repro.engine.state.
CHECKPOINT_TRANSIENT` for within-round scratch).  The failure mode the
registry exists for is silent: someone adds ``self._warmup_left = ...``
to a run-path method, every test that runs start-to-finish still
passes, and only a job that happens to be suspended and resumed across
that state diverges — bit-for-bit determinism of resume is exactly the
property the serve layer's eviction/crash-recovery machinery stands
on.

``CKPT001`` closes the loop statically: every attribute assignment on
an engine / update-rule / backend instance inside a *run-path* method
of the engine layer must name an attribute in the registry.  Setup and
lifecycle methods are exempt (``__init__``/``bind``/``start*`` run
before any state exists to lose; ``snapshot*``/``restore*``/``reset*``
*are* the checkpoint machinery), so the audit falls precisely on the
code that mutates live run state.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from .engine import PythonContext, Rule, python_rule
from .findings import Finding

#: The engine-layer files whose classes own checkpointable run state,
#: mapped to the registry kind their ``self`` corresponds to.
_KIND_BY_FILE = {
    "repro/engine/core.py": "engine",
    "repro/engine/rules.py": "rule",
    "repro/engine/backends.py": "backend",
}

CKPT_SCOPE = tuple(_KIND_BY_FILE)

#: Methods whose assignments are construction/lifecycle, not run-path
#: mutation: exact names, plus the prefixes below.
_EXEMPT_NAMES = frozenset({"__init__", "__post_init__", "bind"})
_EXEMPT_PREFIXES = ("snapshot", "restore", "reset", "start", "_restore")


def _is_exempt(method: str) -> bool:
    return method in _EXEMPT_NAMES or method.startswith(_EXEMPT_PREFIXES)


def _owner_kind(target: ast.AST, self_kind: str) -> Optional[str]:
    """The registry kind for an attribute assignment target, if any.

    ``self.X`` is audited against the file's own kind; ``engine.X`` —
    the convention rule/backend hooks use for their
    :class:`~repro.engine.RoundEngine` parameter — against the engine
    kind.
    """
    if not isinstance(target, ast.Attribute):
        return None
    value = target.value
    if not isinstance(value, ast.Name):
        return None
    if value.id == "self":
        return self_kind
    if value.id == "engine":
        return "engine"
    return None


@python_rule(
    "CKPT001",
    name="run-state-not-checkpointed",
    description=(
        "An engine-layer run-path method assigns an instance attribute "
        "that repro.engine.state.CHECKPOINT_COVERED does not list — "
        "snapshot() would silently drop it and resumed jobs would "
        "diverge from uninterrupted ones.  Capture it in snapshot() "
        "and add it to the registry, or list it in "
        "CHECKPOINT_TRANSIENT if it never lives across a round "
        "boundary."
    ),
    scope=CKPT_SCOPE,
)
def check_checkpoint_coverage(
    ctx: PythonContext, rule: Rule
) -> List[Finding]:
    """Audit run-path attribute assignments against the registry."""
    # Lazy import: the registry lives beside the engine it describes,
    # and the checker must not pull the engine layer in at import time
    # (staticcheck stays importable on its own).
    from ..engine.state import CHECKPOINT_COVERED, CHECKPOINT_TRANSIENT

    self_kind = next(
        (k for f, k in _KIND_BY_FILE.items() if f in ctx.scope_path),
        None,
    )
    if self_kind is None:  # pragma: no cover - scope gate already ran
        return []
    allowed = {
        kind: CHECKPOINT_COVERED[kind] | CHECKPOINT_TRANSIENT[kind]
        for kind in CHECKPOINT_COVERED
    }
    findings = []

    class Visitor(ast.NodeVisitor):
        """Walks class methods, auditing assignments in run paths."""

        def __init__(self) -> None:
            self.method: Optional[str] = None

        def visit_ClassDef(self, node: ast.ClassDef) -> None:
            for item in node.body:
                if isinstance(
                    item, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    self.method = item.name
                    self.generic_visit(item)
                    self.method = None

        def _audit(self, target: ast.AST, node: ast.AST) -> None:
            if self.method is None or _is_exempt(self.method):
                return
            kind = _owner_kind(target, self_kind)
            if kind is None:
                return
            attr = target.attr  # type: ignore[union-attr]
            if attr in allowed[kind]:
                return
            owner = "self" if kind == self_kind else "engine"
            findings.append(ctx.finding(
                rule, node,
                f"{self.method}() assigns {owner}.{attr}, which "
                f"CHECKPOINT_COVERED[{kind!r}] does not list — "
                "snapshot() will not capture it; add it to the "
                "snapshot and the registry (repro/engine/state.py), "
                "or to CHECKPOINT_TRANSIENT if it never survives a "
                "round boundary",
            ))

        def visit_Assign(self, node: ast.Assign) -> None:
            for target in node.targets:
                self._audit(target, node)
            self.generic_visit(node)

        def visit_AugAssign(self, node: ast.AugAssign) -> None:
            self._audit(node.target, node)
            self.generic_visit(node)

        def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
            self._audit(node.target, node)
            self.generic_visit(node)

    Visitor().visit(ctx.tree)
    return findings
