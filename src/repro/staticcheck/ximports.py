"""Import-layer hygiene rules (XIMP0xx), over the project index.

* ``XIMP001`` — module-level import cycles.  Python tolerates some
  cycles by accident of import order; they make partially-initialised
  modules observable and break under refactors, so the graph must stay
  acyclic (function-level imports are the sanctioned escape hatch and
  are not edges here).
* ``XIMP002`` — layering: the foundation layers must not reach up into
  the orchestration layers (``repro.core``/``repro.codes``/
  ``repro.graphs`` importing ``repro.engine`` or ``repro.cli``, or
  anything importing ``repro.staticcheck`` outside the CLI).  The
  checked code must never depend on its checker.
* ``XIMP003`` — stale re-exports: a shim module lists a name in
  ``__all__`` it never binds, or ``from``-imports a symbol an indexed
  module does not define (modules with wildcard imports or a module
  ``__getattr__`` are skipped — their namespace is not statically
  knowable).
"""

from __future__ import annotations

from typing import List

from .engine import Rule, project_wide_rule
from .findings import Finding
from .project import ProjectContext

#: importer-prefix → forbidden-import-prefixes (the layering contract).
_FORBIDDEN_LAYERS = {
    "repro.core": ("repro.engine", "repro.cli"),
    "repro.codes": ("repro.engine", "repro.cli"),
    "repro.graphs": ("repro.engine", "repro.cli", "repro.env"),
    "repro.types": ("repro.engine", "repro.cli"),
    "repro.exceptions": ("repro.engine", "repro.cli"),
}

#: the checker itself may only be imported by the CLI and its own tests.
_CHECKER_PREFIX = "repro.staticcheck"
_CHECKER_IMPORTERS = ("repro.staticcheck", "repro.cli", "repro.__main__")


def _within(name: str, prefix: str) -> bool:
    return name == prefix or name.startswith(prefix + ".")


def _is_test_module(name: str, scope_path: str) -> bool:
    stem = name.rsplit(".", 1)[-1]
    if stem.startswith(("test_", "bench_")) or stem == "conftest":
        return True
    return "tests/" in scope_path or "benchmarks/" in scope_path


@project_wide_rule(
    "XIMP001",
    name="import-cycle",
    description=(
        "Module-level import cycle: every module in the cycle can "
        "observe a partially initialised peer depending on which entry "
        "point imports first. Break the cycle or demote one edge to a "
        "function-level import."
    ),
)
def check_import_cycle(ctx: ProjectContext, rule: Rule) -> List[Finding]:
    """Flag import cycles among indexed project modules."""
    findings: List[Finding] = []
    for cycle in ctx.index.import_cycles():
        chain = " -> ".join(cycle + [cycle[0]])
        for name in cycle:
            info = ctx.index.modules[name]
            findings.append(ctx.finding(
                rule, info, 1,
                f"module-level import cycle: {chain}",
            ))
    return findings


@project_wide_rule(
    "XIMP002",
    name="layer-violation",
    description=(
        "A foundation-layer module imports an orchestration-layer one "
        "(e.g. repro.core reaching into repro.engine), inverting the "
        "dependency direction the architecture relies on; repro."
        "staticcheck may only be imported by the CLI — checked code "
        "must never depend on its checker."
    ),
)
def check_layer_violation(
    ctx: ProjectContext, rule: Rule
) -> List[Finding]:
    """Enforce the layering contract between repro packages."""
    findings: List[Finding] = []
    for name in sorted(ctx.index.modules):
        info = ctx.index.modules[name]
        forbidden = tuple(
            target
            for prefix, targets in _FORBIDDEN_LAYERS.items()
            if _within(name, prefix)
            for target in targets
        )
        for imported in sorted(info.all_imports):
            for target in forbidden:
                if _within(imported, target):
                    findings.append(ctx.finding(
                        rule, info, 1,
                        f"{name} imports {imported}: foundation layers "
                        f"must not depend on {target}",
                    ))
            if (
                _within(imported, _CHECKER_PREFIX)
                and not any(
                    _within(name, ok) for ok in _CHECKER_IMPORTERS
                )
                and not _is_test_module(name, info.scope_path)
            ):
                findings.append(ctx.finding(
                    rule, info, 1,
                    f"{name} imports {imported}: only the CLI may "
                    "depend on the static checker",
                ))
    return findings


@project_wide_rule(
    "XIMP003",
    name="stale-reexport",
    description=(
        "A shim module re-exports a name that no longer exists: "
        "__all__ lists an unbound name, or a from-import names a "
        "symbol the source module does not define. The shim works "
        "until someone touches it; fix the name or drop the "
        "re-export."
    ),
)
def check_stale_reexport(
    ctx: ProjectContext, rule: Rule
) -> List[Finding]:
    """Flag re-exports of names their source module no longer defines."""
    findings: List[Finding] = []
    for name in sorted(ctx.index.modules):
        info = ctx.index.modules[name]
        if info.has_wildcard_import or info.has_module_getattr:
            continue
        for exported in sorted(info.exported):
            if exported not in info.symbols:
                findings.append(ctx.finding(
                    rule, info, 1,
                    f"__all__ lists {exported!r} but {name} never "
                    "binds it",
                ))
        for local, target in sorted(info.aliases.items()):
            if "." not in target:
                continue
            source_mod, _, symbol = target.rpartition(".")
            source = ctx.index.modules.get(source_mod)
            if source is None or not symbol:
                continue
            # ``from pkg import submodule`` binds a module, not a
            # symbol — fine whenever the submodule is indexed.
            if f"{source_mod}.{symbol}" in ctx.index.modules:
                continue
            if source.has_wildcard_import or source.has_module_getattr:
                continue
            if symbol not in source.symbols:
                findings.append(ctx.finding(
                    rule, info, 1,
                    f"{name} imports {symbol!r} from {source_mod}, "
                    "which does not define it (stale re-export?)",
                ))
    return findings
