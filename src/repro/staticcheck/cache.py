"""The incremental analysis cache behind ``repro check --cache``.

One JSON file (``.repro-check-cache.json`` by default) holding four
stores, all keyed by content:

* **file findings** — per-file check results keyed by the file's
  content hash (a changed byte anywhere in the file, including a new
  ``noqa`` comment, invalidates exactly that file);
* **index shards** — each module's parsed :class:`~repro.staticcheck.
  project.ModuleInfo` shard plus its local dataflow summary, keyed by
  the same content hash (a warm run rebuilds the whole project index
  without re-parsing a single unchanged module);
* **per-module project findings** — FLOW results keyed by the module's
  *import-closure digest*, so editing ``repro.core.decoders``
  transitively invalidates every module that imports it, and nothing
  else;
* **project-wide findings** — XREG/XIMP results keyed by a digest over
  every module plus the auxiliary evidence files (goldens, docs
  catalogues).

The whole cache is dropped whenever the **ruleset signature** changes —
registered rule ids, the ``--select`` set, or the cache schema version —
so stale semantics can never leak through a content match.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional

from .findings import Finding
from .project import content_hash

#: bump when the cached shapes change incompatibly.
CACHE_SCHEMA_VERSION = 1

#: default cache location, relative to the working directory.
DEFAULT_CACHE_PATH = ".repro-check-cache.json"


class AnalysisCache:
    """Content-addressed store for findings and index shards."""

    def __init__(self, path: "str | Path" = DEFAULT_CACHE_PATH):
        self.path = Path(path)
        self.data: Dict[str, Any] = self._empty()
        self._dirty = False
        self._load()

    @staticmethod
    def _empty() -> Dict[str, Any]:
        return {
            "schema": CACHE_SCHEMA_VERSION,
            "ruleset": None,
            "files": {},
            "shards": {},
            "module_findings": {},
            "project_findings": None,
        }

    def _load(self) -> None:
        try:
            loaded = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if (
            isinstance(loaded, dict)
            and loaded.get("schema") == CACHE_SCHEMA_VERSION
        ):
            self.data = loaded

    def save(self) -> None:
        """Persist the cache (only when something changed)."""
        if not self._dirty:
            return
        try:
            self.path.write_text(
                json.dumps(self.data, sort_keys=True), encoding="utf-8"
            )
            self._dirty = False
        except OSError:  # pragma: no cover - read-only checkouts
            pass

    def clear(self) -> None:
        """Drop everything (ruleset change, ``--no-cache`` rebuild)."""
        self.data = self._empty()
        self._dirty = True

    # -- validity ------------------------------------------------------

    def ensure_ruleset(self, signature: str) -> None:
        """Invalidate the whole cache if the ruleset changed."""
        if self.data.get("ruleset") != signature:
            self.clear()
            self.data["ruleset"] = signature

    # -- per-file findings ---------------------------------------------

    def get_file_findings(
        self, path: str, text: str
    ) -> Optional[List[Finding]]:
        """Cached per-file findings, or ``None`` on hash mismatch."""
        entry = self.data["files"].get(path)
        if entry is None or entry["hash"] != content_hash(text):
            return None
        return [Finding.from_dict(d) for d in entry["findings"]]

    def put_file_findings(
        self, path: str, text: str, findings: List[Finding]
    ) -> None:
        """Store per-file findings keyed by the file's content hash."""
        self.data["files"][path] = {
            "hash": content_hash(text),
            "findings": [f.to_dict() for f in findings],
        }
        self._dirty = True

    # -- index shards ---------------------------------------------------

    def get_shard(
        self, path: str, file_hash: str
    ) -> Optional[Mapping[str, Any]]:
        """Cached :class:`ModuleInfo` shard, or ``None`` on mismatch."""
        entry = self.data["shards"].get(path)
        if entry is None or entry["hash"] != file_hash:
            return None
        return entry["module"]

    def get_summary(
        self, path: str, file_hash: str
    ) -> Optional[Dict[str, Any]]:
        """Cached local dataflow summary (deep-copied), or ``None``."""
        entry = self.data["shards"].get(path)
        if entry is None or entry["hash"] != file_hash:
            return None
        # deep-copied via JSON so propagation never mutates the store.
        return json.loads(json.dumps(entry["summary"]))

    def put_shard(
        self,
        path: str,
        file_hash: str,
        module_shard: Mapping[str, Any],
        summary: Mapping[str, Any],
    ) -> None:
        """Store a module's index shard and local dataflow summary."""
        self.data["shards"][path] = {
            "hash": file_hash,
            "module": dict(module_shard),
            "summary": json.loads(json.dumps(summary)),
        }
        self._dirty = True

    # -- per-module project findings -----------------------------------

    def get_module_findings(
        self, path: str, closure_digest: str
    ) -> Optional[List[Finding]]:
        """Cached per-module project findings keyed by closure digest."""
        entry = self.data["module_findings"].get(path)
        if entry is None or entry["digest"] != closure_digest:
            return None
        return [Finding.from_dict(d) for d in entry["findings"]]

    def put_module_findings(
        self, path: str, closure_digest: str, findings: List[Finding]
    ) -> None:
        """Store per-module project findings under a closure digest."""
        self.data["module_findings"][path] = {
            "digest": closure_digest,
            "findings": [f.to_dict() for f in findings],
        }
        self._dirty = True

    # -- project-wide findings -----------------------------------------

    def get_project_findings(
        self, digest: str
    ) -> Optional[List[Finding]]:
        """Cached project-wide findings, or ``None`` on digest change."""
        entry = self.data.get("project_findings")
        if entry is None or entry["digest"] != digest:
            return None
        return [Finding.from_dict(d) for d in entry["findings"]]

    def put_project_findings(
        self, digest: str, findings: List[Finding]
    ) -> None:
        """Store project-wide findings under the global index digest."""
        self.data["project_findings"] = {
            "digest": digest,
            "findings": [f.to_dict() for f in findings],
        }
        self._dirty = True
