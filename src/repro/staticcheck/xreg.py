"""Cross-module registry completeness rules (XREG0xx).

The registries (``repro.core.scheme``'s placement families,
``repro.env``'s five environment layers) are the project's extension
surface: a family registered by name is reachable from specs, the CLI
and fingerprints.  That reach comes with obligations this family
checks **by index, without running anything**:

* ``XREG001`` — every ``@register_placement`` class defines or
  inherits ``spec_problems`` (the static spec-feasibility hook that
  lets ``repro check`` validate specs naming the family);
* ``XREG002`` — every registered family has a golden-fingerprint entry
  (``tests/golden/placement_schemes.json`` /
  ``tests/golden/environments.json``); registered absences (factories
  that only ever return ``None``, like the ``none`` contention model)
  are exempt — there is no object to fingerprint;
* ``XREG003`` — every registered family has a catalogue row in
  ``docs/placements.md`` / ``docs/environments.md``;
* ``XREG004`` — no two registrations of the same kind claim the same
  name or alias (a duplicate silently shadows, first-import wins).

The evidence files are read through :meth:`ProjectContext.aux_text`,
so fixtures can inject them and a missing file is only reported when
the context actually knows the repository root.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from .engine import Rule, project_wide_rule
from .findings import Finding
from .project import ModuleInfo, ProjectContext, Registration

#: registry kind → (golden evidence file, docs catalogue file).
_EVIDENCE = {
    "placement": (
        "tests/golden/placement_schemes.json", "docs/placements.md"
    ),
    "delay": ("tests/golden/environments.json", "docs/environments.md"),
    "failure": ("tests/golden/environments.json", "docs/environments.md"),
    "compute": ("tests/golden/environments.json", "docs/environments.md"),
    "network": ("tests/golden/environments.json", "docs/environments.md"),
    "contention": (
        "tests/golden/environments.json", "docs/environments.md"
    ),
}


def _registrations(
    ctx: ProjectContext,
) -> List[Tuple[ModuleInfo, Registration]]:
    out = []
    for name in sorted(ctx.index.modules):
        info = ctx.index.modules[name]
        for reg in info.registrations:
            out.append((info, reg))
    return out


def _golden_names(ctx: ProjectContext, relpath: str) -> Optional[set]:
    """Family names pinned by a golden file (``None`` = unavailable)."""
    text = ctx.aux_text(relpath)
    if text is None:
        return None
    try:
        data = json.loads(text)
    except ValueError:
        return set()
    names = set()
    for case in data.get("cases", []):
        for key in ("family", "kind"):
            value = case.get(key)
            if isinstance(value, str):
                names.add(value)
    return names


def _aux_known_missing(ctx: ProjectContext, relpath: str) -> bool:
    """True when the evidence file is *known* absent (repo root in
    hand, or a fixture explicitly injected ``None``)."""
    if relpath in ctx.aux:
        return ctx.aux[relpath] is None
    return ctx.root is not None


@project_wide_rule(
    "XREG001",
    name="registry-spec-hook",
    description=(
        "Every @register_placement family must define or inherit "
        "spec_problems, the hook that lets `repro check` validate "
        "specs naming the family without constructing anything."
    ),
)
def check_registry_spec_hook(
    ctx: ProjectContext, rule: Rule
) -> List[Finding]:
    """Require a spec_problems hook on every registered placement class."""
    findings: List[Finding] = []
    for info, reg in _registrations(ctx):
        if reg.kind != "placement":
            continue
        if not ctx.index.class_defines(
            info.name, reg.symbol, "spec_problems"
        ):
            findings.append(ctx.finding(
                rule, info, reg.lineno,
                f"placement family {reg.name!r} ({reg.symbol}) neither "
                "defines nor inherits spec_problems; specs naming it "
                "cannot be statically validated",
            ))
    return findings


@project_wide_rule(
    "XREG002",
    name="registry-golden-entry",
    description=(
        "Every registered family must be pinned by a golden "
        "fingerprint entry under tests/golden/ so registry "
        "construction stays bit-for-bit stable across refactors "
        "(factories that only return None are exempt: a registered "
        "absence has nothing to fingerprint)."
    ),
)
def check_registry_golden_entry(
    ctx: ProjectContext, rule: Rule
) -> List[Finding]:
    """Require a golden-fingerprint entry for every registration."""
    findings: List[Finding] = []
    golden: Dict[str, Optional[set]] = {}
    for info, reg in _registrations(ctx):
        evidence = _EVIDENCE.get(reg.kind)
        if evidence is None or reg.returns_none:
            continue
        relpath = evidence[0]
        if relpath not in golden:
            golden[relpath] = _golden_names(ctx, relpath)
        names = golden[relpath]
        if names is None:
            if _aux_known_missing(ctx, relpath):
                findings.append(ctx.finding(
                    rule, info, reg.lineno,
                    f"{reg.kind} family {reg.name!r} has no golden "
                    f"fingerprint file ({relpath} is missing)",
                ))
            continue
        if reg.name not in names and not (set(reg.aliases) & names):
            findings.append(ctx.finding(
                rule, info, reg.lineno,
                f"{reg.kind} family {reg.name!r} has no golden "
                f"fingerprint entry in {relpath}; registry construction "
                "for it is not pinned",
            ))
    return findings


@project_wide_rule(
    "XREG003",
    name="registry-docs-row",
    description=(
        "Every registered family must have a catalogue row in "
        "docs/placements.md or docs/environments.md — the registries "
        "are the extension surface and the catalogues are their "
        "contract with users."
    ),
)
def check_registry_docs_row(
    ctx: ProjectContext, rule: Rule
) -> List[Finding]:
    """Require a docs-catalogue mention for every registration."""
    findings: List[Finding] = []
    for info, reg in _registrations(ctx):
        evidence = _EVIDENCE.get(reg.kind)
        if evidence is None:
            continue
        relpath = evidence[1]
        text = ctx.aux_text(relpath)
        if text is None:
            if _aux_known_missing(ctx, relpath):
                findings.append(ctx.finding(
                    rule, info, reg.lineno,
                    f"{reg.kind} family {reg.name!r} is uncatalogued "
                    f"({relpath} is missing)",
                ))
            continue
        mentions = [f"`{reg.name}`"] + [f"`{a}`" for a in reg.aliases]
        if not any(m in text for m in mentions):
            findings.append(ctx.finding(
                rule, info, reg.lineno,
                f"{reg.kind} family {reg.name!r} has no catalogue row "
                f"in {relpath} (expected a `{reg.name}` mention)",
            ))
    return findings


@project_wide_rule(
    "XREG004",
    name="registry-name-collision",
    description=(
        "Two registrations of the same kind claim the same name or "
        "alias; whichever module imports first silently shadows the "
        "other."
    ),
)
def check_registry_name_collision(
    ctx: ProjectContext, rule: Rule
) -> List[Finding]:
    """Flag two registrations claiming the same (kind, name)."""
    findings: List[Finding] = []
    claimed: Dict[Tuple[str, str], Tuple[ModuleInfo, Registration]] = {}
    for info, reg in _registrations(ctx):
        for name in (reg.name, *reg.aliases):
            key = (reg.kind, name)
            prior = claimed.get(key)
            if prior is None:
                claimed[key] = (info, reg)
                continue
            prior_info, prior_reg = prior
            findings.append(ctx.finding(
                rule, info, reg.lineno,
                f"{reg.kind} name {name!r} registered by {reg.symbol} "
                f"collides with {prior_reg.symbol} "
                f"({prior_info.path}:{prior_reg.lineno})",
            ))
    return findings
