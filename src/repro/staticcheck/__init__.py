"""``repro.staticcheck`` — the project-invariant static-analysis pass.

The two costliest defects in this repo's history were statically
detectable: the absolute-vs-step-relative seconds mismatch fixed in
PR 1, and the strict RNG/seed discipline the PR-2 golden trajectories
depend on.  This package makes those invariants — plus registry
hygiene and spec feasibility — machine-checkable, as ``repro check``:

========  ==============================================================
family    rules
========  ==============================================================
GEN       ``GEN001`` unparseable file
DET       ``DET001`` module-level RNG, ``DET002`` wall-clock reads,
          ``DET003`` unseeded ``default_rng()``, ``DET004`` ordering
          hazards
TIME      ``TIME001`` mixed absolute/step-relative arithmetic,
          ``TIME002`` undocumented time units
REG       ``REG001``/``REG002`` strategies/backends built outside the
          registries, ``REG003`` factory signature round-trip,
          ``REG004`` placements outside the placement registry,
          ``REG005`` environment models outside the env registry
SPEC      ``SPEC001`` infeasible spec files, ``SPEC002`` infeasible
          spec literals
PAR       ``PAR001`` arithmetic per-task seeds at a process-pool
          boundary (use ``SeedSequence.spawn``)
CKPT      ``CKPT001`` engine-layer run-path assignment not covered by
          the ``EngineState`` checkpoint registry
FLOW      whole-project RNG dataflow: ``FLOW001`` Generator into a
          cached/batched kernel, ``FLOW002`` Generator/derived seed
          across a pool dispatch, ``FLOW003`` draw order depending on
          set iteration
XREG      cross-module registry completeness: ``XREG001`` missing
          ``spec_problems``, ``XREG002`` missing golden fingerprint,
          ``XREG003`` missing docs catalogue row, ``XREG004`` name
          collisions
XIMP      import hygiene: ``XIMP001`` cycles, ``XIMP002`` layer
          violations, ``XIMP003`` stale re-exports
========  ==============================================================

The FLOW/XREG/XIMP families run on the whole-project index
(:mod:`repro.staticcheck.project`) with interprocedural dataflow
summaries (:mod:`repro.staticcheck.dataflow`); per-file and per-module
results are cached incrementally (:mod:`repro.staticcheck.cache`) and
invalidated transitively through the import graph.

Suppress a deliberate exception with ``# repro: noqa[RULE]`` on the
offending line (always with a justification comment).  See
``docs/static_analysis.md`` for the full catalogue and how to add a
rule.
"""

from .cache import AnalysisCache, DEFAULT_CACHE_PATH
from .engine import (
    RULE_REGISTRY,
    CheckResult,
    Rule,
    StaticCheckError,
    check_source,
    check_spec_mapping,
    expand_select,
    iter_markdown_blocks,
    iter_source_files,
    noqa_map,
    project_rule,
    project_wide_rule,
    python_rule,
    run_check,
    spec_rule,
)
from .findings import Finding, Severity
from .project import ModuleInfo, ProjectContext, ProjectIndex
from .report import (
    JSON_SCHEMA_VERSION,
    render_catalogue,
    render_json,
    render_text,
    to_json_dict,
)
from .specrules import spec_feasibility_problems

# Importing the rule modules registers their rules.
from . import (  # noqa: F401
    checkpoint,
    determinism,
    parallelism,
    registries,
    specrules,
    timeunits,
)
from . import flowrules, ximports, xreg  # noqa: F401

__all__ = [
    "AnalysisCache",
    "DEFAULT_CACHE_PATH",
    "RULE_REGISTRY",
    "CheckResult",
    "Finding",
    "JSON_SCHEMA_VERSION",
    "ModuleInfo",
    "ProjectContext",
    "ProjectIndex",
    "Rule",
    "Severity",
    "StaticCheckError",
    "check_source",
    "check_spec_mapping",
    "expand_select",
    "iter_markdown_blocks",
    "iter_source_files",
    "noqa_map",
    "project_rule",
    "project_wide_rule",
    "python_rule",
    "render_catalogue",
    "render_json",
    "render_text",
    "run_check",
    "spec_feasibility_problems",
    "spec_rule",
    "to_json_dict",
]
