"""``repro.staticcheck`` — the project-invariant static-analysis pass.

The two costliest defects in this repo's history were statically
detectable: the absolute-vs-step-relative seconds mismatch fixed in
PR 1, and the strict RNG/seed discipline the PR-2 golden trajectories
depend on.  This package makes those invariants — plus registry
hygiene and spec feasibility — machine-checkable, as ``repro check``:

========  ==============================================================
family    rules
========  ==============================================================
GEN       ``GEN001`` unparseable file
DET       ``DET001`` module-level RNG, ``DET002`` wall-clock reads,
          ``DET003`` unseeded ``default_rng()``, ``DET004`` ordering
          hazards
TIME      ``TIME001`` mixed absolute/step-relative arithmetic,
          ``TIME002`` undocumented time units
REG       ``REG001``/``REG002`` strategies/backends built outside the
          registries, ``REG003`` factory signature round-trip,
          ``REG004`` placements outside the placement registry,
          ``REG005`` environment models outside the env registry
SPEC      ``SPEC001`` infeasible spec files, ``SPEC002`` infeasible
          spec literals
PAR       ``PAR001`` arithmetic per-task seeds at a process-pool
          boundary (use ``SeedSequence.spawn``)
========  ==============================================================

Suppress a deliberate exception with ``# repro: noqa[RULE]`` on the
offending line (always with a justification comment).  See
``docs/static_analysis.md`` for the full catalogue and how to add a
rule.
"""

from .engine import (
    RULE_REGISTRY,
    CheckResult,
    Rule,
    StaticCheckError,
    check_source,
    check_spec_mapping,
    iter_source_files,
    noqa_map,
    python_rule,
    run_check,
    spec_rule,
)
from .findings import Finding, Severity
from .report import (
    JSON_SCHEMA_VERSION,
    render_catalogue,
    render_json,
    render_text,
    to_json_dict,
)
from .specrules import spec_feasibility_problems

# Importing the rule modules registers their rules.
from . import determinism, parallelism, registries, specrules, timeunits  # noqa: F401

__all__ = [
    "RULE_REGISTRY",
    "CheckResult",
    "Finding",
    "JSON_SCHEMA_VERSION",
    "Rule",
    "Severity",
    "StaticCheckError",
    "check_source",
    "check_spec_mapping",
    "iter_source_files",
    "noqa_map",
    "python_rule",
    "render_catalogue",
    "render_json",
    "render_text",
    "run_check",
    "spec_feasibility_problems",
    "spec_rule",
    "to_json_dict",
]
