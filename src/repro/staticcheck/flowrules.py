"""Whole-project RNG dataflow rules (FLOW0xx).

These rules run on the project index (:mod:`repro.staticcheck.project`)
with interprocedural dataflow summaries
(:mod:`repro.staticcheck.dataflow`), so they see a
``numpy.random.Generator`` *flow* — through assignments, attributes,
calls and returns — rather than pattern-matching single expressions.

* ``FLOW001`` — a fairness-RNG Generator reaches a deterministic
  cached/batched kernel: an argument (or captured value inside a
  ``compute`` lambda) of a ``DecodeCache`` memoisation call
  (``get_or_compute`` / ``get_or_compute_batch`` / ``Decoder._memo`` /
  ``_memo_batch``) or of a ``repro.core.batch`` kernel carries a
  Generator.  The PR-4/6 contract: memoised kernels must be pure in
  ``(placement, available)`` — a Generator inside one means the second
  identical round *skips the draw* and every stream downstream shifts.
* ``FLOW002`` — a raw Generator or an arithmetically derived seed
  crosses a process-pool dispatch (``submit``/``map``/… or a
  ``SweepExecutor.run``).  Generators do not survive pickling with
  their stream intact, and ``seed + i`` children are correlated; ship
  parent-spawned ``SeedSequence`` children instead (this deepens the
  per-file PAR001 boundary heuristic with assignment-aware flow).
* ``FLOW003`` — a Generator is consumed inside a loop over a set (or
  set-returning expression), so the *order* of draws depends on hash
  iteration order; iterate a sorted view instead.
"""

from __future__ import annotations

import ast
from typing import Any, Callable, Iterator, List, Mapping, Optional, Tuple

from .dataflow import (
    DERIVED_SEED,
    GEN,
    _NON_CONSUMING_METHODS,
    ExprTags,
    _class_attr_tags,
    _iter_functions,
    build_env,
    make_summary_lookup,
    param_tags_for,
)
from .engine import Rule, dotted_name, project_rule
from .findings import Finding
from .parallelism import _DISPATCH_METHODS
from .project import ModuleInfo, ProjectContext

#: memoisation entry points of the decode layer (``repro.parallel.
#: cache.DecodeCache`` and the ``Decoder._memo*`` helpers over it).
_MEMO_METHODS = frozenset({
    "get_or_compute", "get_or_compute_batch", "_memo", "_memo_batch",
})

#: the batched-kernel module: every function there is a deterministic
#: whole-round kernel and must never see a Generator.
_BATCH_MODULE = "repro.core.batch"

#: receiver names that mark a ``.run(...)`` / ``.submit(...)`` call as
#: a pool dispatch even without a visible pool constructor.
_POOLISH_FRAGMENTS = ("pool", "executor")

#: set-producing call names whose iteration order is hash-dependent.
_SET_CALLS = frozenset({
    "set", "frozenset", "intersection", "union", "difference",
    "symmetric_difference",
})


def _function_scope(
    info: ModuleInfo,
    ctx: ProjectContext,
    cls: Optional[str],
    node: ast.AST,
    class_attrs: Mapping[str, Any],
) -> Tuple[ExprTags, Callable[[str], Optional[Mapping[str, Any]]]]:
    """Build the tag environment + local-name summary resolver for one
    function body."""
    fq_lookup = make_summary_lookup(ctx.summaries, ctx.index)

    def local_lookup(dotted: str) -> Optional[Mapping[str, Any]]:
        if dotted.startswith("self.") and cls is not None:
            return (
                ctx.summaries.get(info.name, {})
                .get("functions", {})
                .get(f"{cls}.{dotted[5:]}")
            )
        head = dotted.split(".")[0]
        rest = dotted[len(head):]
        candidates = []
        if head in info.aliases:
            candidates.append(info.aliases[head] + rest)
        if head in info.symbols:
            candidates.append(f"{info.name}.{dotted}")
        for cand in candidates:
            found = fq_lookup(cand)
            if found is not None:
                return found
        return None

    env = build_env(
        node.body,
        dict(param_tags_for(node.args)),
        class_attrs=class_attrs.get(cls or "", {}),
        summary_lookup=local_lookup,
    )
    return env, local_lookup


def _consumptions(
    body: "ast.AST | List[ast.stmt]",
    env: ExprTags,
    lookup: Callable[[str], Optional[Mapping[str, Any]]],
) -> Iterator[Tuple[ast.AST, str]]:
    """Yield ``(node, how)`` for every Generator consumption under
    ``body`` — direct draws and calls that consume one transitively."""
    nodes = body if isinstance(body, list) else [body]
    for root in nodes:
        for sub in ast.walk(root):
            if not isinstance(sub, ast.Call):
                continue
            func = sub.func
            if isinstance(func, ast.Attribute):
                if (
                    GEN in env.tags(func.value)
                    and func.attr not in _NON_CONSUMING_METHODS
                ):
                    yield sub, f"draws from {ast.unparse(func.value)}"
                    continue
            dotted = dotted_name(func)
            if dotted is None:
                continue
            summary = lookup(dotted)
            if summary is None:
                continue
            if summary.get("consumes_ambient_gen"):
                yield sub, f"{dotted}() consumes a Generator internally"
                continue
            params = list(summary.get("params", ()))
            if params[:1] == ["self"] and isinstance(func, ast.Attribute):
                params = params[1:]
            consuming = set(summary.get("consuming_params", ()))
            hit = False
            for i, arg in enumerate(sub.args):
                target = params[i] if i < len(params) else None
                if target in consuming and GEN in env.tags(arg):
                    hit = True
            for kw in sub.keywords:
                if kw.arg in consuming and GEN in env.tags(kw.value):
                    hit = True
            if hit:
                yield sub, f"{dotted}() draws from the Generator passed in"


def _each_function(info: ModuleInfo):
    """``(qualname, cls, node, class_attrs)`` for every function in a
    module (class-attribute tags computed once)."""
    assert info.tree is not None
    class_attrs = _class_attr_tags(info.tree)
    for qual, cls, node in _iter_functions(info.tree):
        yield qual, cls, node, class_attrs


@project_rule(
    "FLOW001",
    name="gen-into-cached-kernel",
    description=(
        "A numpy Generator flows into a DecodeCache-memoised or "
        "repro.core.batch kernel. Memoised/batched kernels must be "
        "deterministic in (placement, available): a cache hit on the "
        "second identical round would silently skip the RNG draw and "
        "shift every downstream stream. Draw outside the kernel and "
        "pass the drawn values in."
    ),
    scope=("repro/",),
)
def check_gen_into_cached_kernel(
    ctx: ProjectContext, rule: Rule, info: ModuleInfo
) -> List[Finding]:

    """Flag Generator-tainted values flowing into memoised kernels."""
    findings: List[Finding] = []
    for _, cls, node, class_attrs in _each_function(info):
        env, lookup = _function_scope(info, ctx, cls, node, class_attrs)
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            func = sub.func
            sink = None
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MEMO_METHODS
            ):
                sink = f".{func.attr}()"
            else:
                dotted = dotted_name(func)
                if dotted is not None:
                    resolved = ctx.index.resolve(
                        info.name, dotted
                    ) or dotted
                    located = ctx.index.resolve_function(resolved)
                    if located is not None and located[0] == _BATCH_MODULE:
                        sink = f"{_BATCH_MODULE}.{located[1]}()"
            if sink is None:
                continue
            for arg in [*sub.args, *(kw.value for kw in sub.keywords)]:
                if isinstance(arg, ast.Lambda):
                    lam_env = ExprTags(
                        {a.arg: set() for a in (
                            *arg.args.posonlyargs, *arg.args.args,
                            *arg.args.kwonlyargs,
                        )},
                        parent=env,
                    )
                    for consumption, how in _consumptions(
                        arg.body, lam_env, lookup
                    ):
                        findings.append(ctx.finding(
                            rule, info, consumption,
                            f"compute callback of {sink} {how}; memoised "
                            "kernels must be RNG-free (draw before "
                            "memoising, pass results in)",
                        ))
                    continue
                if GEN in env.tags(arg):
                    findings.append(ctx.finding(
                        rule, info, arg,
                        f"Generator ({ast.unparse(arg)}) passed into "
                        f"deterministic kernel {sink}; cached/batched "
                        "kernels must not take RNG draws",
                    ))
    return findings


@project_rule(
    "FLOW002",
    name="gen-across-pool",
    description=(
        "A raw numpy Generator or an arithmetically derived seed "
        "(seed + i) flows into a process-pool dispatch "
        "(submit/map/SweepExecutor.run). Generators do not cross "
        "pickling with their stream intact and arithmetic seeds are "
        "correlated across workers; spawn SeedSequence children in "
        "the parent (deepens PAR001 with assignment-aware dataflow)."
    ),
    scope=("repro/",),
)
def check_gen_across_pool(
    ctx: ProjectContext, rule: Rule, info: ModuleInfo
) -> List[Finding]:
    """Flag Generators or derived seeds crossing a process boundary."""
    findings: List[Finding] = []
    dispatch = _DISPATCH_METHODS | {"run"}
    for _, cls, node, class_attrs in _each_function(info):
        env, _ = _function_scope(info, ctx, cls, node, class_attrs)
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            func = sub.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in dispatch
            ):
                continue
            receiver = (dotted_name(func.value) or "").lower()
            if not any(f in receiver for f in _POOLISH_FRAGMENTS):
                continue
            for arg in [*sub.args, *(kw.value for kw in sub.keywords)]:
                tags = env.tags(arg)
                if GEN in tags:
                    findings.append(ctx.finding(
                        rule, info, arg,
                        f"Generator ({ast.unparse(arg)}) shipped across "
                        f"the .{func.attr}() pool boundary; spawn "
                        "SeedSequence children in the parent and build "
                        "Generators inside the worker",
                    ))
                elif DERIVED_SEED in tags:
                    findings.append(ctx.finding(
                        rule, info, arg,
                        f"arithmetically derived seed "
                        f"({ast.unparse(arg)}) crosses the "
                        f".{func.attr}() pool boundary; derive per-task "
                        "seeds with SeedSequence.spawn in the parent",
                    ))
    return findings


def _set_like(node: ast.AST) -> bool:
    """Is this iterable's iteration order hash-dependent?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = (
            func.attr if isinstance(func, ast.Attribute)
            else func.id if isinstance(func, ast.Name) else None
        )
        if name in ("sorted", "list", "tuple"):
            return False
        return name in _SET_CALLS
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitAnd, ast.BitOr, ast.Sub, ast.BitXor)
    ):
        # ``a & b`` etc. only when an operand is visibly a set.
        return _set_like(node.left) or _set_like(node.right)
    return False


@project_rule(
    "FLOW003",
    name="gen-order-hash-dependent",
    description=(
        "A Generator is consumed inside a loop over a set (or other "
        "hash-ordered iterable), so the order of draws — and therefore "
        "every downstream stream — depends on hash iteration order. "
        "Iterate sorted(...) instead."
    ),
    scope=("repro/",),
)
def check_gen_order_hash_dependent(
    ctx: ProjectContext, rule: Rule, info: ModuleInfo
) -> List[Finding]:
    """Flag Generator draws inside hash-ordered (set/dict) iteration."""
    findings: List[Finding] = []
    for _, cls, node, class_attrs in _each_function(info):
        env, lookup = _function_scope(info, ctx, cls, node, class_attrs)
        loops: List[Tuple[ast.AST, List[ast.stmt]]] = []
        for sub in ast.walk(node):
            if isinstance(sub, (ast.For, ast.AsyncFor)) and _set_like(
                sub.iter
            ):
                loops.append((sub.iter, sub.body))
            elif isinstance(
                sub, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                      ast.DictComp)
            ):
                for comp in sub.generators:
                    if _set_like(comp.iter):
                        elts = (
                            [sub.key, sub.value]
                            if isinstance(sub, ast.DictComp)
                            else [sub.elt]
                        )
                        loops.append((comp.iter, elts))
        for iterable, body in loops:
            for consumption, how in _consumptions(
                list(body), env, lookup
            ):
                findings.append(ctx.finding(
                    rule, info, consumption,
                    f"Generator draw inside a loop over "
                    f"{ast.unparse(iterable)} ({how}); set iteration "
                    "order is hash-dependent, so draw order is not "
                    "reproducible — iterate sorted(...) instead",
                ))
    return findings
