"""Registry-hygiene rules (REG0xx).

PR 2 made the system *open for extension, closed for modification*:
strategies come from :func:`repro.engine.spec.make_strategy` (backed
by ``@register_scheme`` factories) and execution backends from
``@register_backend`` factories.  Library code that hand-constructs a
strategy or backend bypasses the registries — it silently diverges
from what ``repro run <spec>`` would build and breaks spec
round-tripping.  These rules keep the library honest:

* ``REG001`` — a ``*Strategy`` class constructed in library code
  outside the registered factories (``engine/spec.py``) or the class
  definitions themselves (``training/strategies.py``);
* ``REG002`` — a ``*Backend`` constructed outside the factories; the
  historical trainer shims (``repro/training``, ``repro/runtime``) are
  the sanctioned compatibility layer and are excluded;
* ``REG003`` — a ``@register_scheme`` factory whose signature cannot
  round-trip spec ``scheme_params`` (missing ``**params``) or a
  ``@register_backend`` factory that does not take the build context.
* ``REG004`` — a ``*Repetition``/``*Placement`` class constructed in
  library code outside the placement registry
  (:mod:`repro.core.scheme`) or the conflict-graph substrate
  (``core/conflict.py``, which validates parameters via the
  constructors); everything else goes through
  ``make_placement(<family>, ...)`` so registry, spec, CLI and
  decode-cache-key construction stay identical.
* ``REG005`` — an environment model (delay / failure / compute /
  network / contention class) constructed in library code outside the
  environment registry (:mod:`repro.env`) or the defining packages
  (``repro/straggler``, ``repro/simulation``); everything else goes
  through ``make_delay_model(<kind>, ...)`` and friends so registry,
  spec, CLI and fingerprint construction stay identical.

Examples and tests are intentionally out of scope: demonstrating the
low-level object API is part of their job.
"""

from __future__ import annotations

import ast
import re
from typing import List, Optional

from .engine import PythonContext, Rule, python_rule, terminal_name
from .findings import Finding

_STRATEGY_RE = re.compile(r"^[A-Z]\w*Strategy$")
_BACKEND_RE = re.compile(r"^[A-Z]\w*Backend$")
_PLACEMENT_RE = re.compile(r"^[A-Z]\w*(Repetition|Placement)$")

#: Every class the environment registry builds — the REG005 targets.
#: Kept in sync with the ``@register_*`` factories in
#: ``repro/env/registry.py`` (pinned by ``tests/test_staticcheck``).
ENV_MODEL_CLASSES = frozenset({
    "NoDelay", "ExponentialDelay", "ShiftedExponentialDelay",
    "ParetoDelay", "BernoulliStraggler", "PersistentStragglers",
    "DiurnalDelay", "BurstyDelay", "MixtureDelay", "TraceReplayModel",
    "NoFailures", "PermanentCrashes", "TransientDropouts",
    "CompositeFailures",
    "ComputeModel", "HeterogeneousComputeModel",
    "NetworkModel", "ContendedUploadModel",
})

#: Only library code is policed (tests/examples teach the object API).
LIBRARY_SCOPE = ("repro/",)


def _decorator_name(dec: ast.AST) -> Optional[str]:
    """Name of a decorator, unwrapping a call like ``@register_x(...)``."""
    if isinstance(dec, ast.Call):
        dec = dec.func
    return terminal_name(dec)


def _defined_class_names(tree: ast.AST) -> set:
    return {
        node.name for node in ast.walk(tree) if isinstance(node, ast.ClassDef)
    }


@python_rule(
    "REG001",
    name="strategy-outside-factory",
    description=(
        "Library code must obtain strategies via make_strategy / the "
        "SCHEME_REGISTRY so specs, CLI and code agree on construction."
    ),
    scope=LIBRARY_SCOPE,
    exclude=(
        "training/strategies.py",  # the class definitions themselves
        "engine/spec.py",          # the registered factories
        "staticcheck/",            # this checker's own pattern tables
    ),
)
def check_strategy_construction(
    ctx: PythonContext, rule: Rule
) -> List[Finding]:
    """Flag direct ``SomeStrategy(...)`` constructions in library code."""
    findings = []
    local_classes = _defined_class_names(ctx.tree)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = terminal_name(node.func)
        if name is None or not _STRATEGY_RE.match(name):
            continue
        if name in local_classes:
            continue  # a module may build instances of its own classes
        findings.append(ctx.finding(
            rule, node,
            f"{name}(...) constructed directly; library code should go "
            "through make_strategy(<scheme>, ...) so registry, spec "
            "and CLI construction stay identical",
        ))
    return findings


@python_rule(
    "REG002",
    name="backend-outside-factory",
    description=(
        "Library code must obtain execution backends via the "
        "@register_backend factories; the training/runtime shims are "
        "the sanctioned compatibility layer."
    ),
    scope=LIBRARY_SCOPE,
    exclude=(
        "engine/backends.py",  # the class definitions themselves
        "engine/spec.py",      # the registered factories
        "repro/training/",     # historical trainer shims (pinned by goldens)
        "repro/runtime/",      # actor-system shim
        "staticcheck/",
    ),
)
def check_backend_construction(
    ctx: PythonContext, rule: Rule
) -> List[Finding]:
    """Flag direct ``SomeBackend(...)`` constructions in library code."""
    findings = []
    local_classes = _defined_class_names(ctx.tree)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = terminal_name(node.func)
        if name is None or not _BACKEND_RE.match(name):
            continue
        if name in local_classes:
            continue
        findings.append(ctx.finding(
            rule, node,
            f"{name}(...) constructed directly; register a backend "
            "factory with @register_backend and build through the "
            "BACKEND_REGISTRY",
        ))
    return findings


@python_rule(
    "REG004",
    name="placement-outside-registry",
    description=(
        "Library code must obtain placements via make_placement / the "
        "PLACEMENT_REGISTRY so CLI, specs, library code and decode-cache "
        "keys agree on construction."
    ),
    scope=LIBRARY_SCOPE,
    exclude=(
        "core/scheme.py",    # the registered placement families themselves
        "core/conflict.py",  # substrate: validates params via constructors
        "staticcheck/",      # this checker's own pattern tables
    ),
)
def check_placement_construction(
    ctx: PythonContext, rule: Rule
) -> List[Finding]:
    """Flag direct ``*Repetition(...)``/``*Placement(...)`` calls in
    library code."""
    findings = []
    local_classes = _defined_class_names(ctx.tree)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = terminal_name(node.func)
        if name is None or not _PLACEMENT_RE.match(name):
            continue
        if name in local_classes:
            continue  # a module may build instances of its own classes
        findings.append(ctx.finding(
            rule, node,
            f"{name}(...) constructed directly; library code should go "
            "through make_placement(<family>, ...) so registry, spec, "
            "CLI and decode-cache-key construction stay identical",
        ))
    return findings


@python_rule(
    "REG005",
    name="env-model-outside-registry",
    description=(
        "Library code must obtain environment models (delay/failure/"
        "compute/network/contention) via make_delay_model & friends / "
        "the ENV_REGISTRY so CLI, specs, library code and environment "
        "fingerprints agree on construction."
    ),
    scope=LIBRARY_SCOPE,
    exclude=(
        "repro/straggler/",   # the delay/failure class definitions
        "repro/simulation/",  # compute/network/contention definitions
        "repro/env/",         # the sanctioned construction layer
        "staticcheck/",       # this checker's own pattern tables
    ),
)
def check_env_model_construction(
    ctx: PythonContext, rule: Rule
) -> List[Finding]:
    """Flag direct environment-model constructions in library code."""
    findings = []
    local_classes = _defined_class_names(ctx.tree)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = terminal_name(node.func)
        if name is None or name not in ENV_MODEL_CLASSES:
            continue
        if name in local_classes:
            continue  # a module may build instances of its own classes
        findings.append(ctx.finding(
            rule, node,
            f"{name}(...) constructed directly; library code should go "
            "through make_delay_model / make_failure_model / "
            "make_compute_model / make_network_model / "
            "make_contention_model so registry, spec, CLI and "
            "fingerprint construction stay identical",
        ))
    return findings


@python_rule(
    "REG003",
    name="registered-factory-signature",
    description=(
        "@register_scheme factories must accept **params (otherwise "
        "spec scheme_params cannot round-trip); @register_backend "
        "factories must take the BuildContext argument."
    ),
)
def check_factory_signatures(ctx: PythonContext, rule: Rule) -> List[Finding]:
    """Validate the calling convention of registered factories."""
    findings = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        decorators = {
            _decorator_name(d) for d in node.decorator_list
        }
        if "register_scheme" in decorators:
            if node.args.kwarg is None:
                findings.append(ctx.finding(
                    rule, node,
                    f"scheme factory {node.name}() has no **params "
                    "catch-all, so ExperimentSpec.scheme_params cannot "
                    "round-trip through it; add **params",
                ))
            else:
                accepted = {
                    a.arg
                    for a in (*node.args.args, *node.args.kwonlyargs)
                }
                missing = {
                    "num_workers", "partitions_per_worker",
                    "wait_for", "rng",
                } - accepted
                # **params swallows whatever is not named explicitly —
                # naming num_workers is still required because every
                # factory needs it to build a placement.
                if "num_workers" in missing:
                    findings.append(ctx.finding(
                        rule, node,
                        f"scheme factory {node.name}() does not accept "
                        "num_workers, which make_strategy always passes",
                    ))
        if "register_backend" in decorators:
            positional = [*node.args.posonlyargs, *node.args.args]
            if len(positional) != 1 and node.args.kwarg is None:
                findings.append(ctx.finding(
                    rule, node,
                    f"backend factory {node.name}() must take exactly "
                    "one argument (the BuildContext)",
                ))
    return findings
