"""The rule engine behind ``repro check``.

Responsibilities:

* a **rule registry** (:data:`RULE_REGISTRY`) populated by the
  :func:`python_rule` / :func:`spec_rule` decorators in the rule
  modules;
* **file discovery** — ``.py`` files are parsed to an AST, ``.md``
  files contribute their fenced ```````python`````` blocks (at their
  true line numbers), and ``.json``/``.toml`` files that look like
  :class:`~repro.engine.spec.ExperimentSpec` documents go to the
  spec-feasibility rules;
* **suppressions** — a ``# repro: noqa[RULE1,RULE2]`` comment on the
  offending line silences those rules there (bare ``# repro: noqa``
  silences every rule on the line);
* **scoping** — each rule declares path fragments it applies to (and
  sanctioned exceptions), so e.g. determinism rules police
  ``repro/engine`` without flagging an example script.

The engine never *imports* the code it checks — analysis is purely
syntactic, so ``repro check`` is safe to run on untrusted specs and
broken branches alike.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Set

from ..exceptions import ReproError
from .findings import Finding, Severity

#: Rule id for files that cannot be parsed at all.
SYNTAX_RULE = "GEN001"

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?"
)

_MD_BLOCK_RE = re.compile(r"```python[ \t]*\n(.*?)```", re.DOTALL)


class StaticCheckError(ReproError):
    """Usage errors of the checker itself (bad path, unknown rule)."""


@dataclass(frozen=True)
class PythonContext:
    """Everything a Python (AST) rule sees for one parsed source unit."""

    #: display path used in findings (as given on the command line).
    path: str
    #: posix-style path used for rule scope matching.
    scope_path: str
    source: str
    tree: ast.AST

    def finding(
        self, rule: "Rule", node: ast.AST, message: str
    ) -> Finding:
        """Build a :class:`Finding` anchored at ``node``."""
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule.id,
            severity=rule.severity,
            message=message,
        )


@dataclass(frozen=True)
class SpecContext:
    """What a spec-feasibility rule sees for one spec document."""

    path: str
    scope_path: str
    data: Mapping[str, object]

    def finding(self, rule: "Rule", message: str, line: int = 1) -> Finding:
        """Build a :class:`Finding` for this document."""
        return Finding(
            path=self.path,
            line=line,
            col=1,
            rule=rule.id,
            severity=rule.severity,
            message=message,
        )


@dataclass(frozen=True)
class Rule:
    """One registered check.

    ``scope`` is a tuple of path fragments the rule applies to (empty =
    everywhere); ``exclude`` lists sanctioned locations inside that
    scope.  ``kind`` is ``"python"`` (AST contexts, including markdown
    code blocks) or ``"spec"`` (parsed JSON/TOML spec documents).
    """

    id: str
    name: str
    description: str
    severity: Severity
    kind: str
    scope: tuple
    exclude: tuple
    check: Callable[..., Iterable[Finding]]

    def applies_to(self, scope_path: str) -> bool:
        """Whether this rule runs on the file at ``scope_path``."""
        if self.scope and not any(s in scope_path for s in self.scope):
            return False
        return not any(e in scope_path for e in self.exclude)


RULE_REGISTRY: Dict[str, Rule] = {}


def _register(rule: Rule) -> None:
    if rule.id in RULE_REGISTRY:
        raise StaticCheckError(f"duplicate rule id {rule.id!r}")
    RULE_REGISTRY[rule.id] = rule


def python_rule(
    rule_id: str,
    *,
    name: str,
    description: str,
    severity: Severity = Severity.ERROR,
    scope: Sequence[str] = (),
    exclude: Sequence[str] = (),
) -> Callable[[Callable], Callable]:
    """Decorator registering an AST rule ``fn(ctx, rule) -> findings``."""

    def wrap(fn: Callable) -> Callable:
        _register(
            Rule(
                id=rule_id,
                name=name,
                description=description,
                severity=severity,
                kind="python",
                scope=tuple(scope),
                exclude=tuple(exclude),
                check=fn,
            )
        )
        return fn

    return wrap


def spec_rule(
    rule_id: str,
    *,
    name: str,
    description: str,
    severity: Severity = Severity.ERROR,
    scope: Sequence[str] = (),
    exclude: Sequence[str] = (),
) -> Callable[[Callable], Callable]:
    """Decorator registering a spec-document rule."""

    def wrap(fn: Callable) -> Callable:
        _register(
            Rule(
                id=rule_id,
                name=name,
                description=description,
                severity=severity,
                kind="spec",
                scope=tuple(scope),
                exclude=tuple(exclude),
                check=fn,
            )
        )
        return fn

    return wrap


# ----------------------------------------------------------------------
# Suppressions


def noqa_map(source: str) -> Dict[int, Optional[Set[str]]]:
    """Per-line suppressions: line → set of rule ids, or ``None`` = all."""
    suppressions: Dict[int, Optional[Set[str]]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(line)
        if not match:
            continue
        rules = match.group("rules")
        if rules is None:
            suppressions[lineno] = None
        else:
            suppressions[lineno] = {
                r.strip().upper() for r in rules.split(",") if r.strip()
            }
    return suppressions


def _apply_noqa(
    findings: Iterable[Finding],
    suppressions: Mapping[int, Optional[Set[str]]],
) -> List[Finding]:
    kept = []
    for f in findings:
        allowed = suppressions.get(f.line, ...)
        if allowed is None:
            continue  # bare noqa: everything suppressed on this line
        if allowed is not ... and f.rule in allowed:
            continue
        kept.append(f)
    return kept


# ----------------------------------------------------------------------
# File discovery

_SKIP_DIRS = {"__pycache__", ".git", ".ruff_cache", ".pytest_cache"}
_CHECKED_SUFFIXES = {".py", ".md", ".json", ".toml"}


def iter_source_files(paths: Sequence["str | Path"]) -> List[Path]:
    """Expand files/directories into the checkable file list."""
    out: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise StaticCheckError(f"no such file or directory: {path}")
        if path.is_file():
            out.append(path)
            continue
        for sub in sorted(path.rglob("*")):
            if sub.suffix not in _CHECKED_SUFFIXES or not sub.is_file():
                continue
            parts = set(sub.parts)
            if parts & _SKIP_DIRS or any(
                p.endswith(".egg-info") for p in sub.parts
            ):
                continue
            out.append(sub)
    return out


# ----------------------------------------------------------------------
# Per-file checking


def _rules(kind: str, select: Optional[Set[str]]) -> List[Rule]:
    rules = [r for r in RULE_REGISTRY.values() if r.kind == kind]
    if select is not None:
        rules = [r for r in rules if r.id in select]
    return sorted(rules, key=lambda r: r.id)


def check_source(
    source: str,
    path: str = "<snippet>.py",
    scope_path: Optional[str] = None,
    select: Optional[Set[str]] = None,
) -> List[Finding]:
    """Check one Python source string (the unit-test entry point).

    ``scope_path`` feeds rule scope matching; pass e.g.
    ``"src/repro/engine/foo.py"`` to exercise rules scoped to the
    engine package regardless of where the snippet really lives.
    """
    scope_path = scope_path if scope_path is not None else path
    scope_path = Path(scope_path).as_posix()
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                rule=SYNTAX_RULE,
                severity=Severity.ERROR,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    ctx = PythonContext(
        path=path, scope_path=scope_path, source=source, tree=tree
    )
    findings: List[Finding] = []
    for rule in _rules("python", select):
        if rule.applies_to(scope_path):
            findings.extend(rule.check(ctx, rule))
    return _apply_noqa(sorted(findings), noqa_map(source))


def check_spec_mapping(
    data: Mapping[str, object],
    path: str = "<spec>.json",
    select: Optional[Set[str]] = None,
) -> List[Finding]:
    """Run the spec-feasibility rules over one parsed spec mapping."""
    ctx = SpecContext(path=path, scope_path=Path(path).as_posix(), data=data)
    findings: List[Finding] = []
    for rule in _rules("spec", select):
        if rule.applies_to(ctx.scope_path):
            findings.extend(rule.check(ctx, rule))
    return sorted(findings)


def _looks_like_spec(data: object) -> bool:
    return (
        isinstance(data, Mapping)
        and "scheme" in data
        and "num_workers" in data
    )


def _check_markdown(
    text: str, path: str, select: Optional[Set[str]]
) -> List[Finding]:
    findings: List[Finding] = []
    for match in _MD_BLOCK_RE.finditer(text):
        block = match.group(1)
        # Pad with blank lines so AST positions are file positions.
        offset = text[: match.start(1)].count("\n")
        findings.extend(
            check_source("\n" * offset + block, path=path, select=select)
        )
    return _apply_noqa(findings, noqa_map(text))


def _check_data_file(
    path: Path, text: str, select: Optional[Set[str]]
) -> List[Finding]:
    if path.suffix == ".json":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            return [
                Finding(
                    path=str(path),
                    line=exc.lineno,
                    col=exc.colno,
                    rule=SYNTAX_RULE,
                    severity=Severity.ERROR,
                    message=f"invalid JSON: {exc.msg}",
                )
            ]
    else:  # .toml
        try:
            import tomllib
        except ImportError:  # pragma: no cover - Python 3.10
            return []  # tomllib is 3.11+; TOML specs are skipped there
        try:
            data = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            return [
                Finding(
                    path=str(path),
                    line=1,
                    col=1,
                    rule=SYNTAX_RULE,
                    severity=Severity.ERROR,
                    message=f"invalid TOML: {exc}",
                )
            ]
    if not _looks_like_spec(data):
        return []
    return check_spec_mapping(data, path=str(path), select=select)


@dataclass
class CheckResult:
    """Outcome of one :func:`run_check` invocation."""

    findings: List[Finding] = field(default_factory=list)
    num_files: int = 0

    @property
    def ok(self) -> bool:
        """True when no finding survived suppression."""
        return not self.findings


def run_check(
    paths: Sequence["str | Path"],
    select: Optional[Iterable[str]] = None,
) -> CheckResult:
    """Check every file under ``paths``; the library entry point.

    ``select`` restricts to the given rule ids (unknown ids raise
    :class:`StaticCheckError` — a usage error, exit code 2 at the CLI).
    """
    selected: Optional[Set[str]] = None
    if select is not None:
        selected = {s.strip().upper() for s in select if s.strip()}
        unknown = selected - set(RULE_REGISTRY) - {SYNTAX_RULE}
        if unknown:
            raise StaticCheckError(
                f"unknown rule id(s): {', '.join(sorted(unknown))}; "
                "see `repro check --list-rules`"
            )
    result = CheckResult()
    for path in iter_source_files(paths):
        try:
            text = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            continue  # unreadable/binary files are not checkable
        result.num_files += 1
        if path.suffix == ".py":
            result.findings.extend(
                check_source(text, path=str(path), select=selected)
            )
        elif path.suffix == ".md":
            result.findings.extend(
                _check_markdown(text, str(path), selected)
            )
        else:
            result.findings.extend(_check_data_file(path, text, selected))
    result.findings.sort()
    return result


# ----------------------------------------------------------------------
# Shared AST helpers used by several rule modules.


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def terminal_name(node: ast.AST) -> Optional[str]:
    """The last identifier of a Name/Attribute (``c`` of ``a.b.c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None
