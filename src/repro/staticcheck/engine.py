"""The rule engine behind ``repro check``.

Responsibilities:

* a **rule registry** (:data:`RULE_REGISTRY`) populated by the
  :func:`python_rule` / :func:`spec_rule` / :func:`project_rule`
  decorators in the rule modules;
* **file discovery** — ``.py`` files are parsed to an AST, ``.md``
  files contribute their fenced ```````python`````` blocks (at their
  true line numbers), and ``.json``/``.toml`` files that look like
  :class:`~repro.engine.spec.ExperimentSpec` documents go to the
  spec-feasibility rules;
* the **project pass** — ``.py`` files are additionally indexed into a
  whole-project module graph (:mod:`repro.staticcheck.project`) with
  interprocedural dataflow summaries
  (:mod:`repro.staticcheck.dataflow`), over which the FLOW/XREG/XIMP
  families run; per-module results are cacheable, invalidated
  transitively through the import graph;
* **suppressions** — a ``# repro: noqa[RULE1,RULE2]`` comment on the
  offending line silences those rules there (bare ``# repro: noqa``
  silences every rule on the line), for per-file and project findings
  alike;
* **scoping** — each rule declares path fragments it applies to (and
  sanctioned exceptions), so e.g. determinism rules police
  ``repro/engine`` without flagging an example script.

The engine never *imports* the code it checks — analysis is purely
syntactic, so ``repro check`` is safe to run on untrusted specs and
broken branches alike.
"""

from __future__ import annotations

import ast
import copy
import json
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..exceptions import ReproError
from .findings import Finding, Severity

#: Rule id for files that cannot be parsed at all.
SYNTAX_RULE = "GEN001"

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?"
)


class StaticCheckError(ReproError):
    """Usage errors of the checker itself (bad path, unknown rule)."""


@dataclass(frozen=True)
class PythonContext:
    """Everything a Python (AST) rule sees for one parsed source unit."""

    #: display path used in findings (as given on the command line).
    path: str
    #: posix-style path used for rule scope matching.
    scope_path: str
    source: str
    tree: ast.AST

    def finding(
        self, rule: "Rule", node: ast.AST, message: str
    ) -> Finding:
        """Build a :class:`Finding` anchored at ``node``."""
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule.id,
            severity=rule.severity,
            message=message,
        )


@dataclass(frozen=True)
class SpecContext:
    """What a spec-feasibility rule sees for one spec document."""

    path: str
    scope_path: str
    data: Mapping[str, object]

    def finding(self, rule: "Rule", message: str, line: int = 1) -> Finding:
        """Build a :class:`Finding` for this document."""
        return Finding(
            path=self.path,
            line=line,
            col=1,
            rule=rule.id,
            severity=rule.severity,
            message=message,
        )


@dataclass(frozen=True)
class Rule:
    """One registered check.

    ``scope`` is a tuple of path fragments the rule applies to (empty =
    everywhere); ``exclude`` lists sanctioned locations inside that
    scope.  ``kind`` is ``"python"`` (AST contexts, including markdown
    code blocks), ``"spec"`` (parsed JSON/TOML spec documents) or
    ``"project"`` (the whole-project index).  Project rules carry a
    ``granularity``: ``"module"`` checks run once per indexed module
    (and their findings cache per module, keyed by the module's import-
    closure digest); ``"project"`` checks run once per index.
    """

    id: str
    name: str
    description: str
    severity: Severity
    kind: str
    scope: tuple
    exclude: tuple
    check: Callable[..., Iterable[Finding]]
    granularity: str = "file"

    def applies_to(self, scope_path: str) -> bool:
        """Whether this rule runs on the file at ``scope_path``."""
        if self.scope and not any(s in scope_path for s in self.scope):
            return False
        return not any(e in scope_path for e in self.exclude)


RULE_REGISTRY: Dict[str, Rule] = {}


def _register(rule: Rule) -> None:
    if rule.id in RULE_REGISTRY:
        raise StaticCheckError(f"duplicate rule id {rule.id!r}")
    RULE_REGISTRY[rule.id] = rule


def _make_decorator(
    kind: str, granularity: str = "file"
) -> Callable[..., Callable]:
    def decorator(
        rule_id: str,
        *,
        name: str,
        description: str,
        severity: Severity = Severity.ERROR,
        scope: Sequence[str] = (),
        exclude: Sequence[str] = (),
    ) -> Callable[[Callable], Callable]:
        def wrap(fn: Callable) -> Callable:
            _register(
                Rule(
                    id=rule_id,
                    name=name,
                    description=description,
                    severity=severity,
                    kind=kind,
                    scope=tuple(scope),
                    exclude=tuple(exclude),
                    check=fn,
                    granularity=granularity,
                )
            )
            return fn

        return wrap

    return decorator


python_rule = _make_decorator("python")
python_rule.__doc__ = (
    "Decorator registering an AST rule ``fn(ctx, rule) -> findings``."
)

spec_rule = _make_decorator("spec")
spec_rule.__doc__ = "Decorator registering a spec-document rule."

project_rule = _make_decorator("project", granularity="module")
project_rule.__doc__ = (
    "Decorator registering a per-module project rule "
    "``fn(ctx, rule, module) -> findings`` (ctx: ProjectContext)."
)

project_wide_rule = _make_decorator("project", granularity="project")
project_wide_rule.__doc__ = (
    "Decorator registering a whole-index project rule "
    "``fn(ctx, rule) -> findings``."
)


# ----------------------------------------------------------------------
# Suppressions


def noqa_map(source: str) -> Dict[int, Optional[Set[str]]]:
    """Per-line suppressions: line → set of rule ids, or ``None`` = all."""
    suppressions: Dict[int, Optional[Set[str]]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(line)
        if not match:
            continue
        rules = match.group("rules")
        if rules is None:
            suppressions[lineno] = None
        else:
            suppressions[lineno] = {
                r.strip().upper() for r in rules.split(",") if r.strip()
            }
    return suppressions


def _apply_noqa(
    findings: Iterable[Finding],
    suppressions: Mapping[int, Optional[Set[str]]],
) -> List[Finding]:
    kept = []
    for f in findings:
        allowed = suppressions.get(f.line, ...)
        if allowed is None:
            continue  # bare noqa: everything suppressed on this line
        if allowed is not ... and f.rule in allowed:
            continue
        kept.append(f)
    return kept


# ----------------------------------------------------------------------
# File discovery

_SKIP_DIRS = {
    "__pycache__", ".git", ".ruff_cache", ".pytest_cache",
    ".venv", "venv", ".tox", ".mypy_cache", "node_modules",
    ".hypothesis",
}
#: directory *pairs* skipped as parent/child (benchmark result dumps).
_SKIP_DIR_PAIRS = {("benchmarks", "results")}
_CHECKED_SUFFIXES = {".py", ".md", ".json", ".toml"}


def _skipped(parts: Tuple[str, ...]) -> bool:
    if set(parts) & _SKIP_DIRS:
        return True
    if any(p.endswith(".egg-info") for p in parts):
        return True
    return any(pair in _SKIP_DIR_PAIRS for pair in zip(parts, parts[1:]))


def iter_source_files(paths: Sequence["str | Path"]) -> List[Path]:
    """Expand files/directories into the checkable file list.

    Skips caches, virtualenvs and benchmark result dumps
    (``.venv``/``__pycache__``/``benchmarks/results`` and friends).
    """
    out: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise StaticCheckError(f"no such file or directory: {path}")
        if path.is_file():
            out.append(path)
            continue
        for sub in sorted(path.rglob("*")):
            if sub.suffix not in _CHECKED_SUFFIXES or not sub.is_file():
                continue
            if sub.name.startswith("."):
                continue  # dotfiles: the checker's own cache/baseline
            if _skipped(sub.parts):
                continue
            out.append(sub)
    return out


# ----------------------------------------------------------------------
# Markdown fenced-block extraction

_FENCE_OPEN_RE = re.compile(r"^ {0,3}(?P<fence>`{3,}|~{3,})(?P<info>.*)$")

#: info-string languages whose blocks are parsed as Python source.
_PYTHON_LANGS = {"python", "python3", "py"}


def iter_markdown_blocks(text: str) -> List[Tuple[int, str]]:
    """``(lines_before_content, block_source)`` for every fenced
    Python block.

    Hardened against the realities of Markdown in the wild: CRLF line
    endings, info-string attributes after the language (```` ```python
    title="x" ````, ```` ```{.python} ````), longer/tilde fences, and
    **unterminated fences** — a fence never closed runs to end of file
    instead of being silently dropped.  Fences indented up to three
    spaces open blocks; their indentation is stripped from the body so
    the block still parses.
    """
    lines = text.split("\n")
    blocks: List[Tuple[int, str]] = []
    i, n = 0, len(lines)
    while i < n:
        line = lines[i].rstrip("\r")
        match = _FENCE_OPEN_RE.match(line)
        if match is None:
            i += 1
            continue
        fence = match.group("fence")
        info = match.group("info").strip()
        lang = info.split()[0] if info else ""
        lang = lang.strip("{}").lstrip(".").lower()
        indent = len(line) - len(line.lstrip(" "))
        close_re = re.compile(
            rf"^ {{0,3}}{re.escape(fence[0])}{{{len(fence)},}}\s*$"
        )
        body: List[str] = []
        j = i + 1
        closed = False
        while j < n:
            candidate = lines[j].rstrip("\r")
            if close_re.match(candidate):
                closed = True
                break
            body.append(
                candidate[indent:]
                if candidate[:indent].strip() == "" else candidate
            )
            j += 1
        if lang in _PYTHON_LANGS and body:
            blocks.append((i + 1, "\n".join(body)))
        i = j + 1 if closed else j
    return blocks


# ----------------------------------------------------------------------
# Rule selection


def expand_select(select: Iterable[str]) -> Set[str]:
    """Expand a ``--select`` list into concrete rule ids.

    Each entry is either a full rule id (``FLOW001``) or a family
    prefix (``FLOW``, ``DET``) selecting every rule it prefixes.
    Unknown entries raise :class:`StaticCheckError` (a usage error).
    """
    selected: Set[str] = set()
    for raw in select:
        entry = raw.strip().upper()
        if not entry:
            continue
        matches = {
            rule_id for rule_id in RULE_REGISTRY
            if rule_id == entry or rule_id.startswith(entry)
        }
        if entry == SYNTAX_RULE or SYNTAX_RULE.startswith(entry):
            matches.add(SYNTAX_RULE)
        if not matches:
            raise StaticCheckError(
                f"unknown rule id(s): {entry}; "
                "see `repro check --list-rules`"
            )
        selected |= matches
    return selected


def _rules(kind: str, select: Optional[Set[str]]) -> List[Rule]:
    rules = [r for r in RULE_REGISTRY.values() if r.kind == kind]
    if select is not None:
        rules = [r for r in rules if r.id in select]
    return sorted(rules, key=lambda r: r.id)


# ----------------------------------------------------------------------
# Per-file checking


def check_source(
    source: str,
    path: str = "<snippet>.py",
    scope_path: Optional[str] = None,
    select: Optional[Set[str]] = None,
    rule_seconds: Optional[Dict[str, float]] = None,
) -> List[Finding]:
    """Check one Python source string (the unit-test entry point).

    ``scope_path`` feeds rule scope matching; pass e.g.
    ``"src/repro/engine/foo.py"`` to exercise rules scoped to the
    engine package regardless of where the snippet really lives.
    ``rule_seconds`` (optional) accumulates per-rule wall time for
    ``--stats``.
    """
    scope_path = scope_path if scope_path is not None else path
    scope_path = Path(scope_path).as_posix()
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                rule=SYNTAX_RULE,
                severity=Severity.ERROR,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    ctx = PythonContext(
        path=path, scope_path=scope_path, source=source, tree=tree
    )
    findings: List[Finding] = []
    for rule in _rules("python", select):
        if not rule.applies_to(scope_path):
            continue
        started = time.perf_counter()
        findings.extend(rule.check(ctx, rule))
        if rule_seconds is not None:
            rule_seconds[rule.id] = (
                rule_seconds.get(rule.id, 0.0)
                + time.perf_counter() - started
            )
    return _apply_noqa(sorted(findings), noqa_map(source))


def check_spec_mapping(
    data: Mapping[str, object],
    path: str = "<spec>.json",
    select: Optional[Set[str]] = None,
) -> List[Finding]:
    """Run the spec-feasibility rules over one parsed spec mapping."""
    ctx = SpecContext(path=path, scope_path=Path(path).as_posix(), data=data)
    findings: List[Finding] = []
    for rule in _rules("spec", select):
        if rule.applies_to(ctx.scope_path):
            findings.extend(rule.check(ctx, rule))
    return sorted(findings)


def _looks_like_spec(data: object) -> bool:
    return (
        isinstance(data, Mapping)
        and "scheme" in data
        and "num_workers" in data
    )


def _check_markdown(
    text: str,
    path: str,
    select: Optional[Set[str]],
    rule_seconds: Optional[Dict[str, float]] = None,
) -> List[Finding]:
    findings: List[Finding] = []
    for offset, block in iter_markdown_blocks(text):
        # Pad with blank lines so AST positions are file positions.
        findings.extend(
            check_source(
                "\n" * offset + block,
                path=path,
                select=select,
                rule_seconds=rule_seconds,
            )
        )
    return _apply_noqa(findings, noqa_map(text))


def _check_data_file(
    path: Path, text: str, select: Optional[Set[str]]
) -> List[Finding]:
    if path.suffix == ".json":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            return [
                Finding(
                    path=str(path),
                    line=exc.lineno,
                    col=exc.colno,
                    rule=SYNTAX_RULE,
                    severity=Severity.ERROR,
                    message=f"invalid JSON: {exc.msg}",
                )
            ]
    else:  # .toml
        try:
            import tomllib
        except ImportError:  # pragma: no cover - Python 3.10
            return []  # tomllib is 3.11+; TOML specs are skipped there
        try:
            data = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            return [
                Finding(
                    path=str(path),
                    line=1,
                    col=1,
                    rule=SYNTAX_RULE,
                    severity=Severity.ERROR,
                    message=f"invalid TOML: {exc}",
                )
            ]
    if not _looks_like_spec(data):
        return []
    return check_spec_mapping(data, path=str(path), select=select)


@dataclass
class CheckResult:
    """Outcome of one :func:`run_check` invocation."""

    findings: List[Finding] = field(default_factory=list)
    num_files: int = 0
    #: per-file wall time (display path → seconds), for ``--stats``
    #: and the JSON report's ``timing`` section.
    file_seconds: Dict[str, float] = field(default_factory=dict)
    #: per-rule wall time across all files (project pass included,
    #: attributed per rule family under ``PROJECT``).
    rule_seconds: Dict[str, float] = field(default_factory=dict)
    #: incremental-cache accounting (zero when no cache attached).
    cache_hits: int = 0
    cache_misses: int = 0
    #: modules in the project index (0 when the pass was skipped).
    project_modules: int = 0
    total_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """True when no finding survived suppression."""
        return not self.findings


def run_check(
    paths: Sequence["str | Path"],
    select: Optional[Iterable[str]] = None,
    *,
    cache: Optional["AnalysisCache"] = None,
    project: bool = True,
) -> CheckResult:
    """Check every file under ``paths``; the library entry point.

    ``select`` restricts to the given rule ids or family prefixes
    (unknown ids raise :class:`StaticCheckError` — a usage error, exit
    code 2 at the CLI).  ``cache`` attaches an incremental
    :class:`~repro.staticcheck.cache.AnalysisCache`; ``project=False``
    skips the whole-project pass (FLOW/XREG/XIMP).
    """
    started_total = time.perf_counter()
    selected: Optional[Set[str]] = None
    if select is not None:
        selected = expand_select(select)
    result = CheckResult()
    if cache is not None:
        cache.ensure_ruleset(_ruleset_signature(selected))
    texts: Dict[Path, str] = {}
    py_files: List[Path] = []
    for path in iter_source_files(paths):
        try:
            text = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            continue  # unreadable/binary files are not checkable
        result.num_files += 1
        display = str(path)
        started = time.perf_counter()
        cached = (
            cache.get_file_findings(display, text)
            if cache is not None else None
        )
        if cached is not None:
            result.findings.extend(cached)
            result.cache_hits += 1
        else:
            if path.suffix == ".py":
                found = check_source(
                    text, path=display, select=selected,
                    rule_seconds=result.rule_seconds,
                )
            elif path.suffix == ".md":
                found = _check_markdown(
                    text, display, selected, result.rule_seconds
                )
            else:
                found = _check_data_file(path, text, selected)
            result.findings.extend(found)
            if cache is not None:
                cache.put_file_findings(display, text, found)
                result.cache_misses += 1
        if path.suffix == ".py":
            texts[path.resolve()] = text
            py_files.append(path)
        result.file_seconds[display] = time.perf_counter() - started
    if project and py_files and _rules("project", selected):
        _run_project_pass(
            py_files, texts, selected, cache, result
        )
    if cache is not None:
        cache.save()
    result.findings.sort()
    result.total_seconds = time.perf_counter() - started_total
    return result


def _ruleset_signature(selected: Optional[Set[str]]) -> str:
    import hashlib

    parts = sorted(RULE_REGISTRY)
    parts.append("select=" + (",".join(sorted(selected)) if selected else "*"))
    return hashlib.sha256("\n".join(parts).encode()).hexdigest()


# ----------------------------------------------------------------------
# The project pass


def _detect_repo_root(index) -> Optional[Path]:
    """The repository root, inferred from the indexed package layout
    (``<root>/src/repro/...`` → ``<root>``)."""
    from .project import module_name_for

    for info in index.modules.values():
        if not info.name.startswith("repro"):
            continue
        try:
            pkg_root, _ = module_name_for(Path(info.path))
        except OSError:  # pragma: no cover - defensive
            continue
        return pkg_root.parent if pkg_root.name == "src" else pkg_root
    return None


def _build_index(py_files: Sequence[Path], texts: Mapping[Path, str],
                 cache) -> "object":
    """Build the project index, rebuilding unchanged modules from
    cached shards (no re-parse) where possible."""
    from .project import (
        ModuleInfo, ProjectIndex, content_hash, module_name_for,
        parse_module,
    )

    # Complete packages: interprocedural flow needs every module of a
    # package even when only a sub-path was asked for.  Package dirs
    # are deduplicated before globbing — expanding per seed file would
    # re-resolve every package member once per seed.
    all_files: Dict[Path, None] = {}
    package_dirs: Dict[Path, None] = {}
    for f in py_files:
        all_files.setdefault(f.resolve())
        root, name = module_name_for(f)
        pkg_dir = root / name.split(".")[0]
        if (pkg_dir / "__init__.py").exists():
            package_dirs.setdefault(pkg_dir)
    for pkg_dir in sorted(package_dirs):
        for sub in sorted(pkg_dir.rglob("*.py")):
            if not _skipped(sub.parts):
                all_files.setdefault(sub.resolve())
    modules: Dict[str, ModuleInfo] = {}
    for f in all_files:
        pkg_root, name = module_name_for(f)
        text = texts.get(f)
        if text is None:
            try:
                text = f.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError):
                continue
        try:
            display = str(f.relative_to(Path.cwd()))
        except ValueError:
            display = str(f)
        if name in modules:
            # standalone-module stem collision (tests/conftest.py vs
            # benchmarks/conftest.py): key by path-derived name.
            name = Path(display).with_suffix("").as_posix().replace("/", ".")
        info = None
        if cache is not None:
            shard = cache.get_shard(display, content_hash(text))
            if shard is not None:
                info = ModuleInfo.from_shard(shard)
                info.source = text
        if info is None:
            info = parse_module(
                name, text, path=display,
                scope_path=Path(display).as_posix(),
            )
        if info is not None:
            modules[info.name] = info
    return ProjectIndex(modules)


def _run_project_pass(
    py_files: Sequence[Path],
    texts: Mapping[Path, str],
    selected: Optional[Set[str]],
    cache,
    result: CheckResult,
) -> None:
    from .dataflow import propagate, summarize_module
    from .project import ProjectContext, parse_module

    started = time.perf_counter()
    index = _build_index(py_files, texts, cache)
    result.project_modules = len(index.modules)
    checked_paths = set()
    for f in py_files:
        try:
            checked_paths.add(str(f.relative_to(Path.cwd())))
        except ValueError:
            checked_paths.add(str(f))
        checked_paths.add(str(f))

    def ensure_tree(info):
        if info.tree is None:
            parsed = parse_module(
                info.name, info.source,
                path=info.path, scope_path=info.scope_path,
            )
            if parsed is not None:
                index.modules[info.name] = parsed
                index.by_path[parsed.path] = parsed
                return parsed
        return info

    module_rules = [
        r for r in _rules("project", selected) if r.granularity == "module"
    ]
    wide_rules = [
        r for r in _rules("project", selected) if r.granularity == "project"
    ]

    # Digest-first: decide which modules actually need re-analysis.
    # On a warm no-change run everything hits, and the expensive
    # dataflow pass (summaries + propagation) is skipped entirely.
    ctx = ProjectContext(index=index, root=_detect_repo_root(index))
    project_findings: List[Finding] = []
    dirty: List[Tuple[str, str, List[Rule]]] = []
    for name in sorted(index.modules):
        info = index.modules[name]
        if info.path not in checked_paths:
            continue
        applicable = [
            r for r in module_rules if r.applies_to(info.scope_path)
        ]
        if not applicable:
            continue
        digest = index.closure_digest(name)
        cached = (
            cache.get_module_findings(info.path, digest)
            if cache is not None else None
        )
        if cached is not None:
            project_findings.extend(cached)
            result.cache_hits += 1
        else:
            dirty.append((name, digest, applicable))

    wide_digest = _global_digest(index, ctx) if wide_rules else ""
    wide_cached = (
        cache.get_project_findings(wide_digest)
        if cache is not None and wide_rules else None
    )
    wide_miss = bool(wide_rules) and wide_cached is None

    if dirty or wide_miss:
        # Local dataflow summaries (index shards), then propagation.
        local_summaries: Dict[str, Dict] = {}
        for name in sorted(index.modules):
            info = index.modules[name]
            summary = (
                cache.get_summary(info.path, info.content_hash)
                if cache is not None else None
            )
            if summary is None:
                info = ensure_tree(info)
                if info.tree is None:
                    continue
                summary = summarize_module(info)
                if cache is not None:
                    cache.put_shard(
                        info.path, info.content_hash,
                        info.to_shard(), summary,
                    )
                summary = copy.deepcopy(summary)
            local_summaries[name] = summary
        ctx.summaries = propagate(local_summaries, index)

    for name, digest, applicable in dirty:
        info = ensure_tree(index.modules[name])
        if info.tree is None:
            continue
        module_findings: List[Finding] = []
        for rule in applicable:
            rule_started = time.perf_counter()
            module_findings.extend(rule.check(ctx, rule, info))
            result.rule_seconds[rule.id] = (
                result.rule_seconds.get(rule.id, 0.0)
                + time.perf_counter() - rule_started
            )
        module_findings = _apply_noqa(
            sorted(module_findings), noqa_map(info.source)
        )
        if cache is not None:
            cache.put_module_findings(info.path, digest, module_findings)
            result.cache_misses += 1
        project_findings.extend(module_findings)

    if wide_rules:
        if wide_cached is not None:
            project_findings.extend(
                f for f in wide_cached if f.path in checked_paths
            )
            result.cache_hits += 1
        else:
            wide_findings: List[Finding] = []
            for rule in wide_rules:
                rule_started = time.perf_counter()
                wide_findings.extend(rule.check(ctx, rule))
                result.rule_seconds[rule.id] = (
                    result.rule_seconds.get(rule.id, 0.0)
                    + time.perf_counter() - rule_started
                )
            kept: List[Finding] = []
            for f in sorted(wide_findings):
                info = index.by_path.get(f.path)
                source = info.source if info is not None else ""
                if _apply_noqa([f], noqa_map(source)):
                    kept.append(f)
            if cache is not None:
                cache.put_project_findings(wide_digest, kept)
                result.cache_misses += 1
            project_findings.extend(
                f for f in kept if f.path in checked_paths
            )

    result.findings.extend(project_findings)
    result.file_seconds["<project pass>"] = (
        time.perf_counter() - started
    )


def _global_digest(index, ctx) -> str:
    """Validity key for whole-index findings: every module's content
    plus the auxiliary evidence files (goldens, docs catalogues)."""
    import hashlib

    parts: List[str] = []
    for name in sorted(index.modules):
        parts.append(name)
        parts.append(index.modules[name].content_hash)
    for aux in (
        "tests/golden/placement_schemes.json",
        "tests/golden/environments.json",
        "docs/placements.md",
        "docs/environments.md",
    ):
        text = ctx.aux_text(aux)
        parts.append(aux)
        parts.append(
            "" if text is None
            else hashlib.sha256(text.encode("utf-8")).hexdigest()
        )
    return hashlib.sha256("\n".join(parts).encode()).hexdigest()


# ----------------------------------------------------------------------
# Shared AST helpers used by several rule modules.


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def terminal_name(node: ast.AST) -> Optional[str]:
    """The last identifier of a Name/Attribute (``c`` of ``a.b.c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None
