"""Time-unit discipline rules (TIME0xx).

:mod:`repro.simulation.cluster` documents the project's time
convention: all time is simulated seconds, and **two origins coexist**
— *absolute* simulator-clock readings (``step_start``, ``step_end``,
``clock``) and *step-relative* values measured from the start of the
current round (``proceed_time``, ``arrival_time``, ``deadline``, the
values of ``RoundResult.arrivals``).  PR 1 fixed a real bug of exactly
this shape: ``run_round`` treated a policy's step-relative
``proceed_time`` as an absolute clock reading.

These rules encode the convention:

* ``TIME001`` — arithmetic/comparisons that mix identifiers from the
  two origin namespaces in a way no unit algebra permits
  (``absolute + absolute``, ``relative - absolute``, comparing an
  absolute reading against a relative one, or assigning one straight
  to the other).  The sanctioned conversions — ``absolute +
  relative → absolute`` and ``absolute - absolute → duration`` — are
  deliberately not flagged.
* ``TIME002`` — a function in the simulation/straggler/engine layers
  takes a time-valued parameter (``deadline``, ``*_time``,
  ``*_delay``, …) but neither its docstring nor its class docstring
  states the unit/origin.
* ``TIME003`` — a wall-clock source (the ``time``/``datetime``
  modules, or an event loop's ``.time()``) appears in a layer whose
  results are *simulated* seconds.  ``DET002`` already polices the
  deterministic core (engine/simulation), so this rule covers the
  complement: the serve coordinator interleaves many simulated runs
  under real asyncio scheduling, so one stray ``time.monotonic()``
  can silently turn a reproducible trajectory into a
  wall-clock-dependent one.  ``repro/serve/mailbox.py`` is the
  sanctioned exception: its client polls real files with real
  timeouts, and nothing it reads from the clock enters a job result.

The namespaces below are the single place the convention lives for the
checker; extend them when new time-valued names join the codebase.
"""

from __future__ import annotations

import ast
import re
from typing import List, Optional

from .engine import PythonContext, Rule, python_rule
from .findings import Finding

#: Identifiers carrying *absolute* simulator-clock seconds
#: (see the :mod:`repro.simulation.cluster` module docstring).
ABSOLUTE_NAMES = frozenset({
    "step_start", "step_end", "clock", "_clock",
    "absolute_time", "abs_time", "sim_clock",
})

#: Identifiers carrying *step-relative* seconds (measured from the
#: start of the current round) or per-round durations.
RELATIVE_NAMES = frozenset({
    "proceed_time", "arrival_time", "relative_time", "rel_time",
    "deadline", "wait_time", "step_time",
})

TIME_SCOPE = (
    "repro/simulation/",
    "repro/straggler/",
    "repro/engine/",
    "repro/obs/",
)

#: Layers whose results are simulated seconds and must therefore never
#: read a wall clock (TIME003).  ``DET002`` already patrols the
#: deterministic core (engine/simulation/codes/core); this scope is
#: the complement — the serve coordinator (which wraps engines in real
#: asyncio scheduling, exactly where a wall-clock read could leak in),
#: the obs layer (trace payloads must carry only simulator clocks) and
#: the straggler models.
WALLCLOCK_FREE_SCOPE = (
    "repro/serve/",
    "repro/obs/",
    "repro/straggler/",
)

#: Sanctioned wall-clock locations inside that scope.
WALLCLOCK_EXCEPTIONS = ("repro/serve/mailbox.py",)

#: Parameter names that denote a quantity of time.
_TIME_PARAM_RE = re.compile(
    r"^(deadline|delay|timeout|interval)$"
    r"|(_time|_seconds|_delay|_timeout|_interval|_deadline)$"
)

#: A docstring "states the unit" when it mentions any of these.
_UNIT_RE = re.compile(
    r"second|\(s\)|step-relative|absolute|sim[ -]time|\bsec\b",
    re.IGNORECASE,
)


def _origin(node: ast.AST) -> Optional[str]:
    """Classify a Name/Attribute by the documented namespace it uses."""
    if isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.Name):
        name = node.id
    else:
        return None
    if name in ABSOLUTE_NAMES:
        return "absolute"
    if name in RELATIVE_NAMES:
        return "step-relative"
    return None


def _describe(node: ast.AST) -> str:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return "<expr>"  # pragma: no cover - guarded by _origin


@python_rule(
    "TIME001",
    name="mixed-time-origins",
    description=(
        "Absolute simulator-clock values and step-relative values were "
        "combined in a way unit algebra forbids (the PR-1 bug class); "
        "convert explicitly via step_start first."
    ),
    scope=TIME_SCOPE,
)
def check_mixed_origins(ctx: PythonContext, rule: Rule) -> List[Finding]:
    """Flag cross-origin comparisons, sums, and direct assignments."""
    findings = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Compare):
            sides = [node.left, *node.comparators]
            origins = {o for o in map(_origin, sides) if o is not None}
            if len(origins) == 2:
                names = ", ".join(
                    f"{_describe(s)} ({_origin(s)})"
                    for s in sides
                    if _origin(s) is not None
                )
                findings.append(ctx.finding(
                    rule, node,
                    f"comparison mixes time origins: {names}; convert "
                    "via step_start before comparing",
                ))
        elif isinstance(node, ast.BinOp):
            left, right = _origin(node.left), _origin(node.right)
            if (
                isinstance(node.op, ast.Add)
                and left == "absolute"
                and right == "absolute"
            ):
                findings.append(ctx.finding(
                    rule, node,
                    f"{_describe(node.left)} + {_describe(node.right)} "
                    "adds two absolute clock readings; subtract to get "
                    "a duration instead",
                ))
            elif (
                isinstance(node.op, ast.Sub)
                and left == "step-relative"
                and right == "absolute"
            ):
                findings.append(ctx.finding(
                    rule, node,
                    f"{_describe(node.left)} - {_describe(node.right)} "
                    "subtracts an absolute clock reading from a "
                    "step-relative value; did you mean the opposite "
                    f"order, or `step_start + {_describe(node.left)}`?",
                ))
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            target_origin = _origin(node.targets[0])
            value_origin = _origin(node.value)
            if (
                target_origin is not None
                and value_origin is not None
                and target_origin != value_origin
            ):
                findings.append(ctx.finding(
                    rule, node,
                    f"assigning {value_origin} value "
                    f"{_describe(node.value)!r} to {target_origin} name "
                    f"{_describe(node.targets[0])!r}; convert via "
                    "step_start",
                ))
    return findings


@python_rule(
    "TIME002",
    name="undocumented-time-unit",
    description=(
        "Time-valued parameters must state their unit and origin "
        "(seconds; absolute vs step-relative) in the function or class "
        "docstring — the convention of simulation/cluster.py."
    ),
    scope=TIME_SCOPE,
)
def check_documented_units(ctx: PythonContext, rule: Rule) -> List[Finding]:
    """Flag time-valued parameters whose docstrings omit the unit."""
    findings = []

    class Visitor(ast.NodeVisitor):
        """Tracks the class stack so methods may rely on class docs."""

        def __init__(self) -> None:
            self.class_docs: List[str] = []

        def visit_ClassDef(self, node: ast.ClassDef) -> None:
            self.class_docs.append(ast.get_docstring(node) or "")
            self.generic_visit(node)
            self.class_docs.pop()

        def _check_function(self, node: ast.AST) -> None:
            args = node.args
            params = [
                a.arg
                for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
                if a.arg not in ("self", "cls")
                and _TIME_PARAM_RE.search(a.arg)
            ]
            if not params:
                return
            docs = [ast.get_docstring(node) or ""]
            if self.class_docs:
                docs.append(self.class_docs[-1])
            if any(_UNIT_RE.search(d) for d in docs):
                return
            findings.append(ctx.finding(
                rule, node,
                f"{node.name}() takes time-valued parameter(s) "
                f"{', '.join(repr(p) for p in params)} but neither its "
                "docstring nor the class docstring states the unit "
                "(seconds) and origin (absolute vs step-relative)",
            ))

        def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
            self._check_function(node)
            self.generic_visit(node)

        def visit_AsyncFunctionDef(self, node) -> None:
            self._check_function(node)
            self.generic_visit(node)

    Visitor().visit(ctx.tree)
    return findings


#: Wall-clock attribute reads on the ``time`` module.  ``time.sleep``
#: is excluded on purpose: sleeping paces execution without producing
#: a value that could contaminate a simulated-time result.
_WALLCLOCK_TIME_ATTRS = frozenset({
    "time", "monotonic", "perf_counter", "process_time",
    "monotonic_ns", "perf_counter_ns", "time_ns", "process_time_ns",
})


@python_rule(
    "TIME003",
    name="wall-clock-in-simulated-time-layer",
    description=(
        "Simulated-time layers outside the DET002 core (serve/obs/"
        "straggler) must not read wall clocks — time.time()/"
        "monotonic()/perf_counter(), datetime.now(), or an asyncio "
        "loop's .time() would make results scheduling-dependent; "
        "serve/mailbox.py (client polling) is the sanctioned "
        "exception."
    ),
    scope=WALLCLOCK_FREE_SCOPE,
    exclude=WALLCLOCK_EXCEPTIONS,
)
def check_wallclock_isolation(ctx: PythonContext, rule: Rule) -> List[Finding]:
    """Flag wall-clock reads in layers whose results are simulated."""
    findings = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ImportFrom):
            if node.module in ("time", "datetime") and any(
                alias.name != "sleep" for alias in node.names
            ):
                names = ", ".join(
                    alias.name for alias in node.names
                    if alias.name != "sleep"
                )
                findings.append(ctx.finding(
                    rule, node,
                    f"`from {node.module} import {names}` brings a "
                    "wall-clock source into a simulated-time layer; "
                    "results here must depend only on simulator clocks",
                ))
        elif isinstance(node, ast.Attribute):
            value = node.value
            if not isinstance(value, ast.Name):
                continue
            if value.id == "time" and node.attr in _WALLCLOCK_TIME_ATTRS:
                findings.append(ctx.finding(
                    rule, node,
                    f"time.{node.attr}() reads the wall clock inside a "
                    "simulated-time layer; derive timing from the "
                    "engine's simulator clock instead",
                ))
            elif value.id == "datetime" and node.attr in (
                "now", "utcnow", "today"
            ):
                findings.append(ctx.finding(
                    rule, node,
                    f"datetime.{node.attr}() reads the wall clock "
                    "inside a simulated-time layer",
                ))
            elif node.attr == "time" and value.id in (
                "loop", "_loop", "event_loop"
            ):
                findings.append(ctx.finding(
                    rule, node,
                    f"{value.id}.time() reads the event loop's clock "
                    "inside a simulated-time layer; simulated results "
                    "must not depend on asyncio scheduling",
                ))
    return findings
