"""Run every paper experiment and print its tables.

Used by the benchmark harness (``benchmarks/``) and runnable directly::

    python -m repro.experiments.runner [fig11|fig12|fig13|all]
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, List

from ..analysis.reporting import Table
from .config import Fig11Config, Fig12Config, Fig13Config
from .fig11 import fig11_tables
from .fig12 import fig12_tables
from .fig13 import fig13_tables
from .extra import adaptive_policy_table, enduring_straggler_table

EXPERIMENTS: Dict[str, Callable[[], List[Table]]] = {
    "fig11": lambda: fig11_tables(Fig11Config()),
    "fig12": lambda: fig12_tables(Fig12Config()),
    "fig13": lambda: fig13_tables(Fig13Config()),
    "extra": lambda: [enduring_straggler_table(), adaptive_policy_table()],
}


def run(name: str) -> List[Table]:
    """Run one experiment by id and return its tables."""
    if name not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[name]()


def run_all() -> Dict[str, List[Table]]:
    """Run the whole evaluation section."""
    return {name: fn() for name, fn in EXPERIMENTS.items()}


def main(argv: List[str] | None = None) -> None:  # pragma: no cover - CLI
    """Run the experiments named in ``argv`` (default: all)."""
    argv = argv if argv is not None else sys.argv[1:]
    targets = argv or ["all"]
    names = sorted(EXPERIMENTS) if "all" in targets else targets
    for name in names:
        for table in run(name):
            table.show()


if __name__ == "__main__":  # pragma: no cover
    main()
