"""Run every paper experiment and print its tables.

Used by the benchmark harness (``benchmarks/``) and runnable directly::

    python -m repro.experiments.runner [fig11|fig12|fig13|all] [--jobs N] [--trace PATH]

``--jobs N`` fans the figure grids out over a
:class:`~repro.parallel.ProcessExecutor` with ``N`` workers — results
are bit-for-bit identical to serial runs (see ``docs/parallelism.md``).
``--trace PATH`` additionally runs the traced Fig. 11 condition and
exports its round stream as JSONL (re-load with
``repro trace summarize PATH``).
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, List, Optional

from ..analysis.reporting import Table
from ..parallel import ProcessExecutor, SweepExecutor
from .config import Fig11Config, Fig12Config, Fig13Config
from .fig11 import fig11_tables, run_traced_fig11
from .fig12 import fig12_tables
from .fig13 import fig13_tables
from .extra import adaptive_policy_table, enduring_straggler_table

EXPERIMENTS: Dict[str, Callable[..., List[Table]]] = {
    "fig11": lambda executor=None: fig11_tables(
        Fig11Config(), executor=executor
    ),
    "fig12": lambda executor=None: fig12_tables(
        Fig12Config(), executor=executor
    ),
    "fig13": lambda executor=None: fig13_tables(
        Fig13Config(), executor=executor
    ),
    # The extra tables are cheap single-condition runs; no grid to fan out.
    "extra": lambda executor=None: [
        enduring_straggler_table(), adaptive_policy_table()
    ],
}


def executor_for_jobs(jobs: Optional[int]) -> "SweepExecutor | None":
    """``--jobs`` semantics shared by the runner and the CLI: ``None``
    or ``1`` means the default serial path, more means a process pool."""
    if jobs is None or jobs <= 1:
        return None
    return ProcessExecutor(jobs)


def run(name: str, jobs: Optional[int] = None) -> List[Table]:
    """Run one experiment by id and return its tables."""
    if name not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[name](executor=executor_for_jobs(jobs))


def run_all(jobs: Optional[int] = None) -> Dict[str, List[Table]]:
    """Run the whole evaluation section."""
    return {name: run(name, jobs=jobs) for name in EXPERIMENTS}


def export_trace(path: str, cfg: Fig11Config | None = None) -> int:
    """Run the traced Fig. 11 condition and export JSONL to ``path``.

    Returns the number of round records written.
    """
    _, tracer = run_traced_fig11(cfg or Fig11Config(), out_path=path)
    return len(tracer)


def main(argv: List[str] | None = None) -> None:  # pragma: no cover - CLI
    """Run the experiments named in ``argv`` (default: all)."""
    argv = list(argv) if argv is not None else sys.argv[1:]
    trace_path: str | None = None
    jobs: int | None = None
    if "--trace" in argv:
        idx = argv.index("--trace")
        try:
            trace_path = argv[idx + 1]
        except IndexError:
            raise SystemExit("--trace requires a file path") from None
        del argv[idx : idx + 2]
    if "--jobs" in argv:
        idx = argv.index("--jobs")
        try:
            jobs = int(argv[idx + 1])
        except (IndexError, ValueError):
            raise SystemExit("--jobs requires an integer") from None
        del argv[idx : idx + 2]
    targets = argv or ["all"]
    names = sorted(EXPERIMENTS) if "all" in targets else targets
    for name in names:
        for table in run(name, jobs=jobs):
            table.show()
    if trace_path is not None:
        count = export_trace(trace_path)
        print(f"exported {count} round traces to {trace_path}")


if __name__ == "__main__":  # pragma: no cover
    main()
