"""Fig. 13 — the HR trade-off between FR and CR.

Sweep ``HR(8, c1, 4 - c1)`` with ``g = 2`` groups:

* ``c1 = 0``  → pure CR;
* ``c1 = 3``  → places identically to ``HR(8, 4, 0)``, i.e. FR
  (``n0 = c = 4``);
* intermediate ``c1`` interpolates — the conflict graph loses edges as
  ``c1`` grows (Theorem 7), so recovery improves monotonically.

Panel (a): recovered gradients vs ``c1`` at ``w = 2`` (Monte-Carlo).
Panel (b): training-loss curves vs step at ``w = 2`` for each ``c1`` —
more recovery per step means faster loss descent.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..analysis.recovery import monte_carlo_recovery
from ..analysis.reporting import Table
from ..core.hybrid import HybridRepetition
from ..engine.spec import make_strategy
from ..env import delay_model_from, make_delay_model
from ..parallel import PointTask, SweepExecutor
from ..simulation.cluster import ClusterSimulator
from ..straggler.traces import DelayTrace
from ..training.datasets import build_batch_streams, make_cifar_like, partition_dataset
from ..training.models import MLPClassifier
from ..training.optimizers import SGD
from ..training.trainer import DistributedTrainer
from .config import Fig13Config


@dataclass(frozen=True)
class HRPoint:
    """One c1 setting of the sweep."""

    c1: int
    c2: int
    mean_recovered: float
    mean_fraction: float
    loss_curve: Tuple[float, ...]


def _placement(cfg: Fig13Config, c1: int) -> HybridRepetition:
    from ..core.scheme import make_placement

    return make_placement(
        "hr", num_workers=cfg.num_workers, c1=c1, c2=cfg.total_c - c1,
        num_groups=cfg.num_groups,
    )


def _fig13_cell(cfg: Fig13Config, c1: int) -> HRPoint:
    """One ``c1`` setting, both panels.

    Self-contained (dataset, streams and the shared delay trace all
    rebuild from ``cfg``'s seeds), hence picklable as
    ``partial(_fig13_cell, cfg)`` and bit-identical under any executor.
    """
    n = cfg.num_workers
    dataset = make_cifar_like(cfg.dataset_samples, side=8, seed=cfg.seed)
    partitions = partition_dataset(dataset, n, seed=cfg.seed + 1)
    streams = build_batch_streams(partitions, cfg.batch_size, seed=cfg.seed + 2)
    trace = DelayTrace.record(
        make_delay_model("exponential", mean=1.0),
        n, cfg.num_steps, np.random.default_rng(cfg.seed + 3),
    )

    placement = _placement(cfg, c1)
    stats = monte_carlo_recovery(
        placement, cfg.wait_for, trials=cfg.recovery_trials, seed=cfg.seed
    )
    strategy = make_strategy(
        "is-gc-hr",
        num_workers=n,
        wait_for=cfg.wait_for,
        seed=cfg.seed + c1,
        c1=c1,
        c2=cfg.total_c - c1,
        num_groups=cfg.num_groups,
    )
    model = MLPClassifier(8 * 8 * 3, hidden_units=32, num_classes=10, seed=0)
    cluster = ClusterSimulator(
        num_workers=n,
        partitions_per_worker=placement.partitions_per_worker,
        delay_model=delay_model_from(trace),
        rng=np.random.default_rng(cfg.seed),
    )
    trainer = DistributedTrainer(
        model, streams, strategy, cluster, SGD(cfg.learning_rate),
        eval_data=dataset,
    )
    summary = trainer.run(cfg.num_steps)
    return HRPoint(
        c1=c1,
        c2=cfg.total_c - c1,
        mean_recovered=stats.mean_recovered,
        mean_fraction=stats.mean_fraction,
        loss_curve=summary.loss_curve,
    )


def run_fig13(
    cfg: Fig13Config | None = None,
    executor: "SweepExecutor | None" = None,
) -> List[HRPoint]:
    """Both panels for every ``c1``."""
    cfg = cfg or Fig13Config()
    if executor is None:
        return [_fig13_cell(cfg, c1) for c1 in cfg.c1_values]
    tasks = [
        PointTask(index=i, params={"c1": c1})
        for i, c1 in enumerate(cfg.c1_values)
    ]
    outcomes = executor.run(
        functools.partial(_fig13_cell, cfg), tasks, reraise=True
    )
    return [o.value for o in outcomes]


def fig13_tables(
    cfg: Fig13Config | None = None,
    executor: "SweepExecutor | None" = None,
) -> List[Table]:
    """Both panels as printable tables."""
    cfg = cfg or Fig13Config()
    points = run_fig13(cfg, executor=executor)

    recovery = Table(
        title=(
            "Fig 13(a) — recovered gradients vs c1, "
            f"HR({cfg.num_workers}, c1, {cfg.total_c}-c1), w={cfg.wait_for}"
        ),
        columns=["c1", "c2", "mean recovered partitions", "% of gradients"],
    )
    for p in points:
        recovery.add_row(
            p.c1, p.c2, p.mean_recovered, f"{100 * p.mean_fraction:.1f}%"
        )

    checkpoints = [
        s for s in (9, 19, 39, 59, 79, 99, cfg.num_steps - 1)
        if s < cfg.num_steps
    ]
    losses = Table(
        title=f"Fig 13(b) — training loss vs step, w={cfg.wait_for}",
        columns=["step", *(f"c1={p.c1}" for p in points)],
    )
    for s in checkpoints:
        losses.add_row(
            s + 1, *(p.loss_curve[s] if s < len(p.loss_curve) else float("nan")
                     for p in points)
        )
    return [recovery, losses]


def main() -> None:  # pragma: no cover - CLI entry
    """Print every table of this experiment."""
    for table in fig13_tables():
        table.show()


if __name__ == "__main__":  # pragma: no cover
    main()
