"""Fig. 11 — average time per step under exponential stragglers.

The paper trains ResNet-18/ImageNet on 24 workers and injects
exponential delays (mean 1.5 s / 3.0 s) on 12 or all 24 workers before
each upload.  Step *time* depends only on arrival order, so this
experiment runs the event simulator directly — the gradient pipeline
adds nothing to the measurement.

Schemes compared (as in the paper):

* synchronous SGD (``c = 1``, wait all);
* GC with ``c = 2`` (wait ``n - 1``);
* IS-SGD (``c = 1``, wait ``w``);
* IS-GC (``c = 2``, wait ``w``).

Expected shape (paper, Sec. VIII-B): sync-SGD and GC suffer badly
(GC even worse than sync because of the larger ``c``); IS-GC saves up
to ~75 % of step time; IS-GC is above IS-SGD but the overhead shrinks
below ~10 % when delays dominate (mean 3.0 s).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..analysis.reporting import Table
from ..simulation.cluster import ClusterSimulator, ComputeModel
from ..simulation.policies import WaitForK, WaitPolicy
from ..straggler.models import ExponentialDelay
from ..straggler.traces import DelayTrace, TraceReplayModel
from .config import Fig11Config


@dataclass(frozen=True)
class SchemePoint:
    """Average step time of one scheme under one delay condition."""

    scheme: str
    wait_for: int
    partitions_per_worker: int
    avg_step_time: float


def _avg_step_time(
    trace: DelayTrace,
    cfg: Fig11Config,
    partitions_per_worker: int,
    policy: WaitPolicy,
) -> float:
    """Replay the shared delay trace under one scheme's policy."""
    sim = ClusterSimulator(
        num_workers=cfg.num_workers,
        partitions_per_worker=partitions_per_worker,
        compute=ComputeModel(cfg.base_compute, cfg.per_partition_compute),
        delay_model=TraceReplayModel(trace),
        rng=np.random.default_rng(cfg.seed),
    )
    times: List[float] = []
    for step in range(cfg.num_steps):
        result = sim.run_round(step, policy)
        times.append(result.step_time)
    return float(np.mean(times))


def run_condition(
    cfg: Fig11Config, expected_delay: float, num_delayed: int
) -> List[SchemePoint]:
    """All schemes under one (delay mean, #delayed workers) condition.

    Every scheme replays the *same* recorded delay trace, exactly like
    the paper's controlled-seed methodology.
    """
    n = cfg.num_workers
    c = cfg.partitions_per_worker
    rng = np.random.default_rng((cfg.seed, int(expected_delay * 1000), num_delayed))
    model = ExponentialDelay(expected_delay, affected=range(num_delayed))
    trace = DelayTrace.record(model, n, cfg.num_steps, rng)

    points: List[SchemePoint] = []
    points.append(
        SchemePoint(
            "sync-sgd", n, 1, _avg_step_time(trace, cfg, 1, WaitForK(n))
        )
    )
    points.append(
        SchemePoint(
            "gc", n - c + 1, c,
            _avg_step_time(trace, cfg, c, WaitForK(n - c + 1)),
        )
    )
    for w in cfg.wait_values:
        points.append(
            SchemePoint(
                f"is-sgd(w={w})", w, 1,
                _avg_step_time(trace, cfg, 1, WaitForK(w)),
            )
        )
        points.append(
            SchemePoint(
                f"is-gc(w={w})", w, c,
                _avg_step_time(trace, cfg, c, WaitForK(w)),
            )
        )
    return points


def run_fig11(cfg: Fig11Config | None = None) -> Dict[Tuple[float, int], List[SchemePoint]]:
    """Both panels: every (delay mean, #delayed) condition."""
    cfg = cfg or Fig11Config()
    results: Dict[Tuple[float, int], List[SchemePoint]] = {}
    for delay in cfg.expected_delays:
        for num_delayed in cfg.num_delayed_options:
            results[(delay, num_delayed)] = run_condition(cfg, delay, num_delayed)
    return results


def fig11_tables(cfg: Fig11Config | None = None) -> List[Table]:
    """Render the Fig. 11 reproduction as printable tables."""
    cfg = cfg or Fig11Config()
    results = run_fig11(cfg)
    tables: List[Table] = []
    for (delay, num_delayed), points in sorted(results.items()):
        table = Table(
            title=(
                f"Fig 11 — avg time/step (s), E[delay]={delay}s on "
                f"{num_delayed}/{cfg.num_workers} workers"
            ),
            columns=[
                "scheme", "w", "c", "avg step time (s)",
                "vs sync-sgd", "vs gc",
            ],
        )
        sync_time = next(p for p in points if p.scheme == "sync-sgd").avg_step_time
        gc_time = next(p for p in points if p.scheme == "gc").avg_step_time
        for p in points:
            vs_sync = 100.0 * (1.0 - p.avg_step_time / sync_time)
            vs_gc = 100.0 * (1.0 - p.avg_step_time / gc_time)
            table.add_row(
                p.scheme, p.wait_for, p.partitions_per_worker,
                p.avg_step_time, f"{vs_sync:+.1f}%", f"{vs_gc:+.1f}%",
            )
        tables.append(table)
    return tables


def main() -> None:  # pragma: no cover - CLI entry
    """Print every table of this experiment."""
    for table in fig11_tables():
        table.show()


if __name__ == "__main__":  # pragma: no cover
    main()
