"""Fig. 11 — average time per step under exponential stragglers.

The paper trains ResNet-18/ImageNet on 24 workers and injects
exponential delays (mean 1.5 s / 3.0 s) on 12 or all 24 workers before
each upload.  Step *time* depends only on arrival order, so this
experiment runs the event simulator directly — the gradient pipeline
adds nothing to the measurement.

Schemes compared (as in the paper):

* synchronous SGD (``c = 1``, wait all);
* GC with ``c = 2`` (wait ``n - 1``);
* IS-SGD (``c = 1``, wait ``w``);
* IS-GC (``c = 2``, wait ``w``).

Expected shape (paper, Sec. VIII-B): sync-SGD and GC suffer badly
(GC even worse than sync because of the larger ``c``); IS-GC saves up
to ~75 % of step time; IS-GC is above IS-SGD but the overhead shrinks
below ~10 % when delays dominate (mean 3.0 s).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Tuple

import numpy as np

from ..analysis.reporting import Table
from ..core.scheme import make_placement
from ..core.decoders import Decoder, decoder_for
from ..env import delay_model_from, make_compute_model, make_delay_model
from ..parallel import PointTask, SweepExecutor
from ..simulation.cluster import ClusterSimulator
from ..simulation.policies import WaitForK, WaitPolicy
from ..straggler.traces import DelayTrace
from .config import Fig11Config

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.tracer import RoundTracer


@dataclass(frozen=True)
class SchemePoint:
    """Average step time of one scheme under one delay condition."""

    scheme: str
    wait_for: int
    partitions_per_worker: int
    avg_step_time: float


def _avg_step_time(
    trace: DelayTrace,
    cfg: Fig11Config,
    partitions_per_worker: int,
    policy: WaitPolicy,
    tracer: "RoundTracer | None" = None,
    scheme_label: str | None = None,
    decoder: Decoder | None = None,
) -> float:
    """Replay the shared delay trace under one scheme's policy.

    With a ``tracer``, every round is recorded under ``scheme_label``;
    schemes that decode (``decoder`` given) also enrich each round with
    the decode outcome so recovery fractions land in the trace.
    """
    if tracer is not None and scheme_label is not None:
        tracer.set_context(scheme=scheme_label)
    sim = ClusterSimulator(
        num_workers=cfg.num_workers,
        partitions_per_worker=partitions_per_worker,
        compute=make_compute_model(
            "uniform",
            base=cfg.base_compute,
            per_partition=cfg.per_partition_compute,
        ),
        delay_model=delay_model_from(trace),
        rng=np.random.default_rng(cfg.seed),
        tracer=tracer,
    )
    times: List[float] = []
    accepted: List[frozenset] = []
    trace_decodes = tracer is not None and decoder is not None
    for step in range(cfg.num_steps):
        result = sim.run_round(step, policy)
        times.append(result.step_time)
        if trace_decodes:
            accepted.append(result.outcome.accepted_workers)
    if trace_decodes:
        # One vectorized decode over the whole run.  Safe to defer:
        # record_decode enriches each already-recorded round in place
        # (keyed on step), and batched decoding consumes the decoder's
        # generator in step order exactly as the per-step loop did.
        batch = decoder.decode_batch(accepted)
        num_partitions = decoder.placement.num_partitions
        for step in range(cfg.num_steps):
            tracer.record_decode(
                step,
                decoder_scheme=decoder.scheme,
                num_searches=int(batch.num_searches[step]),
                num_recovered=int(batch.num_recovered[step]),
                num_partitions=num_partitions,
            )
    return float(np.mean(times))


def run_condition(
    cfg: Fig11Config,
    expected_delay: float,
    num_delayed: int,
    tracer: "RoundTracer | None" = None,
) -> List[SchemePoint]:
    """All schemes under one (delay mean, #delayed workers) condition.

    Every scheme replays the *same* recorded delay trace, exactly like
    the paper's controlled-seed methodology.  With a ``tracer``, every
    round of every scheme lands in the trace stream; the decoding
    schemes additionally record recovery via the real CR decoder.
    """
    n = cfg.num_workers
    c = cfg.partitions_per_worker
    rng = np.random.default_rng((cfg.seed, int(expected_delay * 1000), num_delayed))
    model = make_delay_model(
        "exponential", mean=expected_delay, affected=range(num_delayed)
    )
    trace = DelayTrace.record(model, n, cfg.num_steps, rng)

    # Decoders are only built when tracing asks for recovery numbers;
    # the pure timing measurement stays decoder-free.
    def cr_decoder() -> Decoder | None:
        if tracer is None:
            return None
        return decoder_for(
            make_placement("cr", num_workers=n, partitions_per_worker=c),
            rng=np.random.default_rng(cfg.seed),
        )

    # Declarative cells: (label, wait count, partitions/worker, decoder).
    # Each cell replays the shared trace under its own wait policy; only
    # the IS-GC cells carry a decoder (the others either wait for full
    # recovery or don't code at all).
    cells: List[Tuple[str, int, int, Decoder | None]] = [
        ("sync-sgd", n, 1, None),
        ("gc", n - c + 1, c, None),
    ]
    for w in cfg.wait_values:
        cells.append((f"is-sgd(w={w})", w, 1, None))
        cells.append((f"is-gc(w={w})", w, c, cr_decoder()))
    return [
        SchemePoint(
            label, wait_for, ppw,
            _avg_step_time(
                trace, cfg, ppw, WaitForK(wait_for),
                tracer=tracer, scheme_label=label, decoder=decoder,
            ),
        )
        for label, wait_for, ppw, decoder in cells
    ]


def run_fig11(
    cfg: Fig11Config | None = None,
    tracer: "RoundTracer | None" = None,
    executor: "SweepExecutor | None" = None,
) -> Dict[Tuple[float, int], List[SchemePoint]]:
    """Both panels: every (delay mean, #delayed) condition.

    Conditions are independent (each builds its own trace from
    ``(cfg.seed, delay, num_delayed)``), so any
    :class:`~repro.parallel.SweepExecutor` reproduces the serial
    results bit-for-bit.  Tracing forces the serial path — a tracer
    accumulates in-process state that cannot cross a pool boundary.
    """
    cfg = cfg or Fig11Config()
    conditions = [
        (delay, num_delayed)
        for delay in cfg.expected_delays
        for num_delayed in cfg.num_delayed_options
    ]
    if tracer is not None or executor is None:
        return {
            (delay, num_delayed): run_condition(
                cfg, delay, num_delayed, tracer=tracer
            )
            for delay, num_delayed in conditions
        }
    tasks = [
        PointTask(
            index=i,
            params={"expected_delay": delay, "num_delayed": num_delayed},
        )
        for i, (delay, num_delayed) in enumerate(conditions)
    ]
    outcomes = executor.run(
        functools.partial(run_condition, cfg), tasks, reraise=True
    )
    return {conditions[o.index]: o.value for o in outcomes}


def run_traced_fig11(
    cfg: Fig11Config | None = None,
    out_path=None,
    expected_delay: float | None = None,
    num_delayed: int | None = None,
) -> Tuple[List[SchemePoint], "RoundTracer"]:
    """One traced Fig. 11 condition: run, optionally export JSONL.

    Runs a *single* (delay, num_delayed) condition — the first of the
    config by default — so scheme labels in the exported trace are
    unambiguous, and returns both the live scheme points and the tracer.
    Re-aggregating the exported trace reproduces the live per-scheme
    mean step times exactly (pinned by ``tests/test_obs_integration``).
    """
    from ..obs.tracer import RoundTracer

    cfg = cfg or Fig11Config()
    delay = expected_delay if expected_delay is not None else cfg.expected_delays[0]
    delayed = num_delayed if num_delayed is not None else cfg.num_delayed_options[0]
    tracer = RoundTracer()
    points = run_condition(cfg, delay, delayed, tracer=tracer)
    if out_path is not None:
        tracer.export_jsonl(out_path)
    return points, tracer


def fig11_tables(
    cfg: Fig11Config | None = None,
    executor: "SweepExecutor | None" = None,
) -> List[Table]:
    """Render the Fig. 11 reproduction as printable tables."""
    cfg = cfg or Fig11Config()
    results = run_fig11(cfg, executor=executor)
    tables: List[Table] = []
    for (delay, num_delayed), points in sorted(results.items()):
        table = Table(
            title=(
                f"Fig 11 — avg time/step (s), E[delay]={delay}s on "
                f"{num_delayed}/{cfg.num_workers} workers"
            ),
            columns=[
                "scheme", "w", "c", "avg step time (s)",
                "vs sync-sgd", "vs gc",
            ],
        )
        sync_time = next(p for p in points if p.scheme == "sync-sgd").avg_step_time
        gc_time = next(p for p in points if p.scheme == "gc").avg_step_time
        for p in points:
            vs_sync = 100.0 * (1.0 - p.avg_step_time / sync_time)
            vs_gc = 100.0 * (1.0 - p.avg_step_time / gc_time)
            table.add_row(
                p.scheme, p.wait_for, p.partitions_per_worker,
                p.avg_step_time, f"{vs_sync:+.1f}%", f"{vs_gc:+.1f}%",
            )
        tables.append(table)
    return tables


def main() -> None:  # pragma: no cover - CLI entry
    """Print every table of this experiment."""
    for table in fig11_tables():
        table.show()


if __name__ == "__main__":  # pragma: no cover
    main()
