"""Shared experiment configuration.

Defaults are scaled so the whole suite reproduces on a laptop in
minutes while preserving the paper's *shapes* (who wins, by what
factor, where crossovers fall).  Every figure runner accepts a config
object so benches and tests can dial sizes up or down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..exceptions import ConfigurationError


@dataclass(frozen=True)
class Fig11Config:
    """Fig. 11: average step time under exponential stragglers.

    Paper setting: ResNet-18/ImageNet on 24 workers, batch 64, c = 2,
    exponential delays (mean 1.5 s or 3.0 s) injected on 12 or all 24
    workers.  We reproduce the timing shape with the event simulator —
    no gradients needed, step time depends only on arrival times.
    """

    num_workers: int = 24
    partitions_per_worker: int = 2
    num_steps: int = 300
    expected_delays: Sequence[float] = (1.5, 3.0)
    num_delayed_options: Sequence[int] = (12, 24)
    wait_values: Sequence[int] = (6, 12, 18)
    # Per-copy model compute dominates on the paper's HPC (each worker
    # trains c model copies sequentially); with per-partition compute
    # above the mean injected delay, GC (c=2, wait n-1) lands *above*
    # sync-SGD exactly as the paper reports for Fig. 11(a).
    base_compute: float = 0.1
    per_partition_compute: float = 1.6
    seed: int = 2023

    def __post_init__(self) -> None:
        if self.num_workers <= 0 or self.num_steps <= 0:
            raise ConfigurationError("num_workers and num_steps must be positive")
        for w in self.wait_values:
            if not 1 <= w <= self.num_workers:
                raise ConfigurationError(f"wait value {w} outside [1, n]")
        for d in self.num_delayed_options:
            if not 0 <= d <= self.num_workers:
                raise ConfigurationError(f"num_delayed {d} outside [0, n]")


@dataclass(frozen=True)
class Fig12Config:
    """Fig. 12: end-to-end training comparison at n = 4, c = 2.

    Paper setting: ResNet-18/CIFAR-10, batch 128, lr 0.006, n = 4,
    train to a loss threshold, sweep w ∈ {1, 2, 3, 4}; 10 trials.
    Substitution: MLP on the CIFAR-like synthetic dataset.
    """

    num_workers: int = 4
    partitions_per_worker: int = 2
    wait_values: Sequence[int] = (1, 2, 3, 4)
    # Batch 16 (vs the paper's 128) compensates for our much smaller
    # model: it keeps per-partition gradient noise high enough that the
    # recovered-gradient fraction visibly controls steps-to-threshold,
    # which is exactly the effect Fig. 12(b) measures.
    batch_size: int = 16
    learning_rate: float = 0.15
    loss_threshold: float = 0.5
    max_steps: int = 1200
    num_trials: int = 3
    dataset_samples: int = 2048
    expected_delay: float = 1.0
    num_straggling: int = 4
    recovery_trials: int = 4000
    seed: int = 2023

    def __post_init__(self) -> None:
        if self.num_workers <= 0:
            raise ConfigurationError("num_workers must be positive")
        for w in self.wait_values:
            if not 1 <= w <= self.num_workers:
                raise ConfigurationError(f"wait value {w} outside [1, n]")


@dataclass(frozen=True)
class Fig13Config:
    """Fig. 13: the HR trade-off, HR(8, c1, 4 - c1) with g = 2.

    Paper setting: n = 8, c = 4, g = 2, lr 0.001, batch 128, w = 2;
    sweep c1 ∈ {0, 1, 2, 3} (c1 = 3 places identically to FR).
    """

    num_workers: int = 8
    total_c: int = 4
    num_groups: int = 2
    c1_values: Sequence[int] = (0, 1, 2, 3)
    wait_for: int = 2
    # Small batches keep gradient noise high so the c1-sweep's recovery
    # differences show up in the loss curves (see Fig12Config note).
    batch_size: int = 8
    learning_rate: float = 0.2
    num_steps: int = 300
    dataset_samples: int = 2048
    recovery_trials: int = 4000
    seed: int = 2023

    def __post_init__(self) -> None:
        for c1 in self.c1_values:
            if not 0 <= c1 <= self.total_c:
                raise ConfigurationError(f"c1={c1} outside [0, c]")
        if not 1 <= self.wait_for <= self.num_workers:
            raise ConfigurationError("wait_for outside [1, n]")
