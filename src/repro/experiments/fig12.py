"""Fig. 12 — end-to-end training comparison at n = 4, c = 2.

Panels (all versus the wait count ``w``):

(a) percentage of gradients recovered — IS-GC recovers more than
    IS-SGD at every ``w`` and hits 100 % already at ``w = 3``;
    FR beats CR at ``w = 2``;
(b) number of steps to a loss threshold — fewer recovered gradients →
    more steps; the fully-recovered minimum is the sync-SGD step count;
(c) average time per step — IS-GC pays a modest overhead over IS-SGD
    (higher ``c``), both far below sync-SGD / GC under stragglers;
(d) total training time — the product of (b) and (c); the optimum sits
    at an intermediate ``w`` (the paper finds ``w = 2``).

Substitution: MLP on the CIFAR-like synthetic set replaces
ResNet-18/CIFAR-10 (see DESIGN.md); delays are exponential, and every
scheme replays the same recorded delay trace per trial.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..analysis.recovery import monte_carlo_recovery
from ..analysis.reporting import Table
from ..analysis.stats import summarize_trials
from ..core.scheme import make_placement
from ..engine.spec import make_strategy
from ..env import delay_model_from, make_delay_model
from ..parallel import PointTask, SweepExecutor
from ..simulation.cluster import ClusterSimulator
from ..straggler.traces import DelayTrace
from ..training.datasets import build_batch_streams, make_cifar_like, partition_dataset
from ..training.models import MLPClassifier
from ..training.optimizers import SGD
from ..training.strategies import TrainingStrategy
from ..training.trainer import DistributedTrainer
from ..types import TrainingSummary
from .config import Fig12Config


@dataclass(frozen=True)
class TrainingPoint:
    """Averaged outcome of one (scheme, w) cell across trials.

    The ``*_ci`` strings are "mean ± half-width" (95% Student-t over
    trials) when the cell ran more than one trial, plain means
    otherwise — the paper's own Fig. 12 averages 10 cloud trials.
    """

    scheme: str
    wait_for: int
    recovery_pct: float
    num_steps: float
    avg_step_time: float
    total_time: float
    reached_threshold: bool
    num_steps_ci: str = ""
    total_time_ci: str = ""


def _make_model(cfg: Fig12Config) -> MLPClassifier:
    dim = 8 * 8 * 3
    return MLPClassifier(dim, hidden_units=32, num_classes=10, seed=0)


def _run_one(
    cfg: Fig12Config,
    strategy: TrainingStrategy,
    trace: DelayTrace,
    streams,
    eval_data,
) -> TrainingSummary:
    model = _make_model(cfg)
    cluster = ClusterSimulator(
        num_workers=cfg.num_workers,
        partitions_per_worker=strategy.placement.partitions_per_worker,
        delay_model=delay_model_from(trace),
        rng=np.random.default_rng(cfg.seed),
    )
    trainer = DistributedTrainer(
        model, streams, strategy, cluster, SGD(cfg.learning_rate),
        eval_data=eval_data,
    )
    return trainer.run(cfg.max_steps, loss_threshold=cfg.loss_threshold)


def _strategies_for(cfg: Fig12Config, w: int, trial_seed: int) -> List[TrainingStrategy]:
    """The schemes competing at wait count ``w``, via the scheme registry.

    Per-trial decoder seeds (``trial_seed + 1`` for FR, ``+ 2`` for CR,
    ``trial_seed`` for classic GC) are unchanged from the hand-wired
    implementation, so default-config results are bit-identical.
    """
    n, c = cfg.num_workers, cfg.partitions_per_worker
    cells = [
        ("is-sgd", None),
        ("is-gc-fr", trial_seed + 1),
        ("is-gc-cr", trial_seed + 2),
    ]
    if w == n:
        cells.append(("sync-sgd", None))
    if w == n - c + 1:
        cells.append(("gc", trial_seed))
    return [
        make_strategy(
            scheme, num_workers=n, partitions_per_worker=c,
            wait_for=w, seed=seed,
        )
        for scheme, seed in cells
    ]


def _fig12_cell(cfg: Fig12Config, wait_for: int) -> List[TrainingPoint]:
    """One wait-count column: every scheme, averaged over trials.

    Self-contained (dataset, streams and traces all rebuild from
    ``cfg``'s seeds), hence picklable as ``partial(_fig12_cell, cfg)``
    and bit-identical under any executor.
    """
    n = cfg.num_workers
    w = wait_for
    dataset = make_cifar_like(cfg.dataset_samples, side=8, seed=cfg.seed)
    partitions = partition_dataset(dataset, n, seed=cfg.seed + 1)
    streams = build_batch_streams(partitions, cfg.batch_size, seed=cfg.seed + 2)

    cell: Dict[str, List[TrainingSummary]] = {}
    for trial in range(cfg.num_trials):
        trial_seed = cfg.seed + 1000 * trial
        trace = DelayTrace.record(
            make_delay_model(
                "exponential",
                mean=cfg.expected_delay,
                affected=range(cfg.num_straggling),
            ),
            n, cfg.max_steps, np.random.default_rng(trial_seed),
        )
        for strategy in _strategies_for(cfg, w, trial_seed):
            summary = _run_one(cfg, strategy, trace, streams, dataset)
            cell.setdefault(strategy.name, []).append(summary)
    points: List[TrainingPoint] = []
    for scheme, summaries in cell.items():
        steps = [float(s.num_steps) for s in summaries]
        totals = [s.total_sim_time for s in summaries]
        points.append(
            TrainingPoint(
                scheme=scheme,
                wait_for=w,
                recovery_pct=100 * float(
                    np.mean([s.avg_recovery_fraction for s in summaries])
                ),
                num_steps=float(np.mean(steps)),
                avg_step_time=float(
                    np.mean([s.avg_step_time for s in summaries])
                ),
                total_time=float(np.mean(totals)),
                reached_threshold=all(s.reached_threshold for s in summaries),
                num_steps_ci=summarize_trials(steps).format(4),
                total_time_ci=summarize_trials(totals).format(4),
            )
        )
    return points


def run_fig12(
    cfg: Fig12Config | None = None,
    executor: "SweepExecutor | None" = None,
) -> Dict[int, List[TrainingPoint]]:
    """Panels (b)-(d): train every scheme at every w, averaged over trials."""
    cfg = cfg or Fig12Config()
    if executor is None:
        return {w: _fig12_cell(cfg, w) for w in cfg.wait_values}
    tasks = [
        PointTask(index=i, params={"wait_for": w})
        for i, w in enumerate(cfg.wait_values)
    ]
    outcomes = executor.run(
        functools.partial(_fig12_cell, cfg), tasks, reraise=True
    )
    return {cfg.wait_values[o.index]: o.value for o in outcomes}


def recovery_table(cfg: Fig12Config | None = None) -> Table:
    """Panel (a): Monte-Carlo recovered-gradient percentage vs w."""
    cfg = cfg or Fig12Config()
    n, c = cfg.num_workers, cfg.partitions_per_worker
    fr = make_placement("fr", num_workers=n, partitions_per_worker=c)
    cr = make_placement("cr", num_workers=n, partitions_per_worker=c)
    table = Table(
        title=f"Fig 12(a) — % of gradients recovered (n={n}, c={c})",
        columns=["w", "is-sgd", "is-gc-fr", "is-gc-cr"],
    )
    for w in cfg.wait_values:
        fr_stats = monte_carlo_recovery(
            fr, w, trials=cfg.recovery_trials, seed=cfg.seed
        )
        cr_stats = monte_carlo_recovery(
            cr, w, trials=cfg.recovery_trials, seed=cfg.seed
        )
        table.add_row(
            w,
            f"{100 * w / n:.1f}%",
            f"{100 * fr_stats.mean_fraction:.1f}%",
            f"{100 * cr_stats.mean_fraction:.1f}%",
        )
    return table


def fig12_tables(
    cfg: Fig12Config | None = None,
    executor: "SweepExecutor | None" = None,
) -> List[Table]:
    """All four panels as printable tables."""
    cfg = cfg or Fig12Config()
    tables = [recovery_table(cfg)]
    results = run_fig12(cfg, executor=executor)
    for panel, attr, ci_attr, unit in (
        ("(b) steps to threshold", "num_steps", "num_steps_ci", "steps"),
        ("(c) avg time per step", "avg_step_time", None, "s"),
        ("(d) total training time", "total_time", "total_time_ci", "s"),
    ):
        show_ci = ci_attr is not None and cfg.num_trials >= 2
        columns = ["w", "scheme", unit]
        if show_ci:
            columns.append("mean ± 95% CI")
        columns.append("hit threshold")
        table = Table(title=f"Fig 12{panel} [{unit}]", columns=columns)
        for w in sorted(results):
            for p in results[w]:
                row = [w, p.scheme, getattr(p, attr)]
                if show_ci:
                    row.append(getattr(p, ci_attr))
                row.append("yes" if p.reached_threshold else "no")
                table.add_row(*row)
        tables.append(table)
    return tables


def main() -> None:  # pragma: no cover - CLI entry
    """Print every table of this experiment."""
    for table in fig12_tables():
        table.show()


if __name__ == "__main__":  # pragma: no cover
    main()
