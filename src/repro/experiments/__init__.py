"""Paper-experiment harnesses (Figs. 11-13)."""

from .config import Fig11Config, Fig12Config, Fig13Config
from .fig11 import SchemePoint, fig11_tables, run_condition, run_fig11
from .fig12 import TrainingPoint, fig12_tables, recovery_table, run_fig12
from .fig13 import HRPoint, fig13_tables, run_fig13
from .extra import (
    adaptive_policy_study,
    adaptive_policy_table,
    enduring_straggler_study,
    enduring_straggler_table,
)
from .runner import run, run_all

__all__ = [
    "Fig11Config",
    "Fig12Config",
    "Fig13Config",
    "SchemePoint",
    "run_condition",
    "run_fig11",
    "fig11_tables",
    "TrainingPoint",
    "run_fig12",
    "recovery_table",
    "fig12_tables",
    "HRPoint",
    "run_fig13",
    "fig13_tables",
    "run",
    "run_all",
    "enduring_straggler_study",
    "enduring_straggler_table",
    "adaptive_policy_study",
    "adaptive_policy_table",
]
