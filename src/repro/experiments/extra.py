"""Beyond-the-paper experiments.

Two studies that extend the evaluation section:

* :func:`enduring_straggler_study` — Sec. VIII-C observes that a
  *persistent* straggler pushes IS-GC's recovered fraction above the
  i.i.d. expectation ("99.6 % … thanks to an enduring straggler").
  This experiment makes that effect first-class: recovery under
  uniform-random vs persistent stragglers, per scheme and per ``w``.

* :func:`adaptive_policy_study` — Sec. IV sketches waiting for fewer
  workers early and more later, plus deadlines.  This experiment
  trains IS-GC under fixed-w, deadline, ramp, and the latency-
  estimating policy, and compares time-to-loss.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..analysis.recovery import monte_carlo_recovery
from ..analysis.reporting import Table
from ..core.batch import enumerate_masks
from ..core.decoders import decoder_for
from ..core.scheme import make_placement
from ..engine.spec import make_strategy
from ..env import make_compute_model, make_delay_model, make_network_model
from ..simulation.cluster import ClusterSimulator
from ..simulation.policies import AdaptiveWaitK, DeadlinePolicy, WaitForK, linear_rampup
from ..straggler.estimators import EstimatingWaitPolicy, LatencyEstimator
from ..training.datasets import build_batch_streams, make_cifar_like, partition_dataset
from ..training.models import MLPClassifier
from ..training.optimizers import SGD
from ..training.trainer import DistributedTrainer


# ----------------------------------------------------------------------
# Enduring stragglers
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EnduringPoint:
    placement: str
    wait_for: int
    iid_recovery_pct: float
    persistent_best_pct: float
    persistent_worst_pct: float


def enduring_straggler_study(
    n: int = 4,
    c: int = 2,
    wait_values: Sequence[int] = (1, 2, 3),
    trials: int = 3000,
    seed: int = 0,
) -> List[EnduringPoint]:
    """Recovery with uniform-random vs persistent straggler sets.

    Persistent case: the same ``n − w`` workers are *always* the
    stragglers, so the available set is fixed and recovery is
    deterministic per step.  *Which* workers straggle decides the
    outcome, so both extremes are reported:

    * best case (stragglers spread so the survivors conflict least) —
      this is the paper's "99.6 % thanks to an enduring straggler"
      effect, recovery above the i.i.d. mean;
    * worst case (stragglers packed so survivors share groups/arcs) —
      recovery below the i.i.d. mean, the paper's bias warning about
      chronically slow workers.
    """
    points: List[EnduringPoint] = []
    for name, placement in (
        ("fr", make_placement("fr", num_workers=n, partitions_per_worker=c)),
        ("cr", make_placement("cr", num_workers=n, partitions_per_worker=c)),
    ):
        for w in wait_values:
            iid = monte_carlo_recovery(placement, w, trials=trials, seed=seed)
            decoder = decoder_for(placement, rng=np.random.default_rng(seed))
            # Every C(n, w) persistent-straggler pattern in one batch.
            outcomes = decoder.decode_batch(
                enumerate_masks(n, w)
            ).num_recovered
            points.append(
                EnduringPoint(
                    placement=name,
                    wait_for=w,
                    iid_recovery_pct=100 * iid.mean_fraction,
                    persistent_best_pct=100 * int(outcomes.max()) / n,
                    persistent_worst_pct=100 * int(outcomes.min()) / n,
                )
            )
    return points


def enduring_straggler_table(**kwargs) -> Table:
    """Render :func:`enduring_straggler_study` as a table."""
    points = enduring_straggler_study(**kwargs)
    table = Table(
        title="Extra — enduring (persistent) stragglers lift recovery "
        "above the i.i.d. expectation (Sec. VIII-C effect)",
        columns=[
            "placement", "w", "i.i.d. recovery %",
            "persistent best %", "persistent worst %",
        ],
    )
    for p in points:
        table.add_row(
            p.placement, p.wait_for,
            f"{p.iid_recovery_pct:.1f}",
            f"{p.persistent_best_pct:.1f}", f"{p.persistent_worst_pct:.1f}",
        )
    return table


# ----------------------------------------------------------------------
# Adaptive wait policies
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PolicyPoint:
    policy: str
    num_steps: int
    total_time: float
    avg_recovery_pct: float
    reached: bool


def adaptive_policy_study(
    n: int = 8,
    c: int = 2,
    max_steps: int = 400,
    loss_threshold: float = 1.2,
    seed: int = 0,
) -> List[PolicyPoint]:
    """Train IS-GC/CR under five wait policies on one shared workload."""
    dataset = make_cifar_like(1024, side=8, seed=seed)
    partitions = partition_dataset(dataset, n, seed=seed + 1)
    streams = build_batch_streams(partitions, batch_size=16, seed=seed + 2)
    delay = make_delay_model(
        "persistent",
        stragglers=[0, 1],
        delay={"kind": "shifted-exponential", "shift": 3.0, "mean": 0.5},
        background={"kind": "exponential", "mean": 0.2},
    )

    policies = [
        ("wait-4", WaitForK(4)),
        ("wait-7", WaitForK(7)),
        ("deadline 1.0s", DeadlinePolicy(1.0)),
        ("ramp 3→7", AdaptiveWaitK(linear_rampup(3, 7, max_steps // 2))),
        (
            "latency-estimating",
            EstimatingWaitPolicy(
                LatencyEstimator(smoothing=0.3), min_wait=2,
                slack=2.0, warmup_rounds=3,
            ),
        ),
    ]
    points: List[PolicyPoint] = []
    for name, policy in policies:
        strategy = make_strategy(
            "is-gc-cr", num_workers=n, partitions_per_worker=c,
            wait_for=4, seed=seed, policy=policy,
        )
        cluster = ClusterSimulator(
            num_workers=n,
            partitions_per_worker=c,
            compute=make_compute_model("uniform", base=0.05, per_partition=0.05),
            network=make_network_model("ideal"),
            delay_model=delay,
            rng=np.random.default_rng(seed + 7),
        )
        trainer = DistributedTrainer(
            MLPClassifier(8 * 8 * 3, 32, 10, seed=0), streams, strategy,
            cluster, SGD(0.15), eval_data=dataset,
        )
        summary = trainer.run(max_steps, loss_threshold=loss_threshold)
        points.append(
            PolicyPoint(
                policy=name,
                num_steps=summary.num_steps,
                total_time=summary.total_sim_time,
                avg_recovery_pct=100 * summary.avg_recovery_fraction,
                reached=summary.reached_threshold,
            )
        )
    return points


def adaptive_policy_table(**kwargs) -> Table:
    """Render :func:`adaptive_policy_study` as a table."""
    points = adaptive_policy_study(**kwargs)
    table = Table(
        title="Extra — wait-policy comparison for IS-GC "
        "(persistent + background stragglers)",
        columns=["policy", "steps", "total time (s)", "recovery %", "converged"],
    )
    for p in points:
        table.add_row(
            p.policy, p.num_steps, round(p.total_time, 1),
            f"{p.avg_recovery_pct:.1f}", "yes" if p.reached else "no",
        )
    return table
