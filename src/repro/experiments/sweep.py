"""Generic parameter sweeps.

Experiment harnesses keep wanting the same thing: run a function over
the cartesian product of named parameter values and tabulate the
results.  :class:`Sweep` does exactly that, with deterministic
ordering, per-point error capture, and direct rendering into the
reporting tables.

One unified entry point: :meth:`Sweep.run` evaluates any sweep —
plain-function or :meth:`over_spec`-built — under any
:class:`~repro.parallel.SweepExecutor` (serial by default, a process
pool via ``executor=ProcessExecutor(jobs)``), returning a
:class:`SweepResult`.  Parallel results are bit-for-bit identical to
serial because points are independent and per-point seeds are spawned
in the parent (see ``docs/parallelism.md``).
"""

from __future__ import annotations

import functools
import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Sequence

from ..analysis.reporting import Table
from ..exceptions import ConfigurationError
from ..parallel import PointTask, SerialExecutor, SweepExecutor, spawn_point_seeds


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated grid point.

    ``error`` carries the *full formatted traceback* of a failed
    point, not just ``str(exc)`` — a long sweep's one bad corner keeps
    the frame that failed, so post-mortems don't require re-running
    the grid.  Use :attr:`error_summary` for table cells and logs.
    """

    params: Dict[str, Any]
    value: Any
    error: str | None = None

    @property
    def ok(self) -> bool:
        """True when the point evaluated without raising."""
        return self.error is None

    @property
    def error_summary(self) -> "str | None":
        """The traceback's final ``ExcType: message`` line, or ``None``."""
        if self.error is None:
            return None
        lines = [ln for ln in self.error.strip().splitlines() if ln.strip()]
        return lines[-1] if lines else self.error


class SweepResult(Sequence[SweepPoint]):
    """The unified result of one :meth:`Sweep.run`.

    Behaves as an ordered sequence of :class:`SweepPoint` (row-major
    grid order, independent of evaluation order), plus execution
    metadata: which executor ran it and the wall-clock time.  Accepted
    directly by :meth:`Sweep.to_table` / :meth:`Sweep.to_grid_table`.
    """

    def __init__(
        self,
        points: Sequence[SweepPoint],
        *,
        executor: str = "serial",
        elapsed: float = 0.0,
    ):
        self._points = list(points)
        #: short name of the executor that produced this result.
        self.executor = executor
        #: wall-clock seconds for the whole grid.
        self.elapsed = elapsed

    def __getitem__(self, index):
        return self._points[index]

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[SweepPoint]:
        return iter(self._points)

    @property
    def points(self) -> List[SweepPoint]:
        return list(self._points)

    @property
    def ok(self) -> bool:
        """True when every point evaluated without raising."""
        return all(p.ok for p in self._points)

    @property
    def failures(self) -> List[SweepPoint]:
        return [p for p in self._points if not p.ok]

    def __repr__(self) -> str:
        failed = len(self.failures)
        return (
            f"SweepResult({len(self._points)} points, {failed} failed, "
            f"executor={self.executor!r}, elapsed={self.elapsed:.3f}s)"
        )


@dataclass
class Sweep:
    """A named cartesian-product sweep.

    ``axes`` maps parameter name → values; :meth:`run` calls
    ``fn(**params)`` for every combination in row-major order.  Errors
    from individual points are captured (as ``SweepPoint.error``), not
    raised, so one bad corner doesn't kill a long sweep — unless
    ``strict=True``.
    """

    name: str
    axes: Mapping[str, Sequence[Any]]
    points: List[SweepPoint] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.axes:
            raise ConfigurationError("sweep needs at least one axis")
        for axis, values in self.axes.items():
            if not values:
                raise ConfigurationError(f"axis {axis!r} has no values")

    @property
    def size(self) -> int:
        total = 1
        for values in self.axes.values():
            total *= len(values)
        return total

    def combinations(self):
        """Yield every parameter combination in row-major order."""
        names = list(self.axes)
        for combo in itertools.product(*(self.axes[k] for k in names)):
            yield dict(zip(names, combo))

    def run(
        self,
        fn: Optional[Callable[..., Any]] = None,
        strict: bool = False,
        *,
        executor: "SweepExecutor | None" = None,
        seed: "int | None" = None,
    ) -> SweepResult:
        """Evaluate the grid — the single entry point for every sweep.

        Parameters
        ----------
        fn:
            The cell function, called as ``fn(**params)``.  Omit it for
            an :meth:`over_spec`-built sweep, whose cell is the spec
            runner.  Under a process executor ``fn`` must be picklable
            (module-level function or ``functools.partial``).
        strict:
            Abort on the first failed point.  The serial executor
            re-raises the original exception live; pool executors raise
            :class:`~repro.parallel.ExecutionError` with the point's
            full traceback.
        executor:
            A :class:`~repro.parallel.SweepExecutor`;
            default :class:`~repro.parallel.SerialExecutor`.  Pass
            ``ProcessExecutor(jobs)`` for a bit-for-bit identical
            parallel run.
        seed:
            When given, per-point ``SeedSequence`` children are spawned
            from it in the parent and each cell receives an extra
            ``rng=`` keyword argument — same streams under any executor.

        Results also land in ``self.points`` (kept for tabulation and
        back-compat with the pre-redesign list-returning ``run``; a
        :class:`SweepResult` *is* a sequence of points).
        """
        if fn is None:
            base = getattr(self, "_spec_base", None)
            if base is None:
                raise ConfigurationError(
                    "run() without fn needs a sweep built with "
                    "Sweep.over_spec"
                )
            from ..engine.spec import run_spec_variation

            fn = functools.partial(run_spec_variation, base)
        if executor is None:
            executor = SerialExecutor()
        combos = list(self.combinations())
        if seed is not None:
            seeds: List[Any] = spawn_point_seeds(seed, len(combos))
        else:
            seeds = [None] * len(combos)
        tasks = [
            PointTask(index=i, params=params, seed=s)
            for i, (params, s) in enumerate(zip(combos, seeds))
        ]
        started = time.perf_counter()
        outcomes = executor.run(fn, tasks, reraise=strict)
        elapsed = time.perf_counter() - started
        self.points = [
            SweepPoint(
                params=combos[o.index], value=o.value, error=o.error
            )
            for o in outcomes
        ]
        return SweepResult(
            self.points, executor=executor.name, elapsed=elapsed
        )

    # ------------------------------------------------------------------
    def to_table(
        self,
        value_label: str = "value",
        result: "Sequence[SweepPoint] | None" = None,
    ) -> Table:
        """Long-format table: one row per grid point.

        Tabulates ``result`` (any sequence of points, e.g. a
        :class:`SweepResult`) when given, else the last :meth:`run`.
        """
        points = list(result) if result is not None else self.points
        if not points:
            raise ConfigurationError("run() the sweep before tabulating")
        names = list(self.axes)
        table = Table(title=self.name, columns=[*names, value_label])
        for point in points:
            cell = (
                point.value if point.ok else f"error: {point.error_summary}"
            )
            table.add_row(*(point.params[k] for k in names), cell)
        return table

    # ------------------------------------------------------------------
    @classmethod
    def over_spec(
        cls,
        name: str,
        base: Any,
        axes: Mapping[str, Sequence[Any]],
    ) -> "Sweep":
        """A sweep over :class:`~repro.engine.spec.ExperimentSpec` fields.

        ``axes`` maps spec field names to candidate values; each grid
        point is ``dataclasses.replace(base, **params)`` run through
        :func:`~repro.engine.spec.run_spec`.  This replaces the
        hand-wired build-a-trainer-per-point pattern: vary any spec
        field (``wait_for``, ``scheme``, ``delay``...) declaratively.

        Call :meth:`run` (no ``fn``) on the returned sweep to execute
        it — under any executor, since the spec cell function is
        picklable.
        """
        import dataclasses

        from ..engine.spec import ExperimentSpec

        if not isinstance(base, ExperimentSpec):
            raise ConfigurationError(
                f"over_spec needs an ExperimentSpec base, got {type(base).__name__}"
            )
        known = {f.name for f in dataclasses.fields(ExperimentSpec)}
        unknown = sorted(set(axes) - known)
        if unknown:
            raise ConfigurationError(
                f"axes are not spec fields: {', '.join(unknown)}"
            )
        sweep = cls(name=name, axes=axes)
        sweep._spec_base = base
        return sweep

    def to_grid_table(
        self,
        row_axis: str,
        col_axis: str,
        value_label: str = "",
        result: "Sequence[SweepPoint] | None" = None,
    ) -> Table:
        """Wide-format table for exactly two axes (a heat-map layout)."""
        if set(self.axes) != {row_axis, col_axis}:
            raise ConfigurationError(
                f"grid layout needs exactly the axes {row_axis!r} and "
                f"{col_axis!r}; sweep has {sorted(self.axes)}"
            )
        points = list(result) if result is not None else self.points
        if not points:
            raise ConfigurationError("run() the sweep before tabulating")
        lookup = {
            (p.params[row_axis], p.params[col_axis]):
                (p.value if p.ok else "err")
            for p in points
        }
        cols = list(self.axes[col_axis])
        table = Table(
            title=self.name,
            columns=[
                f"{row_axis} \\ {col_axis}",
                *(str(c) for c in cols),
            ],
        )
        for r in self.axes[row_axis]:
            table.add_row(r, *(lookup.get((r, c), "-") for c in cols))
        return table
